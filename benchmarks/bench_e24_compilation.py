"""E24 — plan-fragment compilation: fused kernels vs the interpreter.

A family of scan→filter(→project)→aggregate pipelines runs over a
50k-row table three ways: operator-at-a-time interpreter, compiled
(fused kernels, warm plan + kernel caches), and compiled + parallel
(the morsel scheduler with the fused vectorized predicate).  The
compiled column measures exactly what fusion buys: one generated pass
over raw numpy arrays against N materialized operator hops, with the
per-instruction dispatch and BAT-wrapping overhead gone.

Gates:

* identical answers on every pipeline and leg;
* the kernel cache serves every repeat run (1 miss per shape);
* ≥2× speedup over the interpreter on at least one
  scan→filter→aggregate pipeline — the paper's argument that a
  column-at-a-time engine leaves an integer factor on the table for
  exactly these shapes.

A PROFILE run of the headline query demonstrates the attribution
story: ``compile.codegen`` (cold) and ``compile.exec`` spans with
fused-instruction counts, plus the kernel-cache counters.
"""

import time

from conftest import run_once

from repro.sql.database import Database

ROWS = 50_000
REPS = 9

PIPELINES = [
    ("filter2_sum",
     "SELECT sum(v), count(*) FROM t WHERE k > 5000 AND v < 800"),
    ("filter3_arith_sum",
     "SELECT sum(k + v), count(*) FROM t "
     "WHERE k > 1000 AND v < 900 AND g = 3"),
    ("filter_minmax",
     "SELECT min(v), max(v), avg(v) FROM t WHERE k > 2500 AND k < 47500"),
    ("group_by",
     "SELECT g, sum(v), count(*) FROM t WHERE k > 5000 GROUP BY g"),
    ("project_rows",
     "SELECT k, v FROM t WHERE k > 40000 AND v < 500"),
]


def _load(db):
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER)")
    for lo in range(0, ROWS, 5000):
        db.execute("INSERT INTO t VALUES " + ", ".join(
            "({0}, {1}, {2})".format(i, (i * 37) % 1000, i % 7)
            for i in range(lo, lo + 5000)))
    return db


def _time(fn):
    best = None
    for _ in range(REPS):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def sweep():
    db = _load(Database())
    rows = []
    speedups = {}
    for name, sql in PIPELINES:
        expected = sorted(db.query(sql))
        assert sorted(db.query(sql, compile=True)) == expected, name
        assert sorted(db.query(sql, compile=True, workers=4)) == \
            expected, name
        interp = _time(lambda: db.query(sql))
        compiled = _time(lambda: db.query(sql, compile=True))
        par = _time(lambda: db.query(sql, compile=True, workers=4))
        speedups[name] = interp / compiled
        rows.append((name, round(interp * 1e3, 2),
                     round(compiled * 1e3, 2), round(par * 1e3, 2),
                     round(interp / compiled, 2),
                     round(interp / par, 2)))
    return rows, speedups, db.plan_compiler.counters()


def _profile_attribution():
    db = _load(Database())
    sql = PIPELINES[1][1]
    cold = db.profile(sql, compile=True)     # codegen + first exec
    warm = db.profile(sql, compile=True)     # cache hit, exec only
    def spans(report, name):
        return report.root.find_all(name=name)
    return cold, warm, spans, db.plan_compiler.counters()


def test_e24_compilation(benchmark, sink):
    rows, speedups, counters = run_once(benchmark, sweep)
    sink.table(
        "E24: fused kernels vs interpreter ({0} rows, best of {1}, "
        "times in ms)".format(ROWS, REPS),
        ["pipeline", "interp", "compiled", "compiled+par4",
         "speedup", "speedup par"], rows)
    sink.note("Fusion collapses each scan->filter->project->aggregate "
              "run into one generated pass over raw numpy arrays: no "
              "per-operator dispatch, no intermediate BATs, constants "
              "arriving through the parameter vector so one kernel "
              "serves every same-shape query.  The margin widens with "
              "pipeline depth (filter3_arith_sum fuses the most "
              "operators); short pipelines are already numpy-bound in "
              "the interpreter so fusion buys less.")

    cold, warm, spans, prof_counters = _profile_attribution()
    codegen = spans(cold, "compile.codegen")
    sink.table(
        "E24: PROFILE attribution for {0!r}".format(PIPELINES[1][1]),
        ["run", "codegen spans", "exec spans", "fused instrs"],
        [("cold", len(codegen), len(spans(cold, "compile.exec")),
          sum(s.counters.get("fused_instructions", 0)
              for s in spans(cold, "compile.exec"))),
         ("warm", len(spans(warm, "compile.codegen")),
          len(spans(warm, "compile.exec")),
          sum(s.counters.get("fused_instructions", 0)
              for s in spans(warm, "compile.exec")))])
    sink.note("kernel cache: {0} hits / {1} misses / {2} invalidations; "
              "{3} compiled runs, {4} interpreted fallbacks".format(
                  counters["kernel_cache_hits"],
                  counters["kernel_cache_misses"],
                  counters["kernel_cache_invalidations"],
                  counters["compiled_runs"],
                  counters["interpreted_fallbacks"]))

    # -- gates ---------------------------------------------------------------
    assert counters["interpreted_fallbacks"] == 0
    # One cold miss per plan shape (plus the parallel legs' fused
    # vectorized-predicate shapes, which share this cache); every
    # repeat run is a cache hit.
    assert len(PIPELINES) <= counters["kernel_cache_misses"] \
        <= 2 * len(PIPELINES)
    assert counters["kernel_cache_hits"] >= len(PIPELINES) * REPS
    # The ISSUE gate: >=2x on at least one scan->filter->agg pipeline.
    best = max(speedups, key=speedups.get)
    assert speedups[best] >= 2.0, \
        "best speedup only {0:.2f}x ({1})".format(speedups[best], best)
    # Attribution: cold run compiled once, warm run hit the cache but
    # still shows per-fragment exec spans.
    assert len(codegen) == 1
    assert len(spans(warm, "compile.codegen")) == 0
    assert len(spans(warm, "compile.exec")) >= 1

    benchmark.extra_info["best_pipeline"] = best
    benchmark.extra_info["best_speedup"] = round(speedups[best], 2)
    benchmark.extra_info["speedups"] = {
        k: round(v, 2) for k, v in speedups.items()}
