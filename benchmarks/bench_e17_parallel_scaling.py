"""E17 — morsel-driven parallel scaling and the shared-LLC ceiling.

The paper's X100 line removes interpretation overhead with vectors;
the next wall is hardware parallelism, and its limit on paper-era SMPs
is the *shared* last-level cache.  Two measurements on a streaming
scan -> filter -> project pipeline, parallelized with morsel scans and
an exchange union over simulated workers (private L1/L2 each, one
shared 2 MB LLC — the ``scaled-smp`` profile):

* E17a: simulated speedup vs worker count at a cache-friendly vector
  size — near-linear, because each worker's vector working set stays
  inside its private levels.
* E17b: fixed 4 workers, growing vector size — once the workers'
  *aggregate* vector working set exceeds the shared LLC they evict each
  other's lines, every pull pays memory latency, and the speedup curve
  knees over.  Bigger vectors amortize interpretation (E5) but feed the
  contention; the parallel sweet spot is below the serial one.

Speedup is simulated critical path: ``cycles(1 worker) / cycles(N)``,
where a worker's cycles are its private-hierarchy cycles plus the
shared-LLC cycles attributed to its pulls.
"""

import numpy as np

from conftest import run_once

from repro.hardware.profiles import SCALED_SMP
from repro.parallel import Exchange, MorselScan, MorselScheduler, WorkerSet
from repro.vectorized.operators import (
    ExecutionContext, VectorProject, VectorSelect,
)

N = 120_000
WORKER_SWEEP = (1, 2, 4, 8)
FRIENDLY_VECTOR = 512
VECTOR_SWEEP = (512, 2048, 8192, 16384, 32768)
CONTENTION_WORKERS = 4


def _columns():
    return {"a": np.arange(N, dtype=np.int64) % 1000,
            "b": (np.arange(N, dtype=np.int64) * 7) % 1000}


def _plan_factory(columns):
    def build(ctx, scheduler, worker):
        scan = MorselScan(ctx, columns, scheduler, worker=worker)
        keep = (">=", "a", 100)  # ~90% selectivity: stays streaming
        return VectorProject(ctx, VectorSelect(ctx, scan, keep),
                             {"a": "a", "v": ("+", "a", "b")})
    return build


def _run(columns, workers, vector_size):
    """One parallel run; returns (rows seen, worker set)."""
    worker_set = WorkerSet(workers, profile=SCALED_SMP,
                           vector_size=vector_size)
    scheduler = MorselScheduler(N, workers=workers,
                                morsel_size=max(4096, vector_size))
    union_ctx = ExecutionContext(vector_size=vector_size)
    exchange = Exchange(union_ctx, _plan_factory(columns), worker_set,
                        scheduler)
    rows = 0
    checksum = 0
    for batch in exchange.batches():
        rows += len(batch)
        checksum += int(batch.column("v").sum())
    return rows, checksum, worker_set, scheduler


def worker_sweep(columns):
    rows = []
    baseline = None
    reference = None
    for workers in WORKER_SWEEP:
        n_rows, checksum, worker_set, scheduler = _run(
            columns, workers, FRIENDLY_VECTOR)
        if reference is None:
            reference = (n_rows, checksum)
        assert (n_rows, checksum) == reference  # same answer at any DOP
        cycles = worker_set.critical_path_cycles()
        if baseline is None:
            baseline = cycles
        rows.append((workers, cycles, round(baseline / cycles, 2),
                     scheduler.steals))
    return rows


def contention_sweep(columns):
    rows = []
    for vector_size in VECTOR_SWEEP:
        _, _, serial_set, _ = _run(columns, 1, vector_size)
        _, _, parallel_set, _ = _run(columns, CONTENTION_WORKERS,
                                     vector_size)
        serial = serial_set.critical_path_cycles()
        parallel = parallel_set.critical_path_cycles()
        # Aggregate reusable vector-buffer working set across workers:
        # 3 operators x 2 columns x 8 bytes per worker.
        working_set = CONTENTION_WORKERS * 3 * 2 * 8 * vector_size
        llc = parallel_set.shared_llc.stats
        rows.append((vector_size, working_set // 1024,
                     serial, parallel, round(serial / parallel, 2),
                     llc.misses))
    return rows


def test_e17_parallel_scaling(benchmark, sink):
    columns = _columns()

    def harness():
        return worker_sweep(columns), contention_sweep(columns)

    scaling_rows, knee_rows = run_once(benchmark, harness)
    sink.table(
        "E17a: speedup vs workers (scan+filter+project, N={0:,}, "
        "vectors of {1})".format(N, FRIENDLY_VECTOR),
        ["workers", "critical path cycles", "speedup", "steals"],
        scaling_rows)
    sink.table(
        "E17b: shared-LLC contention knee ({0} workers, growing "
        "vectors; LLC = 2MB)".format(CONTENTION_WORKERS),
        ["vector size", "agg working set KB", "serial cycles",
         "parallel cycles", "speedup", "shared LLC misses"],
        knee_rows)

    speedup_at = {r[0]: r[2] for r in scaling_rows}
    assert speedup_at[4] > 1.5, "no parallel speedup at 4 workers"
    assert speedup_at[2] > 1.2

    knee_by_vector = {r[0]: r[4] for r in knee_rows}
    friendly = knee_by_vector[FRIENDLY_VECTOR]
    thrashing = knee_by_vector[VECTOR_SWEEP[-1]]
    # Once the aggregate vector working set blows past the shared LLC,
    # parallel speedup must visibly collapse versus the friendly point.
    assert thrashing < friendly - 0.5, (
        "no contention knee: {0} vs {1}".format(thrashing, friendly))
    benchmark.extra_info["speedup_4_workers"] = speedup_at[4]
    benchmark.extra_info["knee_speedup"] = thrashing
