"""E22 — multi-tenant overload: admission control holds goodput.

An open-loop zipf-tenant workload (mixed OLTP/OLAP, bursty arrivals)
is offered to one engine at 1x and 2x its service capacity, with and
without admission control.  The load is open-loop, so at 2x the
uncontrolled server's in-service set grows without bound and processor
sharing stretches every latency past the deadline; the controlled
server keeps ``max_inflight`` transactions in service, sheds the
excess at arrival, and keeps serving the admitted ones within the
deadline.

Every run executes real MVCC transactions through the session layer
and feeds the snapshot-isolation oracle; a run that violated isolation
would fail the gate regardless of its latency numbers.
"""

from conftest import run_once

from repro.workloads import run_workload

SEEDS = (11, 23)
DURATION = 400
CAPACITY = 4.0
DEADLINE = 40.0


def _run(seed, overload, controlled):
    return run_workload(
        seed, duration=DURATION, capacity=CAPACITY, overload=overload,
        deadline=DEADLINE, admission=controlled, max_queue_depth=8)


def sweep():
    rows = []
    reports = {}
    for overload in (1.0, 2.0):
        for controlled in (False, True):
            for seed in SEEDS:
                report = _run(seed, overload, controlled)
                reports[(overload, controlled, seed)] = report
                rows.append((
                    overload, "on" if controlled else "off", seed,
                    report.arrived, report.completed, report.shed,
                    report.conflicts, round(report.p50, 1),
                    round(report.p99, 1), round(report.goodput, 3),
                    report.max_in_service, len(report.violations)))
    return rows, reports


def test_e22_multitenant(benchmark, sink):
    rows, reports = run_once(benchmark, sweep)
    sink.table(
        "E22: open-loop multi-tenant overload ({0} ticks, capacity "
        "{1}, deadline {2} ticks)".format(DURATION, CAPACITY, DEADLINE),
        ["overload", "admission", "seed", "arrived", "completed",
         "shed", "conflicts", "p50", "p99", "goodput", "max in-svc",
         "violations"], rows)
    sink.note("Open-loop arrivals do not back off: at 2x overload the "
              "uncontrolled in-service set grows all run long and "
              "processor sharing stretches every transaction past the "
              "deadline; admission control bounds the in-service set "
              "at the capacity and sheds the rest at arrival, so the "
              "admitted transactions still finish in time.")

    for key, report in reports.items():
        assert report.violations == [], \
            "{0}: isolation violations {1}".format(key, report.violations)

    for seed in SEEDS:
        # At 2x overload: control must hold goodput and latency.
        off = reports[(2.0, False, seed)]
        on = reports[(2.0, True, seed)]
        assert on.goodput >= 2.0 * max(off.goodput, 1e-9), \
            "admission control should multiply goodput under overload"
        assert on.p50 < off.p50
        assert on.p99 <= off.p99
        assert on.max_in_service <= int(CAPACITY)
        assert off.max_in_service > 4 * int(CAPACITY)
        assert on.shed > 0
        # At 1x: control must not hurt a healthy system much.
        base_off = reports[(1.0, False, seed)]
        base_on = reports[(1.0, True, seed)]
        assert base_on.goodput >= 0.7 * base_off.goodput

    seed = SEEDS[0]
    benchmark.extra_info["uncontrolled_p99_2x"] = \
        round(reports[(2.0, False, seed)].p99, 1)
    benchmark.extra_info["controlled_p99_2x"] = \
        round(reports[(2.0, True, seed)].p99, 1)
    benchmark.extra_info["uncontrolled_goodput_2x"] = \
        round(reports[(2.0, False, seed)].goodput, 3)
    benchmark.extra_info["controlled_goodput_2x"] = \
        round(reports[(2.0, True, seed)].goodput, 3)
