"""E18 — durability tax and crash-recovery cost under fault injection.

Three measurements around the robustness layer:

* E18a: the write-ahead tax — identical transactional workloads with
  and without a WAL attached; the delta is the cost of distilling and
  framing logical commit records.
* E18b: recovery cost vs. log length — ``Database.recover()`` rebuilds
  the catalog by replaying the log, so its cost should scale linearly
  with the records replayed.
* E18c: the price of surviving a worker death — the same parallel
  query fault-free, with one injected death (discard-plus-redo), and
  with every worker killed (serial fallback).

All faults are injected deterministically (``repro.faults``), so the
numbers are reproducible run to run.
"""

import time

from conftest import run_once

from repro.faults import CrashError, FaultInjector
from repro.sql.database import Database
from repro.wal import WriteAheadLog

N_TXNS = 300
ROWS_PER_TXN = 5
RECOVERY_SWEEP = (50, 200, 800)
PARALLEL_ROWS = 2_000
PARALLEL_WORKERS = 4


def _commit_workload(db, n_txns):
    for t in range(n_txns):
        with db.begin() as txn:
            values = ", ".join("({0}, {1})".format(t * ROWS_PER_TXN + i,
                                                   (t * 31 + i) % 100)
                               for i in range(ROWS_PER_TXN))
            txn.execute("INSERT INTO t VALUES " + values)
            txn.execute("UPDATE t SET v = v + 1 "
                        "WHERE k = {0}".format(t * ROWS_PER_TXN))


def _fresh(wal):
    db = Database(wal=WriteAheadLog() if wal else None)
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
    return db


def wal_overhead():
    rows = []
    timings = {}
    for mode, wal in (("no wal", False), ("wal", True)):
        db = _fresh(wal)
        start = time.perf_counter()
        _commit_workload(db, N_TXNS)
        elapsed = time.perf_counter() - start
        timings[mode] = elapsed
        size = db.wal.size_bytes if wal else 0
        rows.append((mode, N_TXNS, round(elapsed * 1000, 1),
                     round(N_TXNS / elapsed), size // 1024))
    overhead = timings["wal"] / timings["no wal"] - 1.0
    return rows, overhead


def recovery_cost():
    rows = []
    for n_txns in RECOVERY_SWEEP:
        db = _fresh(wal=True)
        _commit_workload(db, n_txns)
        want = db.execute("SELECT count(*) FROM t").scalar()
        start = time.perf_counter()
        replayed = db.recover()
        elapsed = time.perf_counter() - start
        assert db.execute("SELECT count(*) FROM t").scalar() == want
        rows.append((n_txns, replayed, db.wal.size_bytes // 1024,
                     round(elapsed * 1000, 1),
                     round(replayed / elapsed)))
    return rows


def _parallel_db():
    db = Database()
    db.execute("CREATE TABLE p (a INTEGER, b INTEGER)")
    values = ", ".join("({0}, {1})".format(i, (i * 37) % 100)
                       for i in range(PARALLEL_ROWS))
    db.execute("INSERT INTO p VALUES " + values)
    return db


def degradation_cost():
    sql = "SELECT a, b FROM p WHERE b < 50"
    reference = _parallel_db().query(sql)
    rows = []
    scenarios = [("fault free", None),
                 ("one death", FaultInjector().crash_at("morsel.run")),
                 ("all dead -> serial", None)]
    for label, injector in scenarios:
        db = _parallel_db()
        if label.startswith("all"):
            from repro.faults import FaultPlan
            injector = FaultInjector()
            injector.plan(FaultPlan("morsel.run", "crash", hits=None))
        if injector is not None:
            db.faults = injector
        start = time.perf_counter()
        result = db.query(sql, workers=PARALLEL_WORKERS)
        elapsed = time.perf_counter() - start
        assert sorted(result) == sorted(reference), label
        failures = len(db.last_parallel.failures) \
            if db.last_parallel else 0
        rows.append((label, round(elapsed * 1000, 2), failures,
                     db.parallel_fallbacks))
    return rows


def crash_sweep_cost():
    """One full crash-at-every-site sweep: points swept and the mean
    recovery time behind the atomic-commit guarantee."""
    from repro.faults import crash_points

    def scenario(db):
        with db.begin() as txn:
            txn.execute("INSERT INTO t VALUES (1, 1), (2, 2)")
            txn.execute("UPDATE t SET v = 9 WHERE k = 1")

    dry = _fresh(wal=True)
    inj = FaultInjector()
    dry.faults = inj
    dry.wal.faults = inj
    scenario(dry)
    points = crash_points(inj.observed())
    recover_ms = []
    for site, hit in points:
        db = _fresh(wal=True)
        armed = FaultInjector().crash_at(site, hit=hit)
        db.faults = armed
        db.wal.faults = armed
        try:
            scenario(db)
        except CrashError:
            pass
        start = time.perf_counter()
        db.recover()
        recover_ms.append((time.perf_counter() - start) * 1000)
    return len(points), round(sum(recover_ms) / len(recover_ms), 2)


def test_e18_fault_recovery(benchmark, sink):
    def harness():
        return (wal_overhead(), recovery_cost(), degradation_cost(),
                crash_sweep_cost())

    (wal_rows, overhead), rec_rows, deg_rows, (n_points, mean_ms) = \
        run_once(benchmark, harness)
    sink.table(
        "E18a: write-ahead tax ({0} txns x {1} rows + 1 update)".format(
            N_TXNS, ROWS_PER_TXN),
        ["mode", "txns", "ms", "txns/s", "wal KB"], wal_rows)
    sink.note("WAL overhead: {0:.0%} over the in-memory commit "
              "path".format(overhead))
    sink.table(
        "E18b: recovery cost vs log length",
        ["txns", "records replayed", "wal KB", "recover ms",
         "records/s"], rec_rows)
    sink.table(
        "E18c: parallel degradation ({0} workers, {1:,} rows)".format(
            PARALLEL_WORKERS, PARALLEL_ROWS),
        ["scenario", "ms", "worker deaths", "fallbacks"], deg_rows)
    sink.note("Crash sweep: {0} (site, hit) points, mean recovery "
              "{1} ms — every point lands on the pre- or post-commit "
              "snapshot".format(n_points, mean_ms))

    assert overhead >= 0 or abs(overhead) < 0.5  # sanity, not a gate
    replay_rates = [r[4] for r in rec_rows]
    assert min(replay_rates) > 0
    deaths = {label: d for label, _, d, _ in deg_rows}
    assert deaths["one death"] == 1
    assert deaths["all dead -> serial"] == PARALLEL_WORKERS
    benchmark.extra_info["wal_overhead"] = round(overhead, 3)
    benchmark.extra_info["crash_points"] = n_points
