"""E2 — Section 4.2: partitioned hash join vs simple hash join.

"CPU- and cache-optimized radix-clustered partitioned hash-join can
easily achieve an order of magnitude performance improvement over
simple hash-join."  The sweep crosses the cache boundary: below it the
simple join is fine; beyond it, its random misses dominate, while the
partitioned join stays near-bandwidth.  The fully optimized variant
also removes the naive CPU overheads ([25]: the two optimizations
boost each other).
"""

from conftest import run_once

from repro.costmodel import best_partitioning
from repro.hardware import SCALED_DEFAULT
from repro.joins import partitioned_hash_join, simple_hash_join
from repro.workloads import dense_keys

SIZES = (1 << 10, 1 << 12, 1 << 14, 1 << 16)


def sweep():
    rows = []
    for n in SIZES:
        left = dense_keys(n, seed=1)
        right = dense_keys(n, seed=2)
        h_naive = SCALED_DEFAULT.make_hierarchy()
        simple_hash_join(left, right, hierarchy=h_naive,
                         cpu_optimized=False)
        h_simple = SCALED_DEFAULT.make_hierarchy()
        simple_hash_join(left, right, hierarchy=h_simple)
        bits, pass_bits, _ = best_partitioning(n, n, SCALED_DEFAULT)
        h_part = SCALED_DEFAULT.make_hierarchy()
        partitioned_hash_join(left, right, bits=bits,
                              passes=list(pass_bits), hierarchy=h_part)
        rows.append((n,
                     round(h_naive.total_cycles / n, 1),
                     round(h_simple.total_cycles / n, 1),
                     "B={0},P={1}".format(bits, len(pass_bits)),
                     round(h_part.total_cycles / n, 1),
                     round(h_naive.total_cycles / h_part.total_cycles, 1)))
    return rows


def test_e02_partitioned_vs_simple(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E2: cycles/tuple, simple vs radix-partitioned hash join "
        "(profile {0})".format(SCALED_DEFAULT.name),
        ["N", "simple naive-CPU", "simple opt-CPU", "tuning",
         "partitioned", "speedup naive->part"],
        rows)
    # In-cache: little difference.  Beyond cache: near an order of
    # magnitude between the unoptimized simple join and the fully
    # optimized partitioned join.
    assert rows[0][5] < 4
    assert rows[-1][5] >= 5
    benchmark.extra_info["speedup_at_{0}".format(SIZES[-1])] = rows[-1][5]
