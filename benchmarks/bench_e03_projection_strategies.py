"""E3 — Section 4.3: the projection strategy matrix.

Join + project k payload columns under the four strategies.  Expected
shape (from [28]): DSM post-projection with Radix-Decluster beats naive
DSM gathering by a wide margin at every k, and is the best overall
strategy for the narrow projections BI queries make; NSM strategies
catch up as k approaches the full table width (their wide-tuple cost is
then no longer waste).
"""

from conftest import run_once

from repro.hardware import SCALED_DEFAULT
from repro.joins import run_projection_strategy
from repro.joins.projection import PROJECTION_STRATEGIES, \
    make_payload_columns
from repro.workloads import dense_keys

N = 1 << 15
KS = (1, 2, 4, 8)
TABLE_COLUMNS = 8


def sweep():
    left = dense_keys(N, seed=1)
    right = dense_keys(N, seed=2)
    rows = []
    winners = {}
    for k in KS:
        payloads = make_payload_columns(N, k)
        cycles = {}
        for strategy in PROJECTION_STRATEGIES:
            h = SCALED_DEFAULT.make_hierarchy()
            run = run_projection_strategy(
                strategy, left, right, payloads, h,
                profile=SCALED_DEFAULT, table_columns=TABLE_COLUMNS)
            cycles[strategy] = run.total_cycles
        winners[k] = min(cycles, key=cycles.get)
        rows.append((k,) + tuple(
            round(cycles[s] / N, 1) for s in PROJECTION_STRATEGIES)
            + (winners[k],))
    return rows, winners


def test_e03_projection_strategies(benchmark, sink):
    rows, winners = run_once(benchmark, sweep)
    sink.table(
        "E3: total cycles/tuple by projection strategy "
        "(N={0}, table of {1} payload columns)".format(N, TABLE_COLUMNS),
        ["k projected"] + list(PROJECTION_STRATEGIES) + ["winner"],
        rows)
    by_k = {row[0]: row for row in rows}
    # Radix-decluster always beats the naive DSM gather (and clearly so
    # once more than one column amortizes the shared decluster pass)...
    for row in rows:
        k = row[0]
        naive = row[1 + PROJECTION_STRATEGIES.index("dsm_post_naive")]
        decl = row[1 + PROJECTION_STRATEGIES.index("dsm_post_decluster")]
        assert decl < naive
        if k >= 2:
            assert decl < naive / 1.5
    # ...and makes DSM post-projection the overall winner in the
    # narrow-projection regime (the paper's headline conclusion; at
    # k=1 carrying a single 16-byte tuple through the join is cheap
    # enough for NSM pre-projection to tie, and at large k the NSM
    # record fetch amortizes over all projected fields — the crossover
    # structure [28] reports).
    assert winners[2] == "dsm_post_decluster"
    assert len(set(winners.values())) > 1  # real crossovers exist
    benchmark.extra_info["winners"] = {str(k): w
                                       for k, w in winners.items()}
