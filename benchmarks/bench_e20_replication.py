"""E20 — replication: sync vs. async durability, lag, failover and the
chaos sweep.

Four measurements around the replication layer, all on the simulated
tick clock so the protocol costs are deterministic:

* E20a: sync vs. async commit — wall-clock throughput and the
  simulated ticks each commit spends waiting (sync pays the quorum
  round trip per commit; async pays zero and accumulates lag).
* E20b: replication lag and drain cost as a function of the async
  write burst size (how far replicas fall behind, and how many ticks
  catch-up takes at the shipping batch rate).
* E20c: failover timing — ticks from primary death to a serving new
  primary, and to a fully caught-up cluster, across replica counts.
* E20d: one chaos sweep (20 seeded schedules) with its invariant
  verdict — the acceptance gate run as a benchmark.
"""

import time

from conftest import run_once

from repro.replication import ReplicationGroup, chaos_sweep

N_COMMITS = 200
BURSTS = (10, 50, 200)
REPLICA_COUNTS = (1, 2, 4)
CHAOS_SEEDS = 20


def _cluster(mode, n_replicas=2):
    g = ReplicationGroup(n_replicas=n_replicas, mode=mode)
    g.execute("CREATE TABLE t (k INT, v INT)")
    g.drain()
    return g


def sync_vs_async():
    rows = []
    for mode in ("sync", "async"):
        g = _cluster(mode)
        tick0, t0 = g.clock.now, time.perf_counter()
        for i in range(N_COMMITS):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        elapsed = time.perf_counter() - t0
        wait_ticks = g.clock.now - tick0
        lag = g.max_lag()
        drain_ticks = g.drain()
        rows.append((mode, N_COMMITS, round(elapsed * 1000, 1),
                     round(N_COMMITS / elapsed),
                     round(wait_ticks / N_COMMITS, 2), lag,
                     drain_ticks))
    return rows


def lag_and_drain():
    rows = []
    for burst in BURSTS:
        g = _cluster("async")
        for i in range(burst):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        lag = g.max_lag()
        drain_ticks = g.drain()
        shipped = g.stats.shipped_entries
        rows.append((burst, lag, drain_ticks, shipped,
                     g.stats.shipped_bytes // 1024))
    return rows


def failover_timing():
    rows = []
    for n_replicas in REPLICA_COUNTS:
        g = _cluster("sync", n_replicas=n_replicas)
        for i in range(20):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        g.drain()
        dead_at = g.clock.now
        g.kill(g.primary.node_id)
        g.await_failover()
        elected_ticks = g.clock.now - dead_at
        g.drain()
        caught_up_ticks = g.clock.now - dead_at
        rows.append((n_replicas, g.quorum, elected_ticks,
                     caught_up_ticks, g.stats.failovers))
    return rows


def chaos_verdict():
    t0 = time.perf_counter()
    reports = chaos_sweep(0, n_schedules=CHAOS_SEEDS, mode="sync")
    elapsed = time.perf_counter() - t0
    ok = sum(1 for r in reports if r.ok)
    return (ok, len(reports),
            sum(r.failovers for r in reports),
            sum(r.txns_acked for r in reports),
            sum(r.txns_unknown for r in reports),
            round(elapsed, 2))


def test_e20_replication(benchmark, sink):
    def harness():
        return (sync_vs_async(), lag_and_drain(), failover_timing(),
                chaos_verdict())

    sva_rows, lag_rows, fo_rows, chaos = run_once(benchmark, harness)
    sink.table(
        "E20a: sync vs async commit ({0} single-row commits, "
        "2 replicas)".format(N_COMMITS),
        ["mode", "commits", "ms", "commits/s", "ticks/commit",
         "end lag", "drain ticks"], sva_rows)
    sink.note("Sync pays the quorum round trip (>= 2 ticks) on every "
              "commit; async commits at tick cost 0 and defers the "
              "same shipping work to the drain.")
    sink.table(
        "E20b: async lag vs burst size (2 replicas, batch 8/tick)",
        ["burst", "end lag", "drain ticks", "entries shipped",
         "ship KB"], lag_rows)
    sink.table(
        "E20c: failover timing (kill primary after 20 commits)",
        ["replicas", "quorum", "ticks to new primary",
         "ticks to caught up", "failovers"], fo_rows)
    ok, total, failovers, acked, unknown, secs = chaos
    sink.note("E20d: chaos sweep — {0}/{1} seeded schedules OK "
              "({2} failovers, {3} acked / {4} unknown txns) in "
              "{5}s: sync-acked commits never lost, elections always "
              "most-caught-up, zero divergent LSNs.".format(
                  ok, total, failovers, acked, unknown, secs))

    # Gates: the protocol properties the numbers must witness.
    by_mode = {r[0]: r for r in sva_rows}
    assert by_mode["sync"][5] == 0          # sync ends with no lag
    assert by_mode["sync"][4] >= 2          # quorum RTT >= 2 ticks
    assert by_mode["async"][4] == 0         # async never waits
    assert ok == total                      # every chaos schedule OK
    for _, _, elected, caught_up, _ in fo_rows:
        assert elected <= 20 and caught_up >= elected
    benchmark.extra_info["sync_ticks_per_commit"] = by_mode["sync"][4]
    benchmark.extra_info["chaos_ok"] = "{0}/{1}".format(ok, total)
