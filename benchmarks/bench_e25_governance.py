"""E25 — governed scatter-gather under a gray shard.

One shard's request link develops a latency ramp (gray: slow, not
dead).  The same read workload runs against three coordinators per
seed:

* **nofault** — healthy links, the baseline;
* **naive** — gray link, no per-leg timeout: every scatter waits out
  the ramp, so tail latency tracks the slowest leg;
* **hedged** — per-leg timeout plus hedged re-dispatch to the shard's
  replica and a per-link circuit breaker that learns to skip the gray
  link entirely.

The gate encodes the robustness claim: hedging bounds p99 under one
gray shard to at most 2x the no-fault p99, while the naive
coordinator blows through that bound — and all three return identical
rows, because a hedge re-reads committed state, never a side channel.
"""

import math

from conftest import run_once

from repro.faults import FaultInjector
from repro.sharding.coordinator import ShardedDatabase

SEEDS = (11, 23)
QUERIES = 24
ROWS = 600
QUERY = "SELECT v, COUNT(*), SUM(k) FROM t GROUP BY v"
GRAY_LINK = "coord->s1"
LEG_TIMEOUT = 8


def _load(db):
    db.execute("CREATE TABLE t (k INT, v INT) PARTITION BY (k)")
    for start in range(0, ROWS, 60):
        db.execute("INSERT INTO t VALUES " + ", ".join(
            "({0}, {1})".format(i, i % 7)
            for i in range(start, start + 60)))
    return db


def _gray(seed):
    faults = FaultInjector()
    faults.ramp_at("shard.ship", start_hit=1, base_delay=40, step=10,
                   cap=200, seed=seed, jitter=3,
                   match={"link": GRAY_LINK})
    return faults


def _make(mode, seed):
    if mode == "nofault":
        return _load(ShardedDatabase(n_shards=3, replicas=1))
    if mode == "naive":
        return _load(ShardedDatabase(n_shards=3, replicas=1,
                                     faults=_gray(seed)))
    return _load(ShardedDatabase(
        n_shards=3, replicas=1, faults=_gray(seed),
        leg_timeout=LEG_TIMEOUT, breaker_threshold=2,
        breaker_cooldown=16, breaker_seed=seed))


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(math.ceil(q * len(ordered))) - 1)]


def sweep():
    rows = []
    outcomes = {}
    for seed in SEEDS:
        per_mode = {}
        for mode in ("nofault", "naive", "hedged"):
            db = _make(mode, seed)
            latencies, results = [], []
            for _ in range(QUERIES):
                before = db.clock
                results.append(sorted(db.query(QUERY)))
                latencies.append(db.clock - before)
            per_mode[mode] = (latencies, results, db)
            rows.append((
                seed, mode, _percentile(latencies, 0.5),
                _percentile(latencies, 0.99), max(latencies),
                db.stats.leg_timeouts, db.stats.hedged_legs,
                db.stats.breaker_skips,
                db.breakers[1].opens if mode == "hedged" else 0))
        outcomes[seed] = per_mode
    return rows, outcomes


def test_e25_governed_scatter_gather(benchmark, sink):
    rows, outcomes = run_once(benchmark, sweep)
    sink.table(
        "E25: p99 scatter latency (clock ticks/query, {0} queries, "
        "gray link {1} ramps 40..200 ticks)".format(QUERIES, GRAY_LINK),
        ["seed", "mode", "p50", "p99", "max", "timeouts", "hedges",
         "breaker skips", "opens"], rows)
    sink.note("The naive coordinator waits out every ramped leg, so "
              "its tail tracks the gray link's ramp.  The hedged one "
              "pays at most the leg timeout before re-dispatching to "
              "the replica, and once the breaker opens it stops "
              "paying even that — p99 stays within the 2x no-fault "
              "envelope the whole run.")

    for seed, per_mode in outcomes.items():
        nofault_lat, nofault_rows, _ = per_mode["nofault"]
        naive_lat, naive_rows, _ = per_mode["naive"]
        hedged_lat, hedged_rows, hedged_db = per_mode["hedged"]
        # Correctness first: all three modes agree on every query.
        assert nofault_rows == naive_rows == hedged_rows, seed
        nofault_p99 = _percentile(nofault_lat, 0.99)
        hedged_p99 = _percentile(hedged_lat, 0.99)
        naive_p99 = _percentile(naive_lat, 0.99)
        # The headline gate: hedging bounds the tail, naive does not.
        assert hedged_p99 <= 2 * nofault_p99, \
            "seed {0}: hedged p99 {1} > 2x nofault {2}".format(
                seed, hedged_p99, nofault_p99)
        assert naive_p99 > 2 * nofault_p99, \
            "seed {0}: gray link too mild to discriminate".format(seed)
        # The defense actually engaged.
        assert hedged_db.stats.hedged_legs > 0
        assert hedged_db.breakers[1].opens >= 1

    seed = SEEDS[0]
    benchmark.extra_info["nofault_p99"] = _percentile(
        outcomes[seed]["nofault"][0], 0.99)
    benchmark.extra_info["naive_p99"] = _percentile(
        outcomes[seed]["naive"][0], 0.99)
    benchmark.extra_info["hedged_p99"] = _percentile(
        outcomes[seed]["hedged"][0], 0.99)
