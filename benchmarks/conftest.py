"""Shared benchmark plumbing.

Every experiment writes its result table(s) to
``benchmarks/results/<experiment>.txt`` (so the series survive pytest's
output capture) and attaches the headline numbers to the
pytest-benchmark ``extra_info``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title, headers, rows):
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + \
        [["{0:.4g}".format(c) if isinstance(c, float) else str(c)
          for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class ResultSink:
    """Collects tables for one experiment and writes them to disk."""

    def __init__(self, experiment):
        self.experiment = experiment
        self.tables = []

    def table(self, title, headers, rows):
        text = format_table(title, headers, rows)
        self.tables.append(text)
        print("\n" + text)
        return text

    def note(self, text):
        self.tables.append(text)
        print(text)

    def flush(self):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, self.experiment + ".txt")
        with open(path, "w") as handle:
            handle.write("\n\n".join(self.tables) + "\n")
        return path


@pytest.fixture
def sink(request):
    """Per-test result sink named after the test module."""
    name = request.module.__name__.replace("bench_", "")
    out = ResultSink(name)
    yield out
    out.flush()


def run_once(benchmark, fn):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
