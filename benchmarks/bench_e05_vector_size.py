"""E5 — Section 5: the X100 vector-size sweep.

"When used with a vector-size of one (tuple-at-a-time), X100
performance tends to be as slow as a typical RDBMS, while a size
between 100 and 1000 improves performance by two orders of magnitude."

Two measurements on a TPC-H-Q1-like filtered aggregation:

* wall-clock per vector size (the interpretation-overhead curve), with
  the Volcano engine as the tuple-at-a-time reference;
* simulated cache cycles for the vector traffic: once the plan's
  vectors no longer fit the cache, they stream and miss — the
  degradation at huge vectors that makes the sweet spot a *middle*
  value.
"""

import time

import numpy as np

from conftest import run_once

from repro.hardware import TINY
from repro.storage import ScalarAggregate, SelectOp, TableScan, run_plan
from repro.vectorized import (
    ExecutionContext,
    ScalarVectorAggregate,
    VectorScan,
    VectorSelect,
    run_engine,
)
from repro.workloads import StarSchema

N = 200_000
SIZES = (1, 4, 16, 64, 256, 1024, 8192, 65536, N)


def build_plan(ctx, columns):
    return ScalarVectorAggregate(
        ctx, VectorSelect(ctx, VectorScan(ctx, columns),
                          (">=", "qty", 5)),
        aggregates={"revenue": ("sum", ("*", "qty", "day")),
                    "n": ("count", "qty")})


def wall_clock_sweep():
    schema = StarSchema(n_sales=N)
    columns = schema.sales_columns()
    rows = []
    reference = None
    for size in SIZES:
        ctx = ExecutionContext(size)
        plan = build_plan(ctx, columns)
        start = time.perf_counter()
        out = {k: v.tolist() for k, v in run_engine(plan).items()}
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = out
        assert out == reference
        rows.append((size, round(elapsed * 1000, 1),
                     round(elapsed / N * 1e9, 1)))
    # The Volcano engine: the "typical RDBMS" reference point.
    sales = schema.sales_rows()
    start = time.perf_counter()
    volcano = run_plan(ScalarAggregate(
        SelectOp(TableScan(sales), lambda r: r[2] >= 5),
        aggregates=[(0, lambda acc, r: acc + r[2] * r[3]),
                    (0, lambda acc, r: acc + 1)]))
    volcano_elapsed = time.perf_counter() - start
    assert volcano[0][0] == reference["revenue"][0]
    rows.append(("volcano", round(volcano_elapsed * 1000, 1),
                 round(volcano_elapsed / N * 1e9, 1)))
    return rows


def cache_sweep():
    """Simulated vector-buffer traffic on the tiny profile."""
    n = 1 << 14
    columns = {"qty": np.arange(n, dtype=np.int64) % 50,
               "day": np.arange(n, dtype=np.int64) % 365}
    rows = []
    for size in (16, 64, 256, 1024, 4096, n):
        h = TINY.make_hierarchy()
        ctx = ExecutionContext(size, hierarchy=h)
        plan = build_plan(ctx, columns)
        run_engine(plan)
        rows.append((size, h.report().cache_stats["L2"].misses,
                     h.total_cycles))
    return rows


def test_e05_vector_size(benchmark, sink):
    def harness():
        return wall_clock_sweep(), cache_sweep()

    wall_rows, cache_rows = run_once(benchmark, harness)
    sink.table(
        "E5a: wall clock by vector size (Q1-like aggregation, "
        "N={0:,})".format(N),
        ["vector size", "ms", "ns/tuple"], wall_rows)
    sink.table(
        "E5b: simulated L2 traffic of the vector buffers (tiny profile)",
        ["vector size", "L2 misses", "sim cycles"], cache_rows)
    by_size = {r[0]: r[1] for r in wall_rows}
    # Vector size 1 is within the same magnitude as the Volcano engine;
    # the sweet spot is ~two orders of magnitude faster than size 1.
    assert by_size[1] > 20 * by_size[1024]
    assert by_size[1] > by_size["volcano"] / 8
    # Cache simulation: oversized vectors cost more than cache-sized.
    cache_by_size = {r[0]: r[2] for r in cache_rows}
    assert cache_by_size[1 << 14] > cache_by_size[64]
    benchmark.extra_info["speedup_1_to_1024"] = round(
        by_size[1] / by_size[1024], 1)
