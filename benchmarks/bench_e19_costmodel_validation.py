"""E19 — cost-model validation through the observability harness.

E4 checks the Section 4.4 model against the composed join algorithms;
E19 goes one level down and replays the *basic access patterns* the
model is built from (sequential, random, repeated-random, interleaved
multi-cursor in its cache-resident and thrashing zones) plus the
composed algorithms, each traced through a fresh hierarchy via
``repro.observability.validate``.  The per-pattern relative error is
the table the tier-1 error-band test pins
(``tests/observability/test_validate.py``).
"""

from conftest import run_once

from repro.hardware.profiles import SCALED_DEFAULT, PENTIUM4_XEON
from repro.observability.tracer import Tracer
from repro.observability.validate import (
    ERROR_BAND,
    check_error_band,
    validate_cost_model,
)

N = 1 << 14


def _rows(reports):
    return [(r.pattern, int(r.predicted), r.actual,
             round(r.relative_error, 3),
             ERROR_BAND.get(r.pattern, "-"))
            for r in reports]


def test_e19_costmodel_validation(benchmark, sink):
    def harness():
        tracer = Tracer()
        default = validate_cost_model(n=N, tracer=tracer)
        xeon = validate_cost_model(profile=PENTIUM4_XEON, n=N)
        return default, xeon, tracer

    default, xeon, tracer = run_once(benchmark, harness)
    sink.table("E19a: predicted vs traced cycles, scaled default "
               "profile (N={0})".format(N),
               ["pattern", "predicted", "traced", "rel_err", "band"],
               _rows(default))
    sink.table("E19b: same patterns, Pentium4/Xeon profile "
               "(N={0})".format(N),
               ["pattern", "predicted", "traced", "rel_err", "band"],
               _rows(xeon))
    sink.note("band: tier-1 asserted relative-error ceiling per "
              "pattern (see repro.observability.validate.ERROR_BAND)")

    # The harness doubles as a trace producer: one pattern span per
    # replay, each carrying the traced cycles it was scored against.
    assert len(tracer.roots) == len(default)
    for span, report in zip(tracer.roots, default):
        assert span.inclusive("cycles") == report.actual

    violations = check_error_band(default)
    assert violations == [], [v.pattern for v in violations]
    benchmark.extra_info["max_rel_err"] = max(
        round(r.relative_error, 3) for r in default)
