"""E14 — Section 3.2: delta BATs make snapshots cheap.

"Delta BATs are designed to delay updates to the main columns, and
allow a relatively cheap snapshot isolation mechanism (only the delta
BATs are copied)."  Measured: the cost of opening a transaction and
reading a column under growing *table* sizes (should be flat — nothing
is copied when nothing changed) and under growing *concurrent delta*
sizes (should scale with the delta, not the table).
"""

import time

from conftest import run_once

from repro.sql import Database
from repro.workloads import uniform_ints


def build_db(n_rows):
    db = Database()
    db.execute("CREATE TABLE t (k INT, v INT)")
    values = uniform_ints(n_rows, 0, 1000, seed=n_rows)
    db.catalog.get("t").append_rows(
        [(int(i), int(v)) for i, v in enumerate(values)])
    return db


def snapshot_cost_vs_table_size():
    rows = []
    for n in (10_000, 100_000, 400_000):
        db = build_db(n)
        start = time.perf_counter()
        for _ in range(50):
            txn = db.begin()
            column = txn.bind("t", "v")
            txn.abort()
        elapsed = (time.perf_counter() - start) / 50
        shared = db.catalog.get("t").bind("v")
        rows.append((n, round(elapsed * 1e6, 1), column is shared))
    return rows


def snapshot_cost_vs_delta_size():
    n = 200_000
    rows = []
    for delta in (0, 100, 1_000, 10_000):
        db = build_db(n)
        txn = db.begin()
        txn.execute("SELECT count(*) FROM t")  # take the snapshot
        if delta:
            db.catalog.get("t").append_rows(
                [(i, i) for i in range(delta)])
        start = time.perf_counter()
        for _ in range(20):
            txn._bind_cache.clear()
            txn.bind("t", "v")
        elapsed = (time.perf_counter() - start) / 20
        assert txn.count("t") == n  # the snapshot stays frozen
        txn.abort()
        rows.append((delta, round(elapsed * 1e6, 1)))
    return rows


def test_e14_delta_snapshots(benchmark, sink):
    def harness():
        return snapshot_cost_vs_table_size(), snapshot_cost_vs_delta_size()

    table_rows, delta_rows = run_once(benchmark, harness)
    sink.table(
        "E14a: open snapshot + bind column, by table size "
        "(no concurrent writers)",
        ["table rows", "us per snapshot-read", "zero-copy"], table_rows)
    sink.table(
        "E14b: bind column under a concurrent delta (table 200k rows)",
        ["concurrent delta rows", "us per bind"], delta_rows)
    # Quiescent snapshots are zero-copy and (near) constant-time.
    assert all(row[2] for row in table_rows)
    assert table_rows[-1][1] < table_rows[0][1] * 20
    # With a concurrent delta the cost follows the *slice* (view) +
    # private merge, it does not explode with table size; the no-delta
    # case stays the cheapest.
    assert delta_rows[0][1] <= min(r[1] for r in delta_rows[1:]) * 1.5
    benchmark.extra_info["zero_copy"] = True
