"""E26 — incremental view maintenance vs. recompute-on-write.

A base table of N rows carries two materialized views (a grouped
aggregate and a selective filter).  For each delta fraction f, the same
write batch — an insert wave plus a keyed delete wave touching ~f*N
rows — is applied two ways:

* **incremental** — the views are live and each commit folds the delta
  through the Z-set maintainers; the refresh cost is the commit itself;
* **full** — the base table takes the same writes unmaintained, then
  the views are rebuilt from scratch, modelling the classic
  drop-and-recreate refresh.

The gate encodes the efficiency claim of delta maintenance: at a 1%
delta the incremental refresh must be at least 5x cheaper than the
rebuild, and the two strategies must agree on the final view contents.
"""

import time

from conftest import run_once

from repro.sql.database import Database

N_ROWS = 6000
N_GROUPS = 40
FRACTIONS = (0.01, 0.05, 0.2)
REPEATS = 3
GATE_FRACTION = 0.01
GATE_SPEEDUP = 5.0

VIEWS = [
    ("v_grp", "SELECT g, count(*) AS n, sum(v) AS s, min(v) AS lo, "
              "max(v) AS hi FROM t GROUP BY g"),
    ("v_hot", "SELECT k, v FROM t WHERE v > 400"),
]


def _load():
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, g BIGINT, v BIGINT)")
    for start in range(0, N_ROWS, 500):
        db.execute("INSERT INTO t VALUES " + ", ".join(
            "({0}, {1}, {2})".format(k, k % N_GROUPS, (k * 37) % 500)
            for k in range(start, start + 500)))
    return db


def _delta_statements(fraction):
    """An insert wave and a keyed delete wave, ~fraction*N rows each."""
    n = max(1, int(N_ROWS * fraction))
    inserts = "INSERT INTO t VALUES " + ", ".join(
        "({0}, {1}, {2})".format(k, k % N_GROUPS, (k * 53) % 900)
        for k in range(N_ROWS, N_ROWS + n))
    deletes = "DELETE FROM t WHERE k >= 0 AND k < {0}".format(n)
    return [inserts, deletes]


def _create_views(db):
    for name, sql in VIEWS:
        db.execute("CREATE MATERIALIZED VIEW {0} AS {1}".format(name,
                                                                sql))


def _view_state(db):
    return [sorted(db.views.contents(name)) for name, _ in VIEWS]


def _timed(fraction, mode):
    """(refresh seconds, final view contents) for one strategy."""
    db = _load()
    if mode == "incremental":
        _create_views(db)
    statements = _delta_statements(fraction)
    start = time.perf_counter()
    for sql in statements:
        db.execute(sql)
    if mode == "full":
        _create_views(db)  # the drop-and-recreate refresh, from scratch
    elapsed = time.perf_counter() - start
    return elapsed, _view_state(db)


def sweep():
    rows = []
    gate_speedup = None
    for fraction in FRACTIONS:
        t_incr = min(_timed(fraction, "incremental")[0]
                     for _ in range(REPEATS))
        t_full = min(_timed(fraction, "full")[0]
                     for _ in range(REPEATS))
        _, incr_state = _timed(fraction, "incremental")
        _, full_state = _timed(fraction, "full")
        assert incr_state == full_state, \
            "strategies diverge at f={0}".format(fraction)
        speedup = t_full / t_incr
        if fraction == GATE_FRACTION:
            gate_speedup = speedup
        rows.append((fraction, max(1, int(N_ROWS * fraction)),
                     round(t_incr * 1e3, 2), round(t_full * 1e3, 2),
                     round(speedup, 1)))
    return rows, gate_speedup


def test_e26_incremental_view_maintenance(benchmark, sink):
    rows, gate_speedup = run_once(benchmark, sweep)
    sink.table(
        "E26: view refresh cost, incremental vs rebuild "
        "({0} rows, {1} groups, insert+delete wave per fraction)".format(
            N_ROWS, N_GROUPS),
        ["delta fraction", "delta rows", "incremental ms", "rebuild ms",
         "speedup"], rows)
    sink.note("Incremental refresh folds only the delta through the "
              "Z-set operators, so its cost tracks the write batch; "
              "the rebuild rescans the whole base table no matter how "
              "small the change.  The advantage shrinks as the delta "
              "fraction grows — at 20% of the table the two converge, "
              "which is why eager (recompute) views remain the right "
              "fallback for churn-heavy shapes.")
    assert gate_speedup >= GATE_SPEEDUP, \
        "incremental refresh only {0:.1f}x cheaper at {1:.0%} delta".format(
            gate_speedup, GATE_FRACTION)
    benchmark.extra_info["speedup_at_1pct"] = round(gate_speedup, 1)
