"""E6 — Section 5 / [44]: ultra-lightweight compression.

"X100 added vectorized ultra-fast compression methods that decompress
values in less than 5 CPU cycles per tuple" — trading some compression
ratio for decompression at RAM bandwidth, which is what lets a scan's
I/O volume shrink without becoming CPU-bound.

For each data distribution: the scheme the heuristic picks, its
compression ratio, its simulated decode budget (cycles/tuple), and its
measured bulk decode throughput.
"""

import time

import numpy as np

from conftest import run_once

from repro.vectorized import choose_scheme, compress, decompress
from repro.workloads import (
    clustered_ints,
    dense_keys,
    sorted_ints,
    uniform_ints,
    zipf_ints,
)

N = 500_000

DATASETS = {
    "sorted (runs)": lambda: np.repeat(
        np.arange(N // 50, dtype=np.int64), 50),
    "zipf low-cardinality": lambda: zipf_ints(N, n_distinct=64),
    "uniform small-spread": lambda: uniform_ints(N, 0, 4000, seed=1),
    "dense keys (sorted)": lambda: np.sort(dense_keys(N)) * 1000,
    "uniform 60-bit": lambda: uniform_ints(N, 0, 1 << 60, seed=2),
}


def sweep():
    rows = []
    for label, make in DATASETS.items():
        values = make()
        scheme = choose_scheme(values)
        column = compress(values, scheme)
        start = time.perf_counter()
        decoded = decompress(column)
        decode_s = time.perf_counter() - start
        assert np.array_equal(decoded, values)
        mb_per_s = values.nbytes / 1e6 / max(decode_s, 1e-9)
        rows.append((label, scheme, round(column.ratio, 1),
                     column.decode_cycles // max(column.count, 1),
                     round(mb_per_s)))
    return rows


def test_e06_compression(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E6: light-weight compression over {0:,}-value columns".format(N),
        ["dataset", "scheme", "ratio", "decode cycles/tuple",
         "decode MB/s"], rows)
    by_label = {r[0]: r for r in rows}
    # Compressible distributions get real ratios; decode stays within
    # the [44] budget of <= 5 cycles/tuple for every scheme.
    assert by_label["sorted (runs)"][2] >= 10
    assert by_label["zipf low-cardinality"][2] >= 6
    assert by_label["uniform small-spread"][2] >= 3
    assert by_label["dense keys (sorted)"][2] >= 3
    for row in rows:
        assert row[3] <= 5
    # Incompressible data is stored raw, not bloated.
    assert by_label["uniform 60-bit"][1] == "raw"
    assert by_label["uniform 60-bit"][2] == 1.0
    benchmark.extra_info["best_ratio"] = max(r[2] for r in rows)
