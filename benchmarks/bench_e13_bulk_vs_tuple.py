"""E13 — Sections 2-3 / [6]: column-at-a-time bulk execution vs the
tuple-at-a-time iterator paradigm.

The same filtered join-aggregate runs through (a) the MonetDB-style
stack (SQL -> MAL -> bulk BAT operators with full materialization) and
(b) the Volcano engine (per-tuple next() calls with an interpreted
predicate in the inner loop).  The MAL plan executes a few dozen
instructions regardless of the row count — the instruction-locality
argument — while the iterator engine's call count scales with tuples.
"""

import time

from conftest import run_once

from repro.sql import Database
from repro.storage import (
    GroupAggregate,
    HashJoinOp,
    SelectOp,
    TableScan,
    run_plan,
)
from repro.workloads import StarSchema

SQL = ("SELECT category, sum(qty) AS total FROM sales "
       "JOIN items ON sales.item_id = items.item_id "
       "WHERE qty >= 5 GROUP BY category ORDER BY category")


def run_both(n_sales):
    schema = StarSchema(n_sales=n_sales, n_items=100)
    db = schema.populate(Database())
    start = time.perf_counter()
    sql_rows = db.query(SQL)
    bulk_s = time.perf_counter() - start
    mal_instructions = db.interpreter.stats.instructions_executed

    items = schema.item_rows()
    sales = schema.sales_rows()
    start = time.perf_counter()
    volcano_rows = sorted(run_plan(GroupAggregate(
        HashJoinOp(TableScan(items),
                   SelectOp(TableScan(sales), lambda r: r[2] >= 5),
                   build_key=lambda r: r[0], probe_key=lambda r: r[0]),
        key_fn=lambda r: r[5],
        aggregates=[(0, lambda acc, r: acc + r[2])])))
    tuple_s = time.perf_counter() - start
    assert [(int(c), int(t)) for c, t in sql_rows] == \
        [(int(c), int(t)) for c, t in volcano_rows]
    return (n_sales, mal_instructions, round(bulk_s * 1000, 1),
            round(tuple_s * 1000, 1), round(tuple_s / bulk_s, 1))


def sweep():
    return [run_both(n) for n in (10_000, 50_000, 200_000)]


def test_e13_bulk_vs_tuple(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E13: filtered join-aggregate, bulk BAT algebra vs Volcano",
        ["N sales", "MAL instructions", "bulk ms", "tuple-at-a-time ms",
         "speedup"],
        rows)
    # The MAL instruction count is constant in N (bulk operators), and
    # the bulk engine wins by a growing factor.
    assert rows[0][1] == rows[-1][1]
    assert rows[-1][4] >= 3
    assert rows[-1][4] >= rows[0][4]  # the gap grows with N
    benchmark.extra_info["speedup_at_200k"] = rows[-1][4]
