"""E4 — Section 4.4: the generic cost model vs the simulator.

Two questions: (a) how close are the predicted per-level miss counts
and total cycles to the trace simulation, and (b) does minimizing the
*predicted* cost pick the same radix-join tuning the simulator would
pick?  (b) is the point of the model: "Predictive and accurate cost
models provide the cornerstones to automate this tuning task."
"""

from conftest import run_once

from repro.costmodel import (
    predict_partitioned_hash_join,
    predict_radix_cluster,
    predict_simple_hash_join,
)
from repro.costmodel.model import total_cycles
from repro.hardware import SCALED_DEFAULT
from repro.joins import partitioned_hash_join, radix_cluster, \
    simple_hash_join
from repro.joins.radix_cluster import split_bits
from repro.workloads import dense_keys, uniform_ints

N = 1 << 14


def accuracy_table():
    rows = []
    values = uniform_ints(N, seed=1)
    for bits, passes in ((2, 1), (6, 1), (6, 2), (10, 1), (10, 2),
                         (12, 2)):
        pass_bits = split_bits(bits, passes)
        predicted = total_cycles(
            predict_radix_cluster(N, bits, pass_bits, SCALED_DEFAULT),
            SCALED_DEFAULT)
        h = SCALED_DEFAULT.make_hierarchy()
        radix_cluster(values, bits, passes, hierarchy=h)
        rows.append(("cluster B={0} P={1}".format(bits, passes),
                     int(predicted), h.total_cycles,
                     round(predicted / h.total_cycles, 2)))
    left = dense_keys(N, seed=2)
    right = dense_keys(N, seed=3)
    predicted = total_cycles(
        predict_simple_hash_join(N, N, SCALED_DEFAULT), SCALED_DEFAULT)
    h = SCALED_DEFAULT.make_hierarchy()
    simple_hash_join(left, right, hierarchy=h)
    rows.append(("simple hash join", int(predicted), h.total_cycles,
                 round(predicted / h.total_cycles, 2)))
    return rows


def tuning_table():
    left = dense_keys(N, seed=2)
    right = dense_keys(N, seed=3)
    candidates = [(0, (0,)), (2, (2,)), (4, (4,)), (6, (6,)), (8, (8,)),
                  (8, (4, 4)), (12, (6, 6))]
    rows = []
    simulated = {}
    predicted = {}
    for bits, pass_bits in candidates:
        h = SCALED_DEFAULT.make_hierarchy()
        partitioned_hash_join(left, right, bits=bits,
                              passes=list(pass_bits), hierarchy=h)
        simulated[(bits, pass_bits)] = h.total_cycles
        predicted[(bits, pass_bits)] = total_cycles(
            predict_partitioned_hash_join(N, N, bits, pass_bits,
                                          SCALED_DEFAULT), SCALED_DEFAULT)
        rows.append(("B={0} P={1}".format(bits, len(pass_bits)),
                     int(predicted[(bits, pass_bits)]),
                     simulated[(bits, pass_bits)]))
    model_best = min(predicted, key=predicted.get)
    sim_best = min(simulated, key=simulated.get)
    return rows, model_best, sim_best, simulated


def test_e04_cost_model(benchmark, sink):
    def harness():
        return accuracy_table(), tuning_table()

    (acc_rows, (tune_rows, model_best, sim_best, simulated)) = \
        run_once(benchmark, harness)
    sink.table("E4a: predicted vs simulated total cycles (N={0})".format(N),
               ["workload", "predicted", "simulated", "ratio"], acc_rows)
    sink.table("E4b: tuning choice, partitioned join (N={0})".format(N),
               ["tuning", "predicted", "simulated"], tune_rows)
    sink.note("model argmin: {0}; simulator argmin: {1}".format(
        model_best, sim_best))
    # Accuracy within a factor of two across all workloads.
    for _, predicted, simulated_cycles, _ in acc_rows:
        assert simulated_cycles / 2 <= predicted <= simulated_cycles * 2
    # The model's pick is within 50% of the simulator's optimum.
    assert simulated[model_best] <= 1.5 * simulated[sim_best]
    benchmark.extra_info["model_pick"] = str(model_best)
