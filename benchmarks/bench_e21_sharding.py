"""E21 — sharding: scatter-gather payoff, pruning, and the 2PC tax.

The shards live in one process behind simulated links, so wall-clock
speedup is not the story (every shard shares the same CPU; fan-out
adds coordination).  What the experiment *can* measure honestly:

* E21a: network payoff of aggregate decomposition — rows/bytes a
  scatter plan ships (per-shard partials) against the gather fallback
  (whole table fragments) for the same query, per shard count.
* E21b: partition pruning — a key-equality lookup contacts exactly one
  shard, no matter how many exist; a non-key predicate must fan out.
* E21c: the two-phase commit tax — wall time and WAL appends per
  commit for single-shard (fast path) vs. cross-shard transactions.
"""

import time

from conftest import run_once

from repro.faults import FaultInjector
from repro.sharding import ShardedDatabase

N_ROWS = 6000
SHARD_COUNTS = (1, 2, 4)
N_LOOKUPS = 50
N_COMMITS = 60

AGG_SQL = "SELECT s, count(*), sum(v), avg(v) FROM t GROUP BY s"
GATHER_SQL = ("SELECT s, count(DISTINCT k), sum(v), avg(v) FROM t "
              "GROUP BY s")  # DISTINCT forces the gather fallback


def _load(n_shards, faults=None):
    db = ShardedDatabase(n_shards=n_shards, faults=faults)
    db.execute("CREATE TABLE t (k BIGINT, v DOUBLE, s VARCHAR) "
               "PARTITION BY (k)")
    values = ", ".join(
        "({0}, {1!r}, 'g{2}')".format(k, (k % 7) * 0.25, k % 16)
        for k in range(N_ROWS))
    db.execute("INSERT INTO t VALUES " + values)
    return db


def scatter_vs_gather():
    rows = []
    for n_shards in SHARD_COUNTS:
        db = _load(n_shards)
        for label, sql in (("scatter", AGG_SQL), ("gather", GATHER_SQL)):
            before = (db.stats.shipped_rows, db.stats.shipped_bytes)
            t0 = time.perf_counter()
            result = db.query(sql)
            ms = (time.perf_counter() - t0) * 1000
            shipped = db.stats.shipped_rows - before[0]
            kb = (db.stats.shipped_bytes - before[1]) / 1024.0
            rows.append((n_shards, label, len(result), shipped,
                         round(kb, 1), round(ms, 1)))
    return rows


def pruning():
    rows = []
    for n_shards in SHARD_COUNTS:
        db = _load(n_shards)
        for label, template in (
                ("key lookup", "SELECT v FROM t WHERE k = {0}"),
                ("non-key scan", "SELECT k FROM t WHERE v = {0}.25")):
            before = db.stats.requests
            t0 = time.perf_counter()
            for i in range(N_LOOKUPS):
                db.query(template.format(i % 7))
            ms = (time.perf_counter() - t0) * 1000
            per_query = (db.stats.requests - before) / N_LOOKUPS
            rows.append((n_shards, label, per_query,
                         round(ms / N_LOOKUPS, 2)))
    return rows


def twopc_tax():
    rows = []
    for label, n_shards in (("fast path", 1), ("2PC", 4)):
        faults = FaultInjector()
        db = _load(n_shards, faults=faults)
        base_appends = faults.hits["wal.append"]
        t0 = time.perf_counter()
        for i in range(N_COMMITS):
            with db.begin() as txn:
                txn.execute("UPDATE t SET v = v + 0.25 "
                            "WHERE k < {0}".format(n_shards * 4))
        ms = (time.perf_counter() - t0) * 1000
        appends = faults.hits["wal.append"] - base_appends
        rows.append((label, n_shards, N_COMMITS,
                     round(ms / N_COMMITS, 2),
                     round(appends / N_COMMITS, 1),
                     db.stats.twopc_fast_path, db.stats.twopc_commits))
    return rows


def test_e21_sharding(benchmark, sink):
    def harness():
        return scatter_vs_gather(), pruning(), twopc_tax()

    svg_rows, prune_rows, tax_rows = run_once(benchmark, harness)
    sink.table(
        "E21a: shipped volume — decomposed aggregate vs gather "
        "fallback ({0} rows, 16 groups)".format(N_ROWS),
        ["shards", "plan", "result rows", "shipped rows",
         "shipped KB", "ms"], svg_rows)
    sink.note("A decomposed aggregate ships one partial row per group "
              "per shard; the gather fallback ships every fragment "
              "row to the coordinator.")
    sink.table(
        "E21b: partition pruning ({0} point queries)".format(N_LOOKUPS),
        ["shards", "predicate", "requests/query", "ms/query"],
        prune_rows)
    sink.table(
        "E21c: commit tax ({0} transactions)".format(N_COMMITS),
        ["path", "shards", "commits", "ms/commit", "WAL appends/commit",
         "fast-path", "2PC rounds"], tax_rows)

    # Gates: the plan properties the numbers must witness.
    by_key = {(r[0], r[1]): r for r in svg_rows}
    for n_shards in SHARD_COUNTS[1:]:
        scatter = by_key[(n_shards, "scatter")]
        gather = by_key[(n_shards, "gather")]
        assert scatter[3] <= 16 * n_shards       # partials only
        assert gather[3] >= N_ROWS               # whole fragments
    for n_shards, label, per_query, _ in prune_rows:
        if label == "key lookup":
            assert per_query == 1                # pruned to one shard
        else:
            assert per_query == n_shards         # full fan-out
    fast, full = tax_rows
    assert fast[5] == N_COMMITS and fast[6] == 0
    assert full[6] == N_COMMITS
    # 2PC >= prepare/shard + decision + decide/shard WAL appends.
    assert full[4] >= 2 * 2 + 1
    benchmark.extra_info["scatter_shipped_rows_4"] = \
        by_key[(4, "scatter")][3]
    benchmark.extra_info["gather_shipped_rows_4"] = \
        by_key[(4, "gather")][3]
    benchmark.extra_info["twopc_wal_appends_per_commit"] = full[4]
