"""E15 — Section 7: storage-layout ablation (NSM vs DSM vs PAX).

"By keeping a NSM-like paged storage, but using a DSM-like columnar
layout within each disk page, PAX has the I/O characteristics of NSM,
and cache-characteristics of DSM."  Measured on the trace simulator:

* single-column scan (cache level) — NSM drags full records through
  the cache; DSM and PAX touch only the needed column's bytes;
* full-record fetch (I/O level) — NSM and PAX find all fields inside
  *one page* (one disk read / page-table entry per record); DSM
  scatters a record over one region per column.  At cache-line
  granularity PAX fetches behave like DSM (fields live in different
  minipages) — exactly the stated trade-off.
"""

import numpy as np

from conftest import run_once

from repro.core.bat import BAT, global_address_space
from repro.hardware import SCALED_DEFAULT, trace as trace_mod
from repro.storage import NSMTable, PAXTable

SCHEMA = [("k", "lng"), ("a", "lng"), ("b", "lng"), ("c", "lng"),
          ("d", "lng"), ("e", "lng"), ("f", "lng"), ("g", "lng")]
N = 20_000


def build_tables():
    rows = [(i, i, i, i, i, i, i, i) for i in range(N)]
    nsm = NSMTable(SCHEMA, page_size=8192)
    nsm.insert_many(rows)
    pax = PAXTable(SCHEMA, page_size=8192)
    pax.insert_many(rows)
    dsm = {name: BAT.from_values(np.arange(N, dtype=np.int64))
           for name, _ in SCHEMA}
    return nsm, pax, dsm


def dsm_scan_trace(dsm, fields):
    parts = []
    for name in fields:
        bat = dsm[name]
        parts.append(trace_mod.sequential(bat.tail_base, len(bat), 8))
    return np.concatenate(parts)


def dsm_fetch_trace(dsm, positions, fields):
    parts = []
    for name in fields:
        bat = dsm[name]
        parts.append(bat.tail_base
                     + np.asarray(positions, dtype=np.int64) * 8)
    return trace_mod.interleave(*parts)


def run():
    nsm, pax, dsm = build_tables()
    rng = np.random.default_rng(0)
    positions = rng.integers(0, N, 2000).tolist()
    nsm_cap = nsm.pages[0].capacity
    pax_cap = pax.pages[0].capacity
    nsm_rids = [(p // nsm_cap, p % nsm_cap) for p in positions]
    pax_rids = [(p // pax_cap, p % pax_cap) for p in positions]

    rows = []
    # One-column scan.
    for label, trace in (
            ("NSM", nsm.scan_trace(["b"])),
            ("PAX", pax.scan_trace(["b"])),
            ("DSM", dsm_scan_trace(dsm, ["b"]))):
        h = SCALED_DEFAULT.make_hierarchy()
        h.access(trace)
        rep = h.report()
        pages, _ = trace_mod.collapse_runs(np.asarray(trace) >> 13)
        rows.append(("scan 1 of 8 columns", label,
                     rep.cache_stats["L2"].misses, h.total_cycles,
                     len(pages)))
    # Full-record point fetches: count both cache traffic and the
    # I/O-level page switches (distinct 8 KB pages along the trace).
    for label, trace in (
            ("NSM", nsm.fetch_trace(nsm_rids)),
            ("PAX", pax.fetch_trace(pax_rids)),
            ("DSM", dsm_fetch_trace(dsm, positions,
                                    [n for n, _ in SCHEMA]))):
        h = SCALED_DEFAULT.make_hierarchy()
        h.access(trace)
        rep = h.report()
        pages, _ = trace_mod.collapse_runs(np.asarray(trace) >> 13)
        rows.append(("fetch 2000 full records", label,
                     rep.cache_stats["L2"].misses, h.total_cycles,
                     len(pages)))
    return rows


def test_e15_storage_layouts(benchmark, sink):
    rows = run_once(benchmark, run)
    sink.table(
        "E15: NSM vs PAX vs DSM, {0:,} rows of 8 int64 columns".format(N),
        ["operation", "layout", "L2 misses", "sim cycles",
         "8KB-page switches"], rows)
    scan = {r[1]: r[3] for r in rows if r[0].startswith("scan")}
    fetch_cycles = {r[1]: r[3] for r in rows if r[0].startswith("fetch")}
    fetch_pages = {r[1]: r[4] for r in rows if r[0].startswith("fetch")}
    # Scan: PAX has DSM-like cache behaviour, both far below NSM.
    assert scan["PAX"] < scan["NSM"] / 2
    assert scan["DSM"] < scan["NSM"] / 2
    # Fetch: PAX has NSM-like I/O behaviour (one page per record),
    # while DSM touches a page per projected column.
    assert fetch_pages["PAX"] <= fetch_pages["NSM"] * 1.2
    assert fetch_pages["DSM"] > 4 * fetch_pages["PAX"]
    # At cache granularity PAX fetches pay like DSM — the trade-off.
    assert fetch_cycles["DSM"] >= fetch_cycles["PAX"]
    assert fetch_cycles["NSM"] < fetch_cycles["PAX"]
    benchmark.extra_info["scan_nsm_over_pax"] = round(
        scan["NSM"] / scan["PAX"], 1)
