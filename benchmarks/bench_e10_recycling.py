"""E10 — Section 6.1 / [19]: recycling intermediates.

"The results of all relational operators can be maintained in a cache
... It has been shown to be effective using the real-life query log of
the Skyserver."  Our synthetic Skyserver log preserves the relevant
structure (template reuse, zipf-hot regions); the bench reports the
work avoided with the recycler on, plus the effect of the cache budget
and eviction policy.
"""

import time

from conftest import run_once

from repro.sql import Database
from repro.workloads import SkyserverWorkload

N_ROWS = 10_000
N_QUERIES = 250


def run_log(db, queries):
    start = time.perf_counter()
    for query in queries:
        db.execute(query)
    return time.perf_counter() - start


def main_comparison():
    workload = SkyserverWorkload(n_rows=N_ROWS, n_queries=N_QUERIES)
    rows = []
    outputs = {}
    configs = [
        ("plain", lambda: Database()),
        ("recycler unbounded", lambda: Database.with_recycling()),
        ("recycler 256KB benefit",
         lambda: Database.with_recycling(capacity_bytes=256 * 1024)),
        ("recycler 256KB lru",
         lambda: Database.with_recycling(capacity_bytes=256 * 1024,
                                         policy="lru")),
        ("recycler 16KB benefit",
         lambda: Database.with_recycling(capacity_bytes=16 * 1024)),
    ]
    for label, make in configs:
        db = make()
        queries = workload.populate(db)
        elapsed = run_log(db, queries)
        outputs[label] = [db.execute(q).rows() for q in queries[:20]]
        stats = db.interpreter.stats
        hit_ratio = db.recycler.stats.hit_ratio if db.recycler else 0.0
        rows.append((label, round(elapsed * 1000),
                     stats.instructions_executed,
                     stats.instructions_recycled,
                     stats.tuples_materialized,
                     "{0:.0%}".format(hit_ratio)))
    # Transparency: identical answers under every configuration.
    reference = outputs["plain"]
    for label, got in outputs.items():
        assert got == reference, label
    return rows


def test_e10_recycling(benchmark, sink):
    rows = run_once(benchmark, main_comparison)
    sink.table(
        "E10: Skyserver-like log, {0} queries over {1:,} rows".format(
            N_QUERIES, N_ROWS),
        ["configuration", "wall ms", "instr executed", "instr recycled",
         "tuples materialized", "hit ratio"],
        rows)
    by_label = {r[0]: r for r in rows}
    plain = by_label["plain"]
    unbounded = by_label["recycler unbounded"]
    # Double work avoided: far fewer instructions executed and tuples
    # materialized; wall clock improves too.
    assert unbounded[2] < plain[2] / 2
    assert unbounded[4] < plain[4] / 5
    assert unbounded[1] < plain[1]
    # A bounded cache still helps; the benefit policy makes better
    # evictions than (or as good as) plain LRU at equal budget.
    bounded = by_label["recycler 256KB benefit"]
    assert bounded[3] > 0
    assert bounded[2] < plain[2]
    benchmark.extra_info["unbounded_hit_ratio"] = unbounded[5]
