"""E12 — Section 6.2 / [13]: the DataCyclotron ring.

"The obvious benefit, if successful, would be increased system
throughput and an architecture to exploit the opportunities offered by
clusters."  The ring's throughput is swept over the node count (fixed
per-node CPU) and compared with a centralized single node whose memory
holds only part of the hot set.
"""

from conftest import run_once

from repro.datacyclotron import RingQuery, run_centralized, run_ring

N_CHUNKS = 32
N_QUERIES = 96
CAPACITY = 8  # (query, chunk) work units per node per step


def make_queries(n_nodes):
    return [RingQuery("q{0}".format(i), home_node=i % n_nodes,
                      chunks_needed=frozenset(range(N_CHUNKS)))
            for i in range(N_QUERIES)]


def sweep():
    rows = []
    for n_nodes in (1, 2, 4, 8, 16):
        result = run_ring(n_nodes, N_CHUNKS, make_queries(n_nodes),
                          capacity_per_step=CAPACITY)
        rows.append(("ring x{0}".format(n_nodes), result.steps,
                     round(result.throughput_qps, 1),
                     round(result.mean_latency_ms, 1)))
    central = run_centralized(N_CHUNKS, make_queries(1),
                              memory_chunks=N_CHUNKS // 4,
                              process_ms=1.0, disk_ms=10.0)
    rows.append(("centralized (1/4 in RAM)", "-",
                 round(central.throughput_qps, 1),
                 round(central.mean_latency_ms, 1)))
    return rows


def test_e12_datacyclotron(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E12: {0} full scans over a {1}-chunk hot set".format(
            N_QUERIES, N_CHUNKS),
        ["architecture", "steps", "queries/sec", "mean latency ms"],
        rows)
    qps = {r[0]: r[2] for r in rows}
    assert qps["ring x8"] > 2 * qps["ring x2"]
    assert qps["ring x16"] > 4 * qps["ring x1"]
    assert qps["ring x8"] > 3 * qps["centralized (1/4 in RAM)"]
    benchmark.extra_info["ring8_vs_centralized"] = round(
        qps["ring x8"] / qps["centralized (1/4 in RAM)"], 1)
