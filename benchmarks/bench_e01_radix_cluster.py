"""E1 — Figure 2 / Section 4.2: multi-pass radix-cluster vs thrashing.

Regenerates the radix-cluster sweep: clustering N tuples on B bits in
P passes.  Expected shape (paper): one-pass clustering is fine while
2^B stays below the TLB-entry and cache-line budgets, then its miss
counts explode; multi-pass clustering keeps per-pass fan-out low and
stays flat at the price of extra sequential passes.
"""

from conftest import run_once

from repro.hardware import SCALED_DEFAULT
from repro.joins import radix_cluster
from repro.workloads import uniform_ints

N = 1 << 15
BITS = (2, 4, 6, 8, 10, 12, 14)
PASSES = (1, 2, 3)


def sweep():
    values = uniform_ints(N, seed=1)
    rows = []
    for bits in BITS:
        for passes in PASSES:
            if passes > bits:
                continue
            h = SCALED_DEFAULT.make_hierarchy()
            radix_cluster(values, bits, passes, hierarchy=h)
            rep = h.report()
            rows.append((bits, passes,
                         rep.cache_stats["L1"].misses,
                         rep.cache_stats["L2"].misses,
                         rep.tlb_stats.misses,
                         h.total_cycles,
                         round(h.total_cycles / N, 2)))
    return rows


def test_e01_radix_cluster_sweep(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E1: radix-cluster {0} tuples on B bits in P passes "
        "(profile {1})".format(N, SCALED_DEFAULT.name),
        ["B", "P", "L1 miss", "L2 miss", "TLB miss", "cycles",
         "cycles/tuple"],
        rows)
    by_key = {(b, p): cycles for b, p, _, _, _, cycles, _ in rows}
    # The paper's shape: at high B, one pass costs far more than two.
    assert by_key[(12, 1)] > 2 * by_key[(12, 2)]
    assert by_key[(14, 1)] > 2 * by_key[(14, 2)]
    # At low B, a single pass is the cheaper plan.
    assert by_key[(4, 1)] < by_key[(4, 2)]
    benchmark.extra_info["one_pass_b12_over_two_pass"] = round(
        by_key[(12, 1)] / by_key[(12, 2)], 2)
