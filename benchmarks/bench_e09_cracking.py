"""E9 — Section 6.1 / [22, 18]: database cracking.

Claims regenerated:
* the first cracked query costs about one scan; subsequent queries
  converge to index-like cost ("just-in-time partial indexing");
* cumulative cracking cost beats upfront full sorting for moderate
  query counts and beats scanning immediately after a handful of
  queries;
* the benefit survives a high update load ("maintained under high
  update load ... does not require knobs").
"""

import numpy as np

from conftest import run_once

from repro.cracking import CrackedStore, CrackerColumn, FullSortIndex, \
    ScanSelect
from repro.workloads import uniform_ints

N = 500_000
N_QUERIES = 200
WIDTH = 1 << 21
CHECKPOINTS = (1, 2, 5, 10, 25, 50, 100, 200)


def make_queries(seed=2):
    rng = np.random.default_rng(seed)
    return [(int(lo), int(lo) + WIDTH) for lo in
            rng.integers(0, (1 << 30) - WIDTH, N_QUERIES)]


def convergence():
    values = uniform_ints(N, seed=1)
    scan = ScanSelect(values)
    index = FullSortIndex(values)
    cracker = CrackerColumn(values)
    queries = make_queries()
    per_query = []
    cumulative = []
    for q, (lo, hi) in enumerate(queries, start=1):
        before = (scan.tuples_touched, index.tuples_touched,
                  cracker.tuples_touched)
        a = scan.select_range(lo, hi)
        b = index.select_range(lo, hi)
        c = cracker.select_range(lo, hi)
        assert len(a) == len(b) == len(c)
        if q in CHECKPOINTS:
            per_query.append((q,
                              scan.tuples_touched - before[0],
                              index.tuples_touched - before[1],
                              cracker.tuples_touched - before[2]))
            cumulative.append((q, scan.tuples_touched,
                               index.tuples_touched,
                               cracker.tuples_touched))
    return per_query, cumulative, cracker.n_pieces()


def under_updates():
    values = uniform_ints(N, seed=1)
    store = CrackedStore(values, merge_threshold=2048)
    queries = make_queries(seed=3)
    rng = np.random.default_rng(4)
    for lo, hi in queries[:50]:
        store.select_range(lo, hi)
    converged = store.tuples_touched
    n_update_queries = 100
    for i in range(n_update_queries):
        store.insert(rng.integers(0, 1 << 30, 200).tolist())
        lo, hi = queries[50 + i % 100]
        store.select_range(lo, hi)
    per_query = (store.tuples_touched - converged) / n_update_queries
    return per_query, store.merges_performed


def test_e09_cracking(benchmark, sink):
    def harness():
        return convergence(), under_updates()

    (per_query, cumulative, pieces), (upd_cost, merges) = \
        run_once(benchmark, harness)
    sink.table(
        "E9a: tuples touched per query (N={0:,})".format(N),
        ["query#", "scan", "sort-index", "cracking"], per_query)
    sink.table(
        "E9b: cumulative tuples touched",
        ["after query#", "scan", "sort-index", "cracking"], cumulative)
    sink.note("cracker pieces after {0} queries: {1}".format(
        N_QUERIES, pieces))
    sink.note("under 200-inserts-per-query load: {0:,.0f} touched/query "
              "({1} merges); scan would pay {2:,}".format(
                  upd_cost, merges, N))
    first = per_query[0]
    last = per_query[-1]
    assert first[3] >= N            # first query ~ one scan (cracks all)
    assert last[3] < first[3] / 20  # converged
    final = cumulative[-1]
    assert final[3] < final[1]      # beats always-scanning
    assert final[3] < final[2]      # beats upfront sort at this horizon
    assert upd_cost < N / 4         # benefit survives updates
    benchmark.extra_info["convergence_ratio"] = round(first[3] / last[3])
