"""E11 — Section 6.2 / [21, 23]: DataCell basket processing.

"Its salient feature is to focus on incremental bulk-event processing
using the binary relational algebra engine."  The basket-size sweep
shows per-event stream processing (basket size 1) against bulk baskets
on identical continuous queries — same answers, orders of magnitude
apart in sustained event rate.
"""

import time

import numpy as np

from conftest import run_once

from repro.datacell import ContinuousQuery, DataCellEngine, \
    TumblingCountWindow

N_EVENTS = 60_000
BASKET_SIZES = (1, 8, 64, 512, 4096)


def make_events(n, seed=0):
    rng = np.random.default_rng(seed)
    temps = rng.normal(25.0, 8.0, n).round(1)
    sensors = rng.integers(0, 16, n)
    return [(i, int(sensors[i]), float(temps[i])) for i in range(n)]


def sweep():
    events = make_events(N_EVENTS)
    rows = []
    reference = None
    for size in BASKET_SIZES:
        engine = DataCellEngine(["ts", "sensor", "temp"],
                                basket_size=size)
        engine.register(ContinuousQuery(
            "alerts", predicate=(">", "temp", 38.0),
            aggregate=("count", "temp")))
        engine.register(ContinuousQuery(
            "avg128", window=TumblingCountWindow(128),
            aggregate=("avg", "temp")))
        start = time.perf_counter()
        engine.push_many(events)
        engine.flush()
        elapsed = time.perf_counter() - start
        outcome = (sum(engine.query("alerts").results),
                   engine.query("avg128").results)
        if reference is None:
            reference = outcome
        assert outcome == reference  # bulk is transparent
        rows.append((size, round(elapsed * 1000, 1),
                     round(N_EVENTS / elapsed)))
    return rows


def test_e11_datacell(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E11: DataCell event rate by basket size ({0:,} events, "
        "2 standing queries)".format(N_EVENTS),
        ["basket size", "wall ms", "events/sec"], rows)
    by_size = {r[0]: r[2] for r in rows}
    assert by_size[512] > 8 * by_size[1]
    assert by_size[4096] >= by_size[64]
    benchmark.extra_info["rate_ratio_4096_vs_1"] = round(
        by_size[4096] / by_size[1], 1)
