"""E8 — Section 3: O(1) positional lookup vs B-tree descent.

"This use of arrays in virtual memory ... provide[s] an O(1)
positional database lookup mechanism.  From a CPU overhead point of
view this compares favorably to B-tree lookup into slotted pages."

For growing table sizes: wall-clock per lookup (Python) and simulated
memory accesses/cycles per lookup (hierarchy traces) for both designs.
The BAT's cost is flat in N; the B-tree's grows with log(N).
"""

import time

import numpy as np

from conftest import run_once

from repro.core import BAT
from repro.hardware import SCALED_DEFAULT
from repro.storage import BPlusTree
from repro.workloads import uniform_ints

SIZES = (1_000, 10_000, 100_000, 1_000_000)
PROBES = 500


def sweep():
    rows = []
    rng = np.random.default_rng(0)
    for n in SIZES:
        values = uniform_ints(n, seed=n)
        bat = BAT.from_values(values)
        tree = BPlusTree(order=32)
        tree.insert_many((int(k), int(v))
                         for k, v in enumerate(values.tolist()))
        probes = rng.integers(0, n, PROBES)

        start = time.perf_counter()
        for key in probes.tolist():
            bat.find(key)
        bat_wall = (time.perf_counter() - start) / PROBES

        start = time.perf_counter()
        for key in probes.tolist():
            tree.search(key)
        tree_wall = (time.perf_counter() - start) / PROBES

        h_bat = SCALED_DEFAULT.make_hierarchy()
        h_tree = SCALED_DEFAULT.make_hierarchy()
        for key in probes.tolist():
            h_bat.access(np.asarray([bat.tail_base + key * 8]))
            h_tree.access(tree.lookup_trace(key))
        rows.append((n, tree.height,
                     round(bat_wall * 1e6, 2), round(tree_wall * 1e6, 2),
                     round(h_bat.accesses / PROBES, 1),
                     round(h_tree.accesses / PROBES, 1),
                     round(h_bat.total_cycles / PROBES, 1),
                     round(h_tree.total_cycles / PROBES, 1)))
    return rows


def test_e08_positional_lookup(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E8: point lookup, BAT positional vs B+-tree ({0} probes)".format(
            PROBES),
        ["N", "tree height", "BAT us", "tree us", "BAT accesses",
         "tree accesses", "BAT sim cycles", "tree sim cycles"],
        rows)
    for row in rows:
        if row[0] >= 100_000:
            # Python wall clock is noisy at small N; the advantage is
            # robust once the tree has real depth.
            assert row[2] < row[3]
        assert row[6] < row[7]  # simulated cycles
    # BAT access count is flat in N; the tree's grows.
    assert rows[0][4] == rows[-1][4] == 1.0
    assert rows[-1][5] > rows[0][5]
    benchmark.extra_info["cycle_advantage_at_1M"] = round(
        rows[-1][7] / rows[-1][6], 1)
