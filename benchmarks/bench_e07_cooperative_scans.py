"""E7 — Section 5 / [45]: cooperative scans.

"The cooperative scan I/O scheduling, where multiple active queries
cooperate to create synergy rather than competition for I/O
resources."  Concurrent full-table scans arrive staggered; the
cooperative (relevance-based, out-of-order) scheduler is compared with
classic independent in-order LRU scanning on total I/O time, seeks,
page reads, and per-query latency.
"""

from conftest import run_once

from repro.vectorized import ScanQuery, SimulatedDisk, run_scans

N_PAGES = 256
BUFFER = 32
STAGGER_MS = 3.0


def sweep():
    rows = []
    for n_queries in (2, 4, 8, 16):
        outcome = {}
        for policy in ("independent", "cooperative"):
            disk = SimulatedDisk(N_PAGES)
            queries = [ScanQuery("q{0}".format(i), 0, N_PAGES,
                                 arrival_ms=i * STAGGER_MS)
                       for i in range(n_queries)]
            run_scans(queries, disk, buffer_capacity=BUFFER,
                      policy=policy)
            latency = sum(q.finish_time_ms - q.arrival_ms
                          for q in queries) / n_queries
            outcome[policy] = (disk.stats.reads, disk.stats.seeks,
                               round(disk.stats.time_ms, 1),
                               round(latency, 1))
        rows.append((n_queries,) + outcome["independent"]
                    + outcome["cooperative"]
                    + (round(outcome["independent"][3]
                             / outcome["cooperative"][3], 1),))
    return rows


def test_e07_cooperative_scans(benchmark, sink):
    rows = run_once(benchmark, sweep)
    sink.table(
        "E7: {0} pages, {1}-page buffer, scans arriving {2} ms apart "
        "(ind=independent, coop=cooperative)".format(
            N_PAGES, BUFFER, STAGGER_MS),
        ["queries", "ind reads", "ind seeks", "ind ms", "ind latency",
         "coop reads", "coop seeks", "coop ms", "coop latency",
         "latency speedup"],
        rows)
    # Synergy grows with concurrency; at 8+ queries cooperative wins
    # big on latency and total time.
    by_q = {r[0]: r for r in rows}
    assert by_q[8][9] >= 2
    assert by_q[16][9] >= 2
    assert by_q[16][7] < by_q[16][3]  # total time also lower
    benchmark.extra_info["latency_speedup_at_16"] = by_q[16][9]
