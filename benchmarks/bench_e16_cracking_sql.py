"""E16 — ablation: cracking deployed inside the SQL engine (§6.1).

E9 measures the cracker data structure in isolation; this ablation
measures the paper's actual deployment story — "the physical data
layout is reorganized within the critical path of query processing" —
by running the same SQL range-query workload on a plain database and
on one whose optimizer pipeline swaps selections for
``sql.crackedselect``.  No schema changes, no knobs: the only
difference is one optimizer module.
"""

import time

import numpy as np

from conftest import run_once

from repro.sql import Database
from repro.workloads import uniform_ints

N = 200_000
N_QUERIES = 120


def build(db_factory):
    db = db_factory()
    db.execute("CREATE TABLE m (v INT)")
    db.catalog.get("m").append_rows(
        [(int(v),) for v in uniform_ints(N, 0, 1 << 20, seed=5)])
    return db


def run_workload(db, queries):
    start = time.perf_counter()
    out = [db.execute(q).scalar() for q in queries]
    return out, time.perf_counter() - start


def harness():
    rng = np.random.default_rng(6)
    queries = []
    for _ in range(N_QUERIES):
        lo = int(rng.integers(0, (1 << 20) - 4096))
        queries.append("SELECT count(*) FROM m WHERE v >= {0} AND "
                       "v < {1}".format(lo, lo + 4096))
    plain = build(Database)
    cracked = build(Database.with_cracking)
    plain_out, plain_s = run_workload(plain, queries)
    cracked_out, cracked_s = run_workload(cracked, queries)
    assert plain_out == cracked_out
    touched, pieces = cracked.catalog.get("m").cracker_stats("v")
    # Split the workload in half to show the warm-up effect.
    half = N_QUERIES // 2
    plain2 = build(Database)
    cracked2 = build(Database.with_cracking)
    run_workload(cracked2, queries[:half])
    warm_out, warm_s = run_workload(cracked2, queries[half:])
    run_workload(plain2, queries[:half])
    cold_out, cold_plain_s = run_workload(plain2, queries[half:])
    assert warm_out == cold_out
    return [
        ("plain engine", round(plain_s * 1000), "-", "-"),
        ("cracking engine (all queries)", round(cracked_s * 1000),
         "{0:,}".format(touched), pieces),
        ("plain, 2nd half only", round(cold_plain_s * 1000), "-", "-"),
        ("cracking, 2nd half (warm)", round(warm_s * 1000), "-", "-"),
    ]


def test_e16_cracking_sql(benchmark, sink):
    rows = run_once(benchmark, harness)
    sink.table(
        "E16: {0} SQL range queries over {1:,} rows".format(N_QUERIES, N),
        ["configuration", "wall ms", "tuples reorganized", "pieces"],
        rows)
    by_label = {r[0]: r[1] for r in rows}
    # Once warm, the cracked engine answers the same queries faster
    # than the scanning engine.
    assert by_label["cracking, 2nd half (warm)"] < \
        by_label["plain, 2nd half only"]
    benchmark.extra_info["warm_speedup"] = round(
        by_label["plain, 2nd half only"]
        / max(by_label["cracking, 2nd half (warm)"], 1), 1)
