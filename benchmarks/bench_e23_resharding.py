"""E23 — online resharding under load: bounded disruption, zero loss.

The E22 open-loop multi-tenant workload (admission-controlled, mixed
OLTP/OLAP, zipf tenants) runs against a 2-shard database twice per
seed: a baseline run, and a run where an online shard split starts at
tick 100 and advances one state-machine step per tick until its fenced
cutover installs the 3-shard map — copy chunks, delta catch-up and
dual-routed pumps all compete with the foreground transactions for the
same simulated links.

The gates encode the paper's elasticity claim:

* **zero loss** — every OLTP commit adds exactly 1 to one account row,
  so ``sum(v) == oltp_commits`` is a differential check that no acked
  write was lost and no migrated delta applied twice, across the
  split;
* **bounded disruption** — p99 latency while the split runs may
  inflate only within a constant envelope of the baseline, and
  goodput must hold most of its baseline level;
* transactions fenced by the cutover surface as ordinary conflicts
  (retryable), never as errors or isolation violations.
"""

from conftest import run_once

from repro.workloads import MultiTenantWorkload

SEEDS = (11, 23)
DURATION = 240
CAPACITY = 4.0
DEADLINE = 40.0
SPLIT_AT = 100


def _workload(seed, on_tick=None):
    from repro.sharding import ShardedDatabase
    return MultiTenantWorkload(
        seed, backend=ShardedDatabase(n_shards=2), duration=DURATION,
        capacity=CAPACITY, overload=1.0, deadline=DEADLINE,
        admission=True, max_queue_depth=8, on_tick=on_tick)


def _split_hook(state):
    def on_tick(workload, tick):
        backend = workload.backend
        if tick == SPLIT_AT:
            backend.split_shard(0, chunk_rows=2)
            state["started"] = tick
        migration = backend.migration
        if migration is not None and not migration.finished:
            migration.step()
            if migration.finished:
                state["finished"] = tick
    return on_tick


def _sum_v(backend):
    return backend.query("SELECT sum(v) FROM accounts")[0][0]


def sweep():
    rows = []
    outcomes = {}
    for seed in SEEDS:
        base_wl = _workload(seed)
        base = base_wl.run()
        state = {}
        split_wl = _workload(seed, on_tick=_split_hook(state))
        split = split_wl.run()
        outcomes[seed] = (base, split, state,
                          _sum_v(base_wl.backend),
                          _sum_v(split_wl.backend),
                          split_wl.backend)
        for mode, report, backend in (("baseline", base, base_wl.backend),
                                      ("split", split, split_wl.backend)):
            rows.append((
                seed, mode, report.completed, report.conflicts,
                report.oltp_commits, _sum_v(backend),
                round(report.p50, 1), round(report.p99, 1),
                round(report.goodput, 3), backend.shard_map.epoch,
                len(backend.shards)))
    return rows, outcomes


def test_e23_resharding_under_load(benchmark, sink):
    rows, outcomes = run_once(benchmark, sweep)
    sink.table(
        "E23: online shard split under the E22 workload ({0} ticks, "
        "split starts at tick {1}, one migration step per tick)".format(
            DURATION, SPLIT_AT),
        ["seed", "mode", "completed", "conflicts", "oltp commits",
         "sum(v)", "p50", "p99", "goodput", "epoch", "shards"], rows)
    sink.note("The split's copy chunks, delta pumps and cutover fence "
              "share the links with foreground transactions; the "
              "latency envelope holds because each migration step is "
              "bounded work, and the fenced cutover turns in-flight "
              "transactions into ordinary retryable conflicts instead "
              "of losing or double-applying their writes.")

    for seed, (base, split, state, base_sum, split_sum, backend) \
            in outcomes.items():
        # The split actually ran, finished, and installed the new map.
        assert state.get("started") == SPLIT_AT
        assert "finished" in state, "split never converged"
        assert backend.migration is None
        assert backend.shard_map.epoch == 1
        assert len(backend.shards) == 3
        # Zero loss, zero double-apply — in both runs every acked OLTP
        # commit is exactly one +1, before/through/after migration.
        assert base_sum == base.oltp_commits, seed
        assert split_sum == split.oltp_commits, seed
        # Isolation stayed clean through the migration.
        assert base.violations == [] and split.violations == []
        # Bounded disruption: p99 inflates within a constant envelope
        # and goodput holds most of the baseline.
        assert split.p99 <= max(5.0 * base.p99, base.p99 + 50.0), \
            "p99 blew out: {0} -> {1}".format(base.p99, split.p99)
        assert split.goodput >= 0.5 * base.goodput, \
            "goodput collapsed: {0} -> {1}".format(base.goodput,
                                                   split.goodput)

    seed = SEEDS[0]
    base, split = outcomes[seed][0], outcomes[seed][1]
    benchmark.extra_info["baseline_p99"] = round(base.p99, 1)
    benchmark.extra_info["split_p99"] = round(split.p99, 1)
    benchmark.extra_info["baseline_goodput"] = round(base.goodput, 3)
    benchmark.extra_info["split_goodput"] = round(split.goodput, 3)
    benchmark.extra_info["split_ticks"] = \
        outcomes[seed][2]["finished"] - SPLIT_AT
