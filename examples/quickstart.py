#!/usr/bin/env python
"""Quickstart: the paper's Figure 1, end to end.

Creates the `people` table of Figure 1, runs `select(age, 1927)` plus
name reconstruction through the full stack (SQL -> MAL -> optimizer
pipeline -> BAT Algebra), shows the generated MAL plan, and finishes
with a snapshot-isolation transaction on delta BATs.

Run:  python examples/quickstart.py
"""

from repro import Database


def main():
    db = Database()
    db.execute("CREATE TABLE people (name VARCHAR, age INT)")
    db.execute("INSERT INTO people VALUES "
               "('john wayne', 1907), ('roger moore', 1927), "
               "('bob fosse', 1927), ('will smith', 1968)")

    print("== Figure 1: select(age, 1927) + tuple reconstruction ==")
    result = db.execute("SELECT name, age FROM people WHERE age = 1927")
    print(result)

    print("\n== The MAL program the SQL compiles to ==")
    print(db.explain("SELECT name FROM people WHERE age = 1927"))

    print("\n== Operator-at-a-time statistics ==")
    stats = db.interpreter.stats
    print("instructions executed:", stats.instructions_executed)
    print("tuples materialized:  ", stats.tuples_materialized)

    print("\n== Snapshot isolation on delta BATs ==")
    txn = db.begin()
    txn.execute("INSERT INTO people VALUES ('grace kelly', 1929)")
    txn.execute("DELETE FROM people WHERE name = 'will smith'")
    inside = txn.execute("SELECT count(*) FROM people").scalar()
    outside = db.execute("SELECT count(*) FROM people").scalar()
    print("rows visible inside txn: ", inside)
    print("rows visible outside txn:", outside, "(writes still buffered)")
    txn.commit()
    print("after commit:            ",
          db.execute("SELECT count(*) FROM people").scalar())
    print(db.execute("SELECT name, age FROM people ORDER BY age"))


if __name__ == "__main__":
    main()
