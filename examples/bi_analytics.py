#!/usr/bin/env python
"""Business-intelligence analytics: the workload shift that motivated
column stores (paper, Section 1).

One revenue query over a star schema, executed three ways:

* SQL through the MonetDB-style engine (column-at-a-time, full
  materialization);
* the X100 vectorized engine (pipelined cache-sized vectors);
* the tuple-at-a-time Volcano engine (the traditional baseline).

All three produce identical answers; their wall-clock times show why
the execution paradigm matters.

Run:  python examples/bi_analytics.py
"""

import time

import numpy as np

from repro import Database
from repro.storage import (
    GroupAggregate,
    HashJoinOp,
    SelectOp,
    TableScan,
    run_plan,
)
from repro.vectorized import (
    ExecutionContext,
    VectorAggregate,
    VectorHashJoin,
    VectorProject,
    VectorScan,
    VectorSelect,
    run_engine,
)
from repro.workloads import StarSchema


def timed(label, fn):
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    print("{0:<28} {1:8.1f} ms".format(label, elapsed * 1000))
    return out


def main():
    schema = StarSchema(n_sales=200_000, n_items=200, n_stores=20)
    print("Query: revenue by item category for sales with qty >= 5\n")

    # -- MonetDB-style SQL ---------------------------------------------------
    db = schema.populate(Database())
    sql = ("SELECT category, sum(qty * price) AS revenue "
           "FROM sales JOIN items ON sales.item_id = items.item_id "
           "WHERE qty >= 5 GROUP BY category ORDER BY category")
    sql_rows = timed("SQL / BAT algebra", lambda: db.query(sql))

    # -- X100 vectorized -------------------------------------------------------
    def vectorized():
        ctx = ExecutionContext(vector_size=1024)
        plan = VectorAggregate(
            ctx,
            VectorProject(
                ctx,
                VectorHashJoin(ctx, VectorScan(ctx, schema.item_columns()),
                               VectorSelect(ctx,
                                            VectorScan(
                                                ctx,
                                                schema.sales_columns()),
                                            (">=", "qty", 5)),
                               build_key="item_id", probe_key="item_id"),
                {"category": "category",
                 "revenue": ("*", "qty", "price")}),
            group_key="category",
            aggregates={"revenue": ("sum", "revenue")})
        out = run_engine(plan)
        order = np.argsort(out["category"])
        return list(zip(out["category"][order].tolist(),
                        out["revenue"][order].tolist()))

    vector_rows = timed("X100 vectorized", vectorized)

    # -- Volcano tuple-at-a-time -------------------------------------------------
    def volcano():
        items_by_cols = schema.item_rows()  # (item_id, category, price)
        sales = schema.sales_rows()         # (item_id, store_id, qty, day)
        plan = GroupAggregate(
            HashJoinOp(TableScan(items_by_cols),
                       SelectOp(TableScan(sales), lambda r: r[2] >= 5),
                       build_key=lambda r: r[0],
                       probe_key=lambda r: r[0]),
            # joined row: sale(4 fields) + item(3 fields)
            key_fn=lambda r: r[5],
            aggregates=[(0.0, lambda acc, r: acc + r[2] * r[6])])
        return sorted(run_plan(plan))

    volcano_rows = timed("Volcano tuple-at-a-time", volcano)

    # -- cross-check ---------------------------------------------------------------
    def normalize(rows):
        return [(int(c), round(float(r), 2)) for c, r in rows]

    assert normalize(sql_rows) == normalize(vector_rows) \
        == normalize(volcano_rows)
    print("\nAll three engines agree; revenue by category:")
    for category, revenue in normalize(sql_rows):
        print("  category {0}: {1:12.2f}".format(category, revenue))


if __name__ == "__main__":
    main()
