#!/usr/bin/env python
"""DataCell streaming (paper, Section 6.2): incremental bulk-event
processing with predicate-based windows.

A sensor stream flows through the DataCell: a basket collects events,
and continuous queries fire per basket using the columnar bulk
primitives.  The demo contrasts per-event processing (basket size 1)
with bulk baskets, and shows a predicate-based session window.

Run:  python examples/streaming.py
"""

import time

import numpy as np

from repro.datacell import (
    ContinuousQuery,
    DataCellEngine,
    PredicateWindow,
    TumblingCountWindow,
)


def make_events(n, seed=0):
    rng = np.random.default_rng(seed)
    temps = rng.normal(25.0, 8.0, n).round(1)
    sensor = rng.integers(0, 16, n)
    return [(i, int(sensor[i]), float(temps[i])) for i in range(n)]


def run(basket_size, events):
    engine = DataCellEngine(["ts", "sensor", "temp"],
                            basket_size=basket_size)
    engine.register(ContinuousQuery(
        "overheat", predicate=(">", "temp", 35.0),
        aggregate=("count", "temp")))
    engine.register(ContinuousQuery(
        "avg_64", window=TumblingCountWindow(64),
        aggregate=("avg", "temp")))
    start = time.perf_counter()
    engine.push_many(events)
    engine.flush()
    elapsed = time.perf_counter() - start
    return engine, elapsed


def main():
    events = make_events(100_000)
    print("pushing {0:,} sensor events\n".format(len(events)))
    print("{0:>12} {1:>12} {2:>14}".format("basket size", "time (ms)",
                                           "events/sec"))
    reference = None
    for size in (1, 16, 256, 4096):
        engine, elapsed = run(size, events)
        alerts = sum(engine.query("overheat").results)
        averages = engine.query("avg_64").results
        if reference is None:
            reference = (alerts, averages)
        assert (alerts, averages) == reference, "semantics must not change"
        print("{0:>12} {1:>12.1f} {2:>14,.0f}".format(
            size, elapsed * 1000, len(events) / elapsed))
    print("\noverheat alerts: {0}; windows fired: {1}".format(
        reference[0], len(reference[1])))

    print("\n== predicate-based session window ==")
    # Sessions close when a sensor reports temp < 0 (a reset marker);
    # members are the positive readings of the session.
    engine = DataCellEngine(["ts", "sensor", "temp"], basket_size=32)
    engine.register(ContinuousQuery(
        "sessions",
        window=PredicateWindow(member=(">", "temp", 0.0),
                               close=("<", "temp", 0.0)),
        aggregate=("max", "temp")))
    stream = [(1, 0, 20.0), (2, 0, 30.5), (3, 0, -1.0),
              (4, 0, 12.0), (5, 0, -1.0), (6, 0, 7.0)]
    engine.push_many(stream)
    engine.flush()
    print("session maxima:", engine.query("sessions").results)


if __name__ == "__main__":
    main()
