#!/usr/bin/env python
"""Cache-conscious join lab (paper, Section 4 / Figure 2).

Joins two relations on the simulated memory hierarchy and prints the
cache/TLB behaviour of:

* the straightforward bucket-chained hash join;
* one-pass radix clustering with too many clusters (the thrashing of
  Section 4.2);
* the multi-pass radix-cluster partitioned hash join, tuned by the
  Section 4.4 cost model.

Run:  python examples/join_lab.py
"""

import numpy as np

from repro.costmodel import best_partitioning
from repro.hardware import SCALED_DEFAULT
from repro.joins import partitioned_hash_join, radix_cluster, \
    simple_hash_join
from repro.workloads import dense_keys


def report(label, hierarchy):
    rep = hierarchy.report()
    l1 = rep.cache_stats["L1"]
    l2 = rep.cache_stats["L2"]
    print("{0:<34} {1:>9,} {2:>9,} {3:>9,} {4:>12,}".format(
        label, l1.misses, l2.misses, rep.tlb_stats.misses,
        hierarchy.total_cycles))


def main():
    n = 1 << 15
    left = dense_keys(n, seed=1)
    right = dense_keys(n, seed=2)
    print("joining two relations of {0:,} tuples on profile "
          "'{1}'\n".format(n, SCALED_DEFAULT.name))
    print("{0:<34} {1:>9} {2:>9} {3:>9} {4:>12}".format(
        "algorithm", "L1 miss", "L2 miss", "TLB miss", "sim cycles"))

    h = SCALED_DEFAULT.make_hierarchy()
    simple_hash_join(left, right, hierarchy=h)
    report("simple hash join", h)

    h = SCALED_DEFAULT.make_hierarchy()
    simple_hash_join(left, right, hierarchy=h, cpu_optimized=False)
    report("simple hash join (naive CPU)", h)

    # One-pass clustering with far too many clusters: the explosion.
    h = SCALED_DEFAULT.make_hierarchy()
    radix_cluster(left, bits=12, passes=1, hierarchy=h)
    report("radix-cluster B=12 in 1 pass", h)

    h = SCALED_DEFAULT.make_hierarchy()
    radix_cluster(left, bits=12, passes=2, hierarchy=h)
    report("radix-cluster B=12 in 2 passes", h)

    # The cost model picks the tuning (Section 4.4's automation).
    bits, pass_bits, predicted = best_partitioning(n, n, SCALED_DEFAULT)
    h = SCALED_DEFAULT.make_hierarchy()
    result = partitioned_hash_join(left, right, bits=bits,
                                   passes=list(pass_bits), hierarchy=h)
    report("partitioned join B={0} P={1}".format(bits, len(pass_bits)), h)
    print("\ncost model chose B={0}, passes={1} "
          "(predicted {2:,.0f} cycles)".format(bits, list(pass_bits),
                                               int(predicted)))
    print("join produced {0:,} result pairs".format(len(result)))

    h_simple = SCALED_DEFAULT.make_hierarchy()
    simple_hash_join(left, right, hierarchy=h_simple, cpu_optimized=False)
    h_tuned = SCALED_DEFAULT.make_hierarchy()
    partitioned_hash_join(left, right, bits=bits, passes=list(pass_bits),
                          hierarchy=h_tuned)
    print("cache+CPU optimized vs naive simple join: {0:.1f}x".format(
        h_simple.total_cycles / h_tuned.total_cycles))


if __name__ == "__main__":
    main()
