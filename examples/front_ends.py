#!/usr/bin/env python
"""One columnar back-end, many data models (paper, Section 3.2).

"The original DSM paper articulates the idea that DSM could be the
physical data model building block to empower many more complex
user-level data models.  This observation is validated with the
open-source MonetDB architecture, where all front-ends produce code
for the same columnar back-end."

This demo runs four data models on the same BAT machinery:
SQL relations, XPath over pre/post-shredded XML (staircase joins),
SPARQL over dictionary-encoded RDF triples, and SRAM-style dense
arrays.

Run:  python examples/front_ends.py
"""

import numpy as np

from repro import Database
from repro.arrays import DenseArray
from repro.rdf import TripleStore, sparql
from repro.xml import shred, xpath


def main():
    print("== SQL (relations as void-headed BATs) ==")
    db = Database()
    db.execute("CREATE TABLE papers (title VARCHAR, year INT)")
    db.execute("INSERT INTO papers VALUES "
               "('Monet kernel', 1994), ('Radix joins', 1999), "
               "('Cracking', 2005), ('X100', 2005)")
    print(db.execute("SELECT title FROM papers WHERE year > 2000 "
                     "ORDER BY title"))

    print("\n== XQuery/XPath (XML as pre/post BATs + staircase joins) ==")
    doc = shred("""
        <lab>
          <project name="monet">
            <paper><year>1999</year></paper>
            <paper><year>2004</year></paper>
          </project>
          <project name="x100">
            <paper><year>2005</year></paper>
          </project>
        </lab>""")
    hits = xpath(doc, "//paper/year")
    print("//paper/year ->", [doc.node_text(int(p)) for p in hits])
    hits = xpath(doc, "//paper[year='2004']")
    print("//paper[year='2004'] -> pre ranks", hits.tolist())

    print("\n== SPARQL (RDF as dictionary-encoded triple BATs) ==")
    store = TripleStore()
    store.add_many([
        ("monetdb", "type", "column-store"),
        ("x100", "type", "column-store"),
        ("x100", "derivedFrom", "monetdb"),
        ("vectorwise", "derivedFrom", "x100"),
    ])
    names, rows = sparql(store, """
        SELECT ?grandchild WHERE {
            ?grandchild <derivedFrom> ?child .
            ?child <derivedFrom> <monetdb> .
        }""")
    print("transitive derivation of monetdb ->", rows)

    print("\n== SRAM arrays (dense arrays as void-headed BATs) ==")
    grid = DenseArray.from_numpy(
        np.arange(24, dtype=np.int64).reshape(4, 6))
    print("4x6 grid, slice rows 1..3, columns 2..5:")
    print(grid.slice(ax0=(1, 3), ax1=(2, 5)).to_numpy())
    print("column sums:", grid.aggregate("sum", axis=0).to_numpy())
    print("grand total:", grid.aggregate("sum"))


if __name__ == "__main__":
    main()
