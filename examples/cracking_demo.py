#!/usr/bin/env python
"""Database cracking (paper, Section 6.1): "not all data is equally
important."

A sequence of random range queries over a 1M-integer column, answered
by three physical designs:

* full scan every time;
* an upfront fully-sorted index (pays n*log(n) before the first answer);
* a cracker column reorganizing itself inside each query.

The per-query *tuples touched* trace shows cracking's signature: first
query ~ a scan, then rapid convergence to index-like cost — without a
single tuning knob.  A second phase interleaves inserts to show the
benefit surviving updates.

Run:  python examples/cracking_demo.py
"""

import numpy as np

from repro.cracking import CrackedStore, CrackerColumn, FullSortIndex, \
    ScanSelect
from repro.workloads import uniform_ints


def main():
    n = 1_000_000
    values = uniform_ints(n, 0, 1 << 30, seed=1)
    rng = np.random.default_rng(2)

    scan = ScanSelect(values)
    index = FullSortIndex(values)
    cracker = CrackerColumn(values)

    print("column: {0:,} integers".format(n))
    print("sorted index paid {0:,} touches before the first query\n"
          .format(index.build_touched))
    print("{0:>5} {1:>12} {2:>12} {3:>12}   {4}".format(
        "query", "scan", "sort-index", "cracking", "(tuples touched)"))

    queries = []
    width = 1 << 21
    for q in range(1, 201):
        lo = int(rng.integers(0, (1 << 30) - width))
        queries.append((lo, lo + width))

    checkpoints = {1, 2, 5, 10, 20, 50, 100, 200}
    for q, (lo, hi) in enumerate(queries, start=1):
        before = (scan.tuples_touched, index.tuples_touched,
                  cracker.tuples_touched)
        a = scan.select_range(lo, hi)
        b = index.select_range(lo, hi)
        c = cracker.select_range(lo, hi)
        assert a.tolist() == b.tolist() == c.tolist()
        if q in checkpoints:
            print("{0:>5} {1:>12,} {2:>12,} {3:>12,}".format(
                q,
                scan.tuples_touched - before[0],
                index.tuples_touched - before[1],
                cracker.tuples_touched - before[2]))

    print("\ncumulative touches after 200 queries:")
    print("  scan        {0:>14,}".format(scan.tuples_touched))
    print("  sort-index  {0:>14,}".format(index.tuples_touched))
    print("  cracking    {0:>14,}".format(cracker.tuples_touched))
    print("  cracker pieces: {0}".format(cracker.n_pieces()))

    print("\n== under update load (1000 inserts per 10 queries) ==")
    store = CrackedStore(values, merge_threshold=4096)
    for _ in range(30):
        store.select_range(*queries[int(rng.integers(0, len(queries)))])
    converged = store.tuples_touched
    for round_no in range(10):
        store.insert(rng.integers(0, 1 << 30, 1000).tolist())
        for _ in range(10):
            lo, hi = queries[int(rng.integers(0, len(queries)))]
            store.select_range(lo, hi)
    per_query = (store.tuples_touched - converged) / 100
    print("avg touches/query under updates: {0:,.0f} "
          "(scan would pay {1:,})".format(per_query, n))
    print("merges performed: {0}".format(store.merges_performed))


if __name__ == "__main__":
    main()
