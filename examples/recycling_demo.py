#!/usr/bin/env python
"""Recycling intermediates (paper, Section 6.1) on a Skyserver-like log.

Runs the same synthetic astronomy query log twice — once on a plain
database and once with the recycler caching materialized operator
results — and reports the work avoided.  "It has been shown to be
effective using the real-life query log of the Skyserver."

Run:  python examples/recycling_demo.py
"""

import time

from repro import Database
from repro.workloads import SkyserverWorkload


def run_log(db, queries):
    start = time.perf_counter()
    for query in queries:
        db.execute(query)
    return time.perf_counter() - start


def main():
    workload = SkyserverWorkload(n_rows=20_000, n_regions=64,
                                 n_queries=300)

    plain = Database()
    queries = workload.populate(plain)
    plain_time = run_log(plain, queries)

    recycling = Database.with_recycling()
    workload.populate(recycling)
    recycling_time = run_log(recycling, queries)

    # Results must be identical: spot-check by re-running a few queries.
    for query in queries[:10]:
        assert plain.execute(query).rows() == \
            recycling.execute(query).rows()

    print("query log: {0} queries over {1:,} observations\n".format(
        len(queries), workload.n_rows))
    fmt = "{0:<26} {1:>14} {2:>14}"
    print(fmt.format("", "plain", "with recycler"))
    print(fmt.format("wall time (ms)",
                     "{0:.0f}".format(plain_time * 1000),
                     "{0:.0f}".format(recycling_time * 1000)))
    print(fmt.format("instructions executed",
                     plain.interpreter.stats.instructions_executed,
                     recycling.interpreter.stats.instructions_executed))
    print(fmt.format("instructions recycled", 0,
                     recycling.interpreter.stats.instructions_recycled))
    print(fmt.format("tuples materialized",
                     "{0:,}".format(
                         plain.interpreter.stats.tuples_materialized),
                     "{0:,}".format(
                         recycling.interpreter.stats.tuples_materialized)))
    stats = recycling.recycler.stats
    print("\nrecycler: {0} lookups, {1} hits ({2:.0%}), "
          "{3} entries cached".format(stats.lookups, stats.hits,
                                      stats.hit_ratio,
                                      len(recycling.recycler)))


if __name__ == "__main__":
    main()
