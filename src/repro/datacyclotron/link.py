"""Simulated network links, shared by the distributed components.

Two abstractions live here, both deterministic and fault-injectable
through :mod:`repro.faults`:

* :class:`HopGate` — the per-sender retry state machine the
  DataCyclotron ring uses for its hops: injected latency stalls the
  hop (capped by a timeout, after which the sender retransmits), and
  injected transients drop it (retried with exponential backoff).  One
  gate per rotating chunk reproduces the ring's fault semantics
  exactly.

* :class:`SimulatedLink` — a FIFO message channel driven by an
  external tick clock, used by the replication layer to ship WAL
  frames and acknowledgements.  Each ``send`` passes through the
  link's injection site: a latency fault delays delivery by that many
  ticks, a transient fault drops the message (senders retransmit on
  their next heartbeat), and a crash fault cuts the link — the
  simulated equivalent of a network partition, also reachable directly
  via :meth:`SimulatedLink.cut`.

Delivery is first-in-first-out even under unequal injected delays (a
delayed message holds every later one behind it, like a TCP stream),
and every message takes at least one tick — so a request/response
round trip costs two ticks of the simulated clock.
"""

from dataclasses import dataclass

from repro.faults import NO_FAULTS, CrashError, TransientFault


@dataclass
class LinkStats:
    """Counters shared by both link abstractions."""

    sent: int = 0            # messages accepted into the channel
    delivered: int = 0       # messages handed to the receiver
    dropped: int = 0         # messages lost (transient fault / cut link)
    bytes_sent: int = 0      # payload bytes accepted
    stalled: int = 0         # sends/hops delayed by injected latency
    retries: int = 0         # dropped hops retried with backoff
    retransmits: int = 0     # hops forced through after a timeout


class HopGate:
    """Retry/backoff state for one repeatedly-hopping sender.

    :meth:`try_hop` fires the injection site once per eligible attempt
    and answers whether the hop may advance *this* step.  A latency
    fault below the timeout stalls the sender for the injected number
    of steps; a spike at or beyond the timeout is capped there and
    counted as a retransmission (the receiver gave up waiting); a
    transient fault drops the hop and the sender backs off
    exponentially (1, 2, 4, ... steps, capped by the timeout).
    """

    __slots__ = ("wait", "consecutive_drops")

    def __init__(self):
        self.wait = 0
        self.consecutive_drops = 0

    def try_hop(self, faults, site, timeout, stats, **detail):
        """One step of the sender's clock; True when the hop advances."""
        if self.wait > 0:
            self.wait -= 1
            return False
        try:
            delay = faults.inject(site, **detail)
        except TransientFault:
            self.consecutive_drops += 1
            self.wait = min(2 ** (self.consecutive_drops - 1),
                            timeout) - 1
            stats.retries += 1
            return False
        self.consecutive_drops = 0
        if delay > 0:
            if delay >= timeout:
                self.wait = timeout - 1
                stats.retransmits += 1
            else:
                self.wait = delay - 1
                stats.stalled += 1
            return False
        return True


class SimulatedLink:
    """One direction of a point-to-point link on a tick clock.

    Parameters
    ----------
    site:
        Default fault-injection site fired per send (``send`` may
        override it per message, so one physical link can carry
        differently-named traffic classes, e.g. ``repl.ship`` frames
        and ``repl.ack`` responses).
    faults:
        The :class:`~repro.faults.FaultInjector` deciding each send's
        fate.
    name:
        Diagnostic label, also passed to the injection site as the
        ``link`` detail.
    """

    def __init__(self, site, faults=None, name=""):
        self.site = site
        self.faults = faults if faults is not None else NO_FAULTS
        self.name = name
        self.down = False
        self.stats = LinkStats()
        self._in_flight = []      # [(deliver_at_tick, message)]
        self._last_deliver_at = 0

    def send(self, message, now, size=0, site=None):
        """Offer a message to the link at tick ``now``.

        Returns True when the message entered the channel; False when
        it was lost (cut link or injected transient).  An injected
        crash cuts the link permanently (until :meth:`heal`), modelling
        a partition; the triggering message is lost too.
        """
        if self.down:
            self.stats.dropped += 1
            return False
        try:
            delay = self.faults.inject(site or self.site, link=self.name,
                                       size=size)
        except TransientFault:
            self.stats.dropped += 1
            return False
        except CrashError:
            self.cut()
            self.stats.dropped += 1
            return False
        if delay:
            self.stats.stalled += 1
        deliver_at = max(now + 1 + delay, self._last_deliver_at)
        self._last_deliver_at = deliver_at
        self._in_flight.append((deliver_at, message))
        self.stats.sent += 1
        self.stats.bytes_sent += size
        return True

    def deliver(self, now):
        """Messages due at tick ``now``, in send order."""
        due = [m for at, m in self._in_flight if at <= now]
        if due:
            self._in_flight = [(at, m) for at, m in self._in_flight
                               if at > now]
            self.stats.delivered += len(due)
        return due

    @property
    def in_flight(self):
        return len(self._in_flight)

    @property
    def last_deliver_at(self):
        """Tick the most recently accepted message delivers at — the
        sender's wait if it blocks for the response (senders with a
        per-leg timeout compare this against their budget)."""
        return self._last_deliver_at

    def cut(self):
        """Partition the link: in-flight messages are lost and every
        send fails until :meth:`heal`."""
        self.stats.dropped += len(self._in_flight)
        self._in_flight = []
        self.down = True

    def heal(self):
        self.down = False

    def __repr__(self):
        state = "down" if self.down else "up"
        return "SimulatedLink({0!r}, {1}, {2} in flight)".format(
            self.name or self.site, state, len(self._in_flight))
