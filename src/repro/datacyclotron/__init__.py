"""DataCyclotron: the hot-set rotating through an RDMA ring (Section 6.2).

"Remote DMA enables the nodes in a cluster to write into remote memory
without interference of the CPU. ... a new species, one where the
database hot-set is continuously floating around the network.  The
obvious benefit, if successful, would be increased system throughput."

:mod:`repro.datacyclotron.ring` is a discrete-event simulation of that
architecture: the database is split into chunks that rotate around a
ring of nodes; RDMA transfers overlap with CPU work, so each node
processes the resident chunk for all its queries while the next chunk
is already flowing in.  The centralized baseline holds the data on one
node whose memory covers only part of it, paying disk reloads instead.
"""

from repro.datacyclotron.link import HopGate, LinkStats, SimulatedLink
from repro.datacyclotron.ring import (
    CentralizedResult,
    RingQuery,
    RingResult,
    run_centralized,
    run_ring,
)

__all__ = [
    "RingQuery",
    "RingResult",
    "CentralizedResult",
    "run_ring",
    "run_centralized",
    "HopGate",
    "LinkStats",
    "SimulatedLink",
]
