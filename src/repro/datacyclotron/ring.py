"""Discrete-event simulation of the DataCyclotron ring.

Time advances in *steps*; in one step every node (a) processes the
chunk currently resident in its memory against all of its pending
queries, and (b) forwards the chunk to its ring successor via RDMA.
Because RDMA bypasses the CPU, a step costs
``max(process_time, transfer_time)`` — computation and propulsion
overlap.  A query completes once every chunk it needs has rotated past
its home node.

The centralized baseline owns all chunks on one node but can hold only
``memory_chunks`` of them in RAM; every out-of-memory chunk touch pays
``disk_time``, and one CPU serializes all queries.

Fault tolerance: every hop passes through the ``ring.hop`` injection
site.  A latency spike stalls the chunk at its node for the injected
number of steps, capped by ``hop_timeout`` — after the timeout the
successor declares the hop lost and the sender *retransmits* (the
chunk advances anyway, counted in ``retransmits``).  A transient
fault drops the hop; the sender retries next step with exponential
backoff (1, 2, 4, ... steps, also capped by ``hop_timeout``).  A
stalled chunk stays resident — queries at its current node keep
processing it — so injected stalls cost steps, never answers.
"""

from dataclasses import dataclass, field

from repro.datacyclotron.link import HopGate, LinkStats
from repro.faults import NO_FAULTS


@dataclass
class RingQuery:
    """A query needing a set of chunks, issued at a home node."""

    name: str
    home_node: int
    chunks_needed: frozenset
    arrival_step: int = 0
    remaining: set = field(init=False)
    finish_step: int = None

    def __post_init__(self):
        if not self.chunks_needed:
            raise ValueError("a query needs at least one chunk")
        self.remaining = set(self.chunks_needed)


@dataclass
class RingResult:
    steps: int
    step_time_ms: float
    queries: list
    stalled_hops: int = 0    # hops delayed by injected latency
    retries: int = 0         # dropped hops retried with backoff
    retransmits: int = 0     # hops forced through after hop_timeout

    @property
    def total_time_ms(self):
        return self.steps * self.step_time_ms

    @property
    def throughput_qps(self):
        if self.total_time_ms == 0:
            return float("inf")
        return len(self.queries) / (self.total_time_ms / 1000.0)

    @property
    def mean_latency_ms(self):
        return sum((q.finish_step - q.arrival_step) * self.step_time_ms
                   for q in self.queries) / len(self.queries)


def run_ring(n_nodes, n_chunks, queries, process_ms=1.0, transfer_ms=0.5,
             capacity_per_step=64, max_steps=1_000_000, faults=None,
             hop_timeout=4):
    """Simulate the rotating hot-set; returns a :class:`RingResult`.

    Chunks start distributed round-robin over the nodes and advance one
    node per step.  Each node's CPU serves up to ``capacity_per_step``
    (query, chunk) work units per step, FIFO by arrival; queries that
    miss a chunk for lack of CPU catch it on its next time around.
    Many queries ride the same rotation and adding nodes adds CPUs —
    which is where the throughput scaling comes from.

    ``faults`` arms the ``ring.hop`` site (one hit per attempted hop);
    ``hop_timeout`` caps any injected stall or retry backoff, after
    which the hop is forced through as a retransmission (see module
    docstring).
    """
    if n_nodes < 1 or n_chunks < 1:
        raise ValueError("need at least one node and one chunk")
    if capacity_per_step < 1:
        raise ValueError("capacity_per_step must be positive")
    if hop_timeout < 1:
        raise ValueError("hop_timeout must be positive")
    faults = faults if faults is not None else NO_FAULTS
    for query in queries:
        if not 0 <= query.home_node < n_nodes:
            raise ValueError("query {0!r} homed at invalid node".format(
                query.name))
        if any(not 0 <= c < n_chunks for c in query.chunks_needed):
            raise ValueError("query {0!r} needs unknown chunks".format(
                query.name))
    # chunk_at[i]: the node where chunk i currently resides.
    chunk_at = {chunk: chunk % n_nodes for chunk in range(n_chunks)}
    step_time = max(process_ms, transfer_ms)
    step = 0
    pending = list(queries)
    # Per-chunk retry/backoff state for the hop fault semantics, shared
    # with the replication links (repro.datacyclotron.link).
    gates = {chunk: HopGate() for chunk in range(n_chunks)}
    stats = LinkStats()
    while any(q.finish_step is None for q in pending):
        if step >= max_steps:
            raise RuntimeError("ring simulation did not converge")
        # Process phase: each node exposes the chunks resident with it
        # and spends its CPU budget on its queries, FIFO.
        resident = {}
        for chunk, node in chunk_at.items():
            resident.setdefault(node, set()).add(chunk)
        budget = {node: capacity_per_step for node in range(n_nodes)}
        for query in pending:
            if query.finish_step is not None or \
                    query.arrival_step > step:
                continue
            node = query.home_node
            here = resident.get(node, set()) & query.remaining
            for chunk in sorted(here):
                if budget[node] <= 0:
                    break
                query.remaining.discard(chunk)
                budget[node] -= 1
            if not query.remaining:
                query.finish_step = step + 1
        # Propulsion phase: every chunk moves on (RDMA, CPU-free) —
        # unless a stall holds it at its node for this step, or an
        # injected fault delays/drops the hop.
        moved = {}
        for chunk in sorted(chunk_at):
            node = chunk_at[chunk]
            if gates[chunk].try_hop(faults, "ring.hop", hop_timeout,
                                    stats, chunk=chunk, node=node):
                moved[chunk] = (node + 1) % n_nodes
            else:
                moved[chunk] = node
        chunk_at = moved
        step += 1
    return RingResult(steps=step, step_time_ms=step_time, queries=pending,
                      stalled_hops=stats.stalled, retries=stats.retries,
                      retransmits=stats.retransmits)


@dataclass
class CentralizedResult:
    total_time_ms: float
    disk_loads: int
    queries: list

    @property
    def throughput_qps(self):
        if self.total_time_ms == 0:
            return float("inf")
        return len(self.queries) / (self.total_time_ms / 1000.0)

    @property
    def mean_latency_ms(self):
        return sum(q.finish_step for q in self.queries) / len(self.queries)


def run_centralized(n_chunks, queries, memory_chunks, process_ms=1.0,
                    disk_ms=10.0):
    """One node, LRU memory of ``memory_chunks`` chunks, one CPU.

    Queries run to completion one after another (scan their chunks in
    order); ``finish_step`` holds the completion time in ms.
    """
    if memory_chunks < 1:
        raise ValueError("need at least one memory chunk")
    from collections import OrderedDict
    memory = OrderedDict()
    clock = 0.0
    disk_loads = 0
    finished = []
    for query in sorted(queries, key=lambda q: q.arrival_step):
        clock = max(clock, query.arrival_step)
        for chunk in sorted(query.chunks_needed):
            if chunk in memory:
                memory.move_to_end(chunk)
            else:
                disk_loads += 1
                clock += disk_ms
                memory[chunk] = None
                if len(memory) > memory_chunks:
                    memory.popitem(last=False)
            clock += process_ms
        query.finish_step = clock
        finished.append(query)
    return CentralizedResult(total_time_ms=clock, disk_loads=disk_loads,
                             queries=finished)
