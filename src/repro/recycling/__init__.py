"""Recycling intermediates (Section 6.1, [19]).

"The results of all relational operators can be maintained in a cache,
which is also aware of their dependencies.  Then, traditional cache
replacement policies can be applied to avoid double work, cherry
picking the cache for previously derived results."

The :class:`Recycler` plugs into the MAL interpreter (which keys cache
entries by operation + argument *value identity*, so delta merges and
cracking invalidate stale entries automatically) and evicts under a
byte budget according to a pluggable policy.
"""

from repro.recycling.recycler import Recycler, RecyclerStats
from repro.recycling.policies import (
    POLICIES,
    benefit_policy,
    lru_policy,
)

__all__ = [
    "Recycler",
    "RecyclerStats",
    "POLICIES",
    "lru_policy",
    "benefit_policy",
]
