"""Eviction policies for the recycler.

A policy ranks cache entries for eviction; the entry with the smallest
score goes first.  "Traditional cache replacement policies can be
applied" (Section 6.1) — LRU — but the benefit-weighted policy of [19]
accounts for what an entry is actually worth: the work it saves per
byte it occupies.
"""


def lru_policy(entry, now):
    """Evict the least recently used entry first."""
    return entry.last_used


def benefit_policy(entry, now):
    """Evict the entry with the least saved-work density.

    Score: (cost to recompute x times reused) per byte, decayed by age
    so one-off results from old queries drain away.
    """
    age = max(now - entry.last_used, 1)
    return (entry.cost * (1 + entry.uses)) / (max(entry.nbytes, 1) * age)


POLICIES = {
    "lru": lru_policy,
    "benefit": benefit_policy,
}
