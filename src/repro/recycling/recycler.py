"""The recycler: a bounded cache of materialized operator results."""

import time
from dataclasses import dataclass, field

from repro.recycling.policies import POLICIES


@dataclass
class _Entry:
    value: object
    nbytes: int
    cost: float
    last_used: float
    uses: int = 0


@dataclass
class RecyclerStats:
    lookups: int = 0
    hits: int = 0
    stores: int = 0
    evictions: int = 0
    seconds_saved: float = 0.0

    @property
    def hit_ratio(self):
        return self.hits / self.lookups if self.lookups else 0.0


class Recycler:
    """Cache of (instruction key -> materialized results).

    Parameters
    ----------
    capacity_bytes:
        Byte budget for cached BAT payloads; None means unbounded
        ("keep everything", viable exactly because the operator-at-a-
        time paradigm materializes everything anyway).
    policy:
        Name from :data:`repro.recycling.policies.POLICIES`.
    cache_all:
        When True, the interpreter considers every instruction, not
        only those the recycler-marking optimizer flagged.
    """

    def __init__(self, capacity_bytes=None, policy="benefit",
                 cache_all=False):
        if policy not in POLICIES:
            raise KeyError("unknown policy {0!r}; available: {1}".format(
                policy, sorted(POLICIES)))
        self.capacity_bytes = capacity_bytes
        self.policy = POLICIES[policy]
        self.policy_name = policy
        self.cache_all = cache_all
        self.stats = RecyclerStats()
        self._entries = {}
        self._clock = 0.0

    def __len__(self):
        return len(self._entries)

    @property
    def bytes_cached(self):
        return sum(e.nbytes for e in self._entries.values())

    def _tick(self):
        self._clock += 1.0
        return self._clock

    # -- the interpreter protocol ----------------------------------------------

    def lookup(self, key):
        """(hit, value): consult the cache for an instruction key."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            return False, None
        entry.uses += 1
        entry.last_used = self._tick()
        self.stats.hits += 1
        self.stats.seconds_saved += entry.cost
        return True, entry.value

    def store(self, key, value, cost, nbytes):
        """Offer a freshly computed result to the cache."""
        if self.capacity_bytes is not None and \
                nbytes > self.capacity_bytes:
            return
        self._entries[key] = _Entry(value, nbytes, cost, self._tick())
        self.stats.stores += 1
        self._evict_to_capacity()

    def _evict_to_capacity(self):
        if self.capacity_bytes is None:
            return
        while self.bytes_cached > self.capacity_bytes and self._entries:
            victim = min(self._entries,
                         key=lambda k: self.policy(self._entries[k],
                                                   self._clock))
            del self._entries[victim]
            self.stats.evictions += 1

    # -- maintenance ----------------------------------------------------------------

    def clear(self):
        self._entries.clear()

    def invalidate_where(self, predicate):
        """Drop entries whose key matches a predicate (manual hook;
        normal invalidation happens via BAT version keys)."""
        for key in [k for k in self._entries if predicate(k)]:
            del self._entries[key]
