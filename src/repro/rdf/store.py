"""Dictionary-encoded triple store on columnar storage.

Terms (URIs and literals) are interned into a dictionary; the graph is
three aligned int64 columns (subject, predicate, object) with a void
"triple id" head — the vertical decomposition of §3.2 applied to RDF.
Basic-graph-pattern matching proceeds pattern by pattern, joining the
growing solution table on shared variables with the same sort-merge
machinery the relational front-end uses.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.algebra import _join_positions_fixed


@dataclass(frozen=True)
class Var:
    """A SPARQL variable (?name)."""

    name: str

    def __str__(self):
        return "?" + self.name


class TripleStore:
    """An in-memory RDF graph."""

    def __init__(self):
        self._term_ids = {}
        self._terms = []
        self._s = []
        self._p = []
        self._o = []
        self._columns = None  # built lazily

    def __len__(self):
        return len(self._s)

    # -- dictionary ---------------------------------------------------------

    def intern(self, term):
        term_id = self._term_ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._term_ids[term] = term_id
            self._terms.append(term)
        return term_id

    def term(self, term_id):
        return self._terms[term_id]

    def lookup(self, term):
        """The id of a term, or None if it never occurs."""
        return self._term_ids.get(term)

    @property
    def n_terms(self):
        return len(self._terms)

    # -- updates --------------------------------------------------------------

    def add(self, subject, predicate, obj):
        """Add one triple of string terms; duplicates are kept once."""
        triple = (self.intern(subject), self.intern(predicate),
                  self.intern(obj))
        self._s.append(triple[0])
        self._p.append(triple[1])
        self._o.append(triple[2])
        self._columns = None
        return triple

    def add_many(self, triples):
        for s, p, o in triples:
            self.add(s, p, o)

    def columns(self):
        if self._columns is None:
            self._columns = {
                "s": np.asarray(self._s, dtype=np.int64),
                "p": np.asarray(self._p, dtype=np.int64),
                "o": np.asarray(self._o, dtype=np.int64),
            }
        return self._columns

    # -- matching ----------------------------------------------------------------

    def match(self, s=None, p=None, o=None):
        """Positions of triples matching constant terms (None = any)."""
        cols = self.columns()
        mask = np.ones(len(self), dtype=bool)
        for name, term in (("s", s), ("p", p), ("o", o)):
            if term is None:
                continue
            term_id = self.lookup(term)
            if term_id is None:
                return np.empty(0, dtype=np.int64)
            mask &= cols[name] == term_id
        return np.flatnonzero(mask).astype(np.int64)

    def triples(self, positions=None):
        """Decoded (s, p, o) string triples at the given positions."""
        cols = self.columns()
        if positions is None:
            positions = np.arange(len(self), dtype=np.int64)
        return [(self.term(cols["s"][i]), self.term(cols["p"][i]),
                 self.term(cols["o"][i])) for i in positions]

    # -- basic graph patterns ---------------------------------------------------------

    def solve(self, patterns):
        """Solutions of a BGP: list of (s, p, o) patterns whose slots
        are string constants or :class:`Var`.

        Returns ``(variable names, solution columns)`` where the
        columns are aligned numpy arrays of term ids.
        """
        var_names = []
        table = None  # dict var name -> int64 array
        for pattern in patterns:
            var_names_here, columns_here = self._pattern_bindings(pattern)
            if table is None:
                table = columns_here
                var_names = var_names_here
                continue
            shared = [v for v in var_names_here if v in table]
            fresh = [v for v in var_names_here if v not in table]
            if shared:
                left_key = _composite_key(
                    [table[v] for v in shared], self.n_terms)
                right_key = _composite_key(
                    [columns_here[v] for v in shared], self.n_terms)
                l_pos, r_pos = _join_positions_fixed(left_key, right_key)
            else:  # cross product
                n_left = len(next(iter(table.values())))
                n_right = len(next(iter(columns_here.values())))
                l_pos = np.repeat(np.arange(n_left, dtype=np.int64),
                                  n_right)
                r_pos = np.tile(np.arange(n_right, dtype=np.int64),
                                n_left)
            table = {v: a[l_pos] for v, a in table.items()}
            for v in fresh:
                table[v] = columns_here[v][r_pos]
            var_names = var_names + fresh
        if table is None:
            return [], {}
        return var_names, table

    def _pattern_bindings(self, pattern):
        """(variable names, {var: id array}) for one pattern."""
        cols = self.columns()
        constants = {}
        variables = []
        for slot, value in zip("spo", pattern):
            if isinstance(value, Var):
                variables.append((slot, value.name))
            else:
                constants[slot] = value
        positions = self.match(**constants)
        out = {}
        names = []
        for slot, name in variables:
            values = cols[slot][positions]
            if name in out:
                # Same variable twice in one pattern: filter equality.
                keep = out[name] == values
                out = {k: v[keep] for k, v in out.items()}
                positions = positions[keep]
                values = values[keep]
            out[name] = values
            if name not in names:
                names.append(name)
        if not variables:
            # Ground pattern: an existence filter — one anonymous row
            # when the triple exists, none otherwise.
            out = {"__ground__": np.zeros(min(len(positions), 1),
                                          dtype=np.int64)}
            names = []
        return names, out


def _composite_key(arrays, base):
    """Combine id columns into one sortable key (ids < base)."""
    key = arrays[0].astype(np.int64)
    for arr in arrays[1:]:
        key = key * base + arr
    return key
