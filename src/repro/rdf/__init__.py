"""RDF over BATs: MonetDB as scalable RDF storage (§3.2).

"The MonetDB team has started development to provide efficient support
for the W3C query language SPARQL, using MonetDB as a scalable RDF
storage."  Triples are dictionary-encoded into three aligned BATs
(subject, predicate, object); basic graph patterns compile into the
ordinary BAT-algebra selections and joins.

* :class:`TripleStore` — dictionary + S/P/O columns + pattern matching;
* :func:`sparql` — a SPARQL subset: ``SELECT ?vars WHERE { BGP }``.
"""

from repro.rdf.store import TripleStore, Var
from repro.rdf.sparql import SPARQLError, sparql

__all__ = ["TripleStore", "Var", "sparql", "SPARQLError"]
