"""A SPARQL subset: SELECT over basic graph patterns.

Grammar::

    SELECT ?v1 ?v2 ... WHERE { pattern . pattern . ... }
    SELECT * WHERE { ... }
    pattern := term term term
    term    := <uri> | "literal" | ?var

Solutions come back as sorted, de-duplicated tuples of decoded terms in
the projection order.
"""

import re

from repro.rdf.store import Var

_TERM_RE = re.compile(r"<([^>]*)>|\"([^\"]*)\"|\?([A-Za-z_][A-Za-z_0-9]*)")
_QUERY_RE = re.compile(
    r"^\s*SELECT\s+(?P<proj>\*|(?:\?[A-Za-z_][A-Za-z_0-9]*\s*)+)\s*"
    r"WHERE\s*\{(?P<body>.*)\}\s*$", re.IGNORECASE | re.DOTALL)


class SPARQLError(ValueError):
    """Raised on malformed or unsupported queries."""


def _parse_term(token):
    match = _TERM_RE.fullmatch(token.strip())
    if not match:
        raise SPARQLError("cannot parse term {0!r}".format(token))
    uri, literal, var = match.groups()
    if var is not None:
        return Var(var)
    return uri if uri is not None else literal


def _parse(query):
    match = _QUERY_RE.match(query)
    if not match:
        raise SPARQLError("expected SELECT ... WHERE {{ ... }}, got "
                          "{0!r}".format(query))
    projection = match.group("proj").strip()
    body = match.group("body").strip()
    patterns = []
    for chunk in [c.strip() for c in body.split(".") if c.strip()]:
        terms = _TERM_RE.findall(chunk)
        if len(terms) != 3:
            raise SPARQLError("pattern needs three terms: {0!r}".format(
                chunk))
        pattern = []
        for uri, literal, var in terms:
            if var:
                pattern.append(Var(var))
            elif uri:
                pattern.append(uri)
            else:
                pattern.append(literal)
        patterns.append(tuple(pattern))
    if not patterns:
        raise SPARQLError("empty WHERE clause")
    if projection == "*":
        wanted = None
    else:
        wanted = [v[1:] for v in projection.split()]
    return wanted, patterns


def sparql(store, query):
    """Run a query; returns (variable names, sorted solution tuples)."""
    wanted, patterns = _parse(query)
    var_names, table = store.solve(patterns)
    if wanted is None:
        wanted = var_names
    unknown = [v for v in wanted if v not in table]
    if unknown:
        raise SPARQLError("projected variables {0} not bound by the "
                          "pattern".format(unknown))
    if not wanted:
        return [], []
    columns = [table[v] for v in wanted]
    rows = sorted(set(zip(*(c.tolist() for c in columns))))
    decoded = [tuple(store.term(t) for t in row) for row in rows]
    return wanted, decoded
