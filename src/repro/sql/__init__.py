"""The SQL front-end (Section 3.2).

Relational tables are decomposed by column into void-headed BATs; a BAT of
deleted positions plus per-column insert *delta BATs* delay updates to the
main columns and make snapshot isolation a matter of copying only the
deltas.  SQL text is parsed (:mod:`repro.sql.parser`), compiled to MAL
(:mod:`repro.sql.compiler`), optimized by the shared pipeline, and run on
the MAL interpreter.

The user-facing entry point is :class:`Database`::

    db = Database()
    db.execute("CREATE TABLE people (name VARCHAR, age INT)")
    db.execute("INSERT INTO people VALUES ('roger', 1927)")
    rows = db.execute("SELECT name FROM people WHERE age = 1927").rows()
"""

from repro.sql.ast import (
    BinOp,
    Column,
    CreateMaterializedView,
    CreateTable,
    Delete,
    DropMaterializedView,
    FuncCall,
    Insert,
    IsNull,
    Literal,
    Select,
    SelectItem,
    Star,
    UnaryOp,
    Update,
)
from repro.sql.lexer import SQLSyntaxError, tokenize
from repro.sql.parser import parse_sql
from repro.sql.render import render_expr, render_select
from repro.sql.catalog import Catalog, Table
from repro.sql.transactions import ConflictError, Transaction
from repro.sql.compiler import compile_select
from repro.sql.database import Database, ResultSet

__all__ = [
    "Database",
    "ResultSet",
    "Catalog",
    "Table",
    "Transaction",
    "ConflictError",
    "parse_sql",
    "tokenize",
    "SQLSyntaxError",
    "compile_select",
    "render_expr",
    "render_select",
    "CreateMaterializedView",
    "CreateTable",
    "DropMaterializedView",
    "Insert",
    "Delete",
    "Update",
    "Select",
    "SelectItem",
    "Column",
    "Literal",
    "BinOp",
    "UnaryOp",
    "FuncCall",
    "IsNull",
    "Star",
]
