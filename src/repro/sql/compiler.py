"""SQL-to-MAL compiler.

Produces straight-line MAL over the BAT Algebra: candidate lists flow
through selections and joins; value columns are projected onto the
current candidate set only when an expression needs them (late tuple
reconstruction, Section 4.3); grouping and aggregation use the grouped
kernel primitives.

The compiler is *heuristic*, per Section 3.1: sargable conjuncts
(column-vs-literal comparisons) are pushed into ``algebra.select`` /
``algebra.selectrange`` refinements; everything else is evaluated as a
batcalc mask over the surviving candidates.
"""

from dataclasses import dataclass, field

from repro.sql.ast import (
    BinOp, Column, FuncCall, IsNull, Literal, Select, Star, UnaryOp,
)
from repro.mal.ast import Const, MALProgram, Var

_CMP_TO_CALC = {"=": "==", "<>": "!=", "<": "<", "<=": "<=",
                ">": ">", ">=": ">="}


class SQLCompileError(ValueError):
    """Raised when a statement cannot be compiled."""


@dataclass
class _Binding:
    """One table occurrence in scope: alias -> (table, candidate var)."""

    alias: str
    table: str
    columns: list
    cand_var: str


@dataclass
class _Context:
    program: MALProgram
    bindings: list = field(default_factory=list)
    counter: int = 0
    bound_columns: dict = field(default_factory=dict)

    def fresh(self, hint="v"):
        self.counter += 1
        return "{0}_{1}".format(hint, self.counter)

    def emit(self, hint, op, args):
        name = self.fresh(hint)
        self.program.append((name,), op, args)
        return name

    def emit_multi(self, hints, op, args):
        names = tuple(self.fresh(h) for h in hints)
        self.program.append(names, op, args)
        return names

    def bind_column(self, table, column):
        """sql.bind, deduplicated per (table, column)."""
        key = (table, column)
        if key not in self.bound_columns:
            self.bound_columns[key] = self.emit(
                "col", "sql.bind", (Const(table), Const(column)))
        return self.bound_columns[key]

    def resolve(self, column_ref):
        """Find the binding a column reference belongs to."""
        if column_ref.table is not None:
            for binding in self.bindings:
                if binding.alias == column_ref.table:
                    if column_ref.name not in binding.columns:
                        raise SQLCompileError(
                            "no column {0!r} in {1!r}".format(
                                column_ref.name, binding.alias))
                    return binding
            raise SQLCompileError("unknown table alias {0!r}".format(
                column_ref.table))
        matches = [b for b in self.bindings if column_ref.name in b.columns]
        if not matches:
            raise SQLCompileError("unknown column {0!r}".format(
                column_ref.name))
        if len(matches) > 1:
            raise SQLCompileError("ambiguous column {0!r}".format(
                column_ref.name))
        return matches[0]


def _split_conjuncts(expr):
    if isinstance(expr, BinOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _sargable(expr, ctx):
    """(binding, column, op, literal) for column-vs-literal comparisons."""
    if not isinstance(expr, BinOp) or expr.op not in _CMP_TO_CALC:
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(right, Column) and isinstance(left, Literal):
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        left, right = right, left
        op = flip.get(op, op)
    if isinstance(left, Column) and isinstance(right, Literal):
        return (ctx.resolve(left), left.name, op, right.value)
    return None


class _SelectCompiler:
    """Compiles one SELECT into a MALProgram plus output column names."""

    def __init__(self, catalog, select):
        self.catalog = catalog
        self.select = select
        self.ctx = _Context(MALProgram(name="sql.select"))

    # -- top level -------------------------------------------------------------

    def compile(self):
        select = self.select
        if select.table is not None:
            self._open_table(select.table)
            for join in select.joins:
                self._compile_join(join)
            if select.where is not None:
                self._compile_where(select.where)
        elif select.joins or select.where or select.group_by:
            raise SQLCompileError("FROM-less SELECT supports only "
                                  "constant expressions")
        has_aggregates = any(
            _has_aggregate(item.expr) for item in select.items) or \
            select.group_by
        if select.group_by:
            names, columns = self._compile_grouped()
        elif has_aggregates:
            names, columns = self._compile_scalar_aggregates()
        else:
            names, columns = self._compile_plain_projection()
        if select.distinct:
            columns = self._compile_distinct(columns)
        if select.order_by:
            columns = self._compile_order_by(columns, names)
        if select.limit is not None:
            columns = [self.ctx.emit("lim", "bat.slice",
                                     (Var(c), Const(0), Const(select.limit)))
                       if not c.startswith("scalar!") else c
                       for c in columns]
        self.ctx.program.returns = tuple(
            c[len("scalar!"):] if c.startswith("scalar!") else c
            for c in columns)
        return self.ctx.program.validate(), names

    # -- FROM / JOIN -----------------------------------------------------------

    def _open_table(self, table_ref):
        table = self.catalog.get(table_ref.name)
        cand = self.ctx.emit("tid", "sql.tid", (Const(table_ref.name),))
        self.ctx.bindings.append(_Binding(
            table_ref.binding, table_ref.name,
            list(table.column_names), cand))

    def _compile_join(self, join):
        """Left-deep equi-join; residual ON conjuncts become filters."""
        ctx = self.ctx
        self._open_table(join.table)
        new_binding = ctx.bindings[-1]
        equi = None
        residual = []
        for conjunct in _split_conjuncts(join.condition):
            pair = self._equi_pair(conjunct, new_binding)
            if pair is not None and equi is None:
                equi = pair
            else:
                residual.append(conjunct)
        if equi is None:
            raise SQLCompileError(
                "JOIN ... ON must contain an equality between a column of "
                "{0!r} and one of the earlier tables".format(
                    new_binding.alias))
        left_col, right_col = equi
        if self._try_join_index(left_col, right_col, new_binding):
            for conjunct in residual:
                self._filter_by_mask(conjunct)
            return
        lval = self._project_column(left_col)
        rval = self._project_column(right_col)
        lpos, rpos = ctx.emit_multi(
            ("jl", "jr"), "algebra.join", (Var(lval), Var(rval)))
        # Join positions index the aligned candidate row-set; compose them
        # into every binding's candidate list.
        for binding in ctx.bindings[:-1]:
            binding.cand_var = ctx.emit(
                "cand", "candidates.compose",
                (Var(binding.cand_var), Var(lpos)))
        new_binding.cand_var = ctx.emit(
            "cand", "candidates.compose",
            (Var(new_binding.cand_var), Var(rpos)))
        for conjunct in residual:
            self._filter_by_mask(conjunct)

    def _try_join_index(self, left_col, right_col, new_binding):
        """Catalogued N:1 join path: equi-join becomes a positional
        fetch through the join-index BAT (§3.1, §3.2).

        Applies when the new (right) side is the primary-key end of a
        declared index.  Returns True when the rewrite was emitted.
        """
        ctx = self.ctx
        has_index = getattr(self.catalog, "has_join_index", None)
        if has_index is None:
            return False
        fk_binding = ctx.resolve(left_col)
        if not has_index(fk_binding.table, left_col.name,
                         new_binding.table, right_col.name):
            return False
        mapping = ctx.emit(
            "jix", "sql.joinindex",
            (Const(fk_binding.table), Const(left_col.name),
             Const(new_binding.table), Const(right_col.name)))
        fk_targets = ctx.emit("jt", "algebra.leftfetchjoin",
                              (Var(fk_binding.cand_var), Var(mapping)))
        mask = ctx.emit("jm", "batcalc.!=", (Var(fk_targets), Const(-1)))
        keep = ctx.emit("jk", "algebra.selectmask",
                        (Var(fk_targets), Var(mask)))
        for binding in ctx.bindings[:-1]:
            binding.cand_var = ctx.emit(
                "cand", "candidates.compose",
                (Var(binding.cand_var), Var(keep)))
        new_binding.cand_var = ctx.emit(
            "cand", "algebra.leftfetchjoin",
            (Var(keep), Var(fk_targets)))
        return True

    def _equi_pair(self, expr, new_binding):
        """(old-side Column, new-side Column) for a usable equi-condition."""
        if not (isinstance(expr, BinOp) and expr.op == "="
                and isinstance(expr.left, Column)
                and isinstance(expr.right, Column)):
            return None
        try:
            lb = self.ctx.resolve(expr.left)
            rb = self.ctx.resolve(expr.right)
        except SQLCompileError:
            return None
        if lb is new_binding and rb is not new_binding:
            return (expr.right, expr.left)
        if rb is new_binding and lb is not new_binding:
            return (expr.left, expr.right)
        return None

    # -- WHERE -------------------------------------------------------------------

    def _compile_where(self, where):
        conjuncts = _split_conjuncts(where)
        sargables = []
        residual = []
        for conjunct in conjuncts:
            sarg = _sargable(conjunct, self.ctx)
            if sarg is not None and len(self.ctx.bindings) == 1:
                sargables.append(sarg)
            else:
                residual.append(conjunct)
        for sarg in self._order_by_selectivity(sargables):
            self._refine_with_select(*sarg)
        for conjunct in residual:
            self._filter_by_mask(conjunct)

    def _order_by_selectivity(self, sargables):
        """Most selective conjunct first, estimated from samples.

        Section 3.1's sampling heuristic applied at plan time: evaluate
        the conjunct expected to survive fewest tuples first, so the
        later refinements work on small candidate lists.  Falls back to
        the textual order when sampling is impossible.
        """
        if len(sargables) < 2:
            return sargables
        from repro.core.algebra import estimate_selectivity
        scored = []
        for order, sarg in enumerate(sargables):
            binding, column, op, literal = sarg
            try:
                bat = self.catalog.get(binding.table).bind(column)
                if op == "=":
                    lo, hi, li, hi_i = literal, literal, True, True
                elif op in (">", ">="):
                    lo, hi, li, hi_i = literal, None, op == ">=", False
                elif op in ("<", "<="):
                    lo, hi, li, hi_i = None, literal, True, op == "<="
                else:
                    scored.append((1.0, order, sarg))
                    continue
                scored.append((estimate_selectivity(bat, lo, hi, li,
                                                    hi_i), order, sarg))
            except (KeyError, TypeError):
                scored.append((1.0, order, sarg))
        scored.sort(key=lambda item: (item[0], item[1]))
        return [sarg for _, _, sarg in scored]

    def _refine_with_select(self, binding, column, op, literal):
        """Sargable fast path: refine candidates via algebra.select*."""
        ctx = self.ctx
        col = ctx.bind_column(binding.table, column)
        if op == "=":
            binding.cand_var = ctx.emit(
                "cand", "algebra.select",
                (Var(col), Const(literal), Var(binding.cand_var)))
            return
        if op == "<>":
            self._filter_by_mask(BinOp("<>", Column(column, binding.alias),
                                       Literal(literal)))
            return
        lo = hi = None
        lo_incl = hi_incl = False
        if op in (">", ">="):
            lo, lo_incl = literal, op == ">="
        else:
            hi, hi_incl = literal, op == "<="
        binding.cand_var = ctx.emit(
            "cand", "algebra.selectrange",
            (Var(col), Const(lo), Const(hi), Const(lo_incl), Const(hi_incl),
             Var(binding.cand_var)))

    def _filter_by_mask(self, expr):
        """General predicate: batcalc mask over the row-set, then filter."""
        mask = self._compile_expr(expr)
        if isinstance(mask, Const):
            raise SQLCompileError("constant WHERE clauses are not supported")
        for binding in self.ctx.bindings:
            binding.cand_var = self.ctx.emit(
                "cand", "candidates.filter",
                (Var(binding.cand_var), Var(mask.name)))

    # -- expressions ------------------------------------------------------------------

    def _project_column(self, column_ref):
        """Column values aligned with the current row-set (a var name)."""
        binding = self.ctx.resolve(column_ref)
        col = self.ctx.bind_column(binding.table, column_ref.name)
        return self.ctx.emit("val", "algebra.leftfetchjoin",
                             (Var(binding.cand_var), Var(col)))

    def _compile_expr(self, expr):
        """Expression -> Var (aligned BAT) or Const (scalar)."""
        ctx = self.ctx
        if isinstance(expr, Literal):
            return Const(expr.value)
        if isinstance(expr, Column):
            return Var(self._project_column(expr))
        if isinstance(expr, UnaryOp):
            operand = self._compile_expr(expr.operand)
            if expr.op == "not":
                op = "calc.not" if isinstance(operand, Const) \
                    else "batcalc.not"
                return Var(ctx.emit("m", op, (operand,)))
            if expr.op == "-":
                if isinstance(operand, Const):
                    return Var(ctx.emit("m", "calc.-",
                                        (Const(0), operand)))
                return Var(ctx.emit("m", "batcalc.-", (Const(0), operand)))
            raise SQLCompileError("unsupported unary {0!r}".format(expr.op))
        if isinstance(expr, BinOp):
            op = _CMP_TO_CALC.get(expr.op, expr.op)
            left = self._compile_expr(expr.left)
            right = self._compile_expr(expr.right)
            family = "calc." if (isinstance(left, Const)
                                 and isinstance(right, Const)) else "batcalc."
            return Var(ctx.emit("m", family + op, (left, right)))
        if isinstance(expr, IsNull):
            operand = self._compile_expr(expr.operand)
            if isinstance(operand, Const):
                return Var(ctx.emit("m", "calc.isnil", (operand,)))
            return Var(ctx.emit("m", "batcalc.isnil", (operand,)))
        if isinstance(expr, FuncCall):
            raise SQLCompileError(
                "aggregate {0!r} is only allowed in the select list or "
                "HAVING".format(expr.name))
        raise SQLCompileError("unsupported expression {0!r}".format(expr))

    # -- plain projection ---------------------------------------------------------------

    def _expand_items(self):
        items = []
        for item in self.select.items:
            if isinstance(item.expr, Star):
                bindings = self.ctx.bindings
                if item.expr.table is not None:
                    bindings = [b for b in bindings
                                if b.alias == item.expr.table]
                    if not bindings:
                        raise SQLCompileError("unknown table {0!r}".format(
                            item.expr.table))
                if not bindings:
                    raise SQLCompileError("* without a FROM table")
                for binding in bindings:
                    for col in binding.columns:
                        items.append((col, Column(col, binding.alias)))
            else:
                items.append((item.alias or _default_name(item.expr),
                              item.expr))
        return items

    def _compile_plain_projection(self):
        names = []
        columns = []
        for name, expr in self._expand_items():
            value = self._compile_expr(expr)
            if isinstance(value, Const):
                # Constant select item: replicate over the row-set if any.
                if self.ctx.bindings:
                    cand = self.ctx.bindings[0].cand_var
                    atom = _const_atom_name(value.value)
                    var = self.ctx.emit(
                        "out", "sql.constcolumn",
                        (Var(cand), value, Const(atom)))
                    columns.append(var)
                else:
                    var = self.ctx.emit("out", "language.pass", (value,))
                    columns.append("scalar!" + var)
            else:
                columns.append(value.name)
            names.append(name)
        return names, columns

    # -- aggregation ----------------------------------------------------------------------

    def _compile_scalar_aggregates(self):
        names = []
        columns = []
        for name, expr in self._expand_items():
            var = self._compile_scalar_agg_expr(expr)
            names.append(name)
            columns.append("scalar!" + var)
        return names, columns

    def _compile_scalar_agg_expr(self, expr):
        """Aggregate-bearing expression at top (non-grouped) level."""
        ctx = self.ctx
        if isinstance(expr, FuncCall) and expr.name in FuncCall.AGGREGATES:
            return ctx.emit("agg", "aggr." + expr.name,
                            (Var(self._aggregate_input(expr)),))
        if isinstance(expr, BinOp):
            left = Var(self._compile_scalar_agg_expr(expr.left)) \
                if _has_aggregate(expr.left) else self._compile_expr(expr.left)
            right = Var(self._compile_scalar_agg_expr(expr.right)) \
                if _has_aggregate(expr.right) \
                else self._compile_expr(expr.right)
            op = _CMP_TO_CALC.get(expr.op, expr.op)
            return ctx.emit("agg", "calc." + op, (left, right))
        if isinstance(expr, Literal):
            return ctx.emit("agg", "language.pass", (Const(expr.value),))
        raise SQLCompileError(
            "select list mixes aggregates and row expressions")

    def _aggregate_input(self, call):
        """The value BAT an aggregate consumes."""
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            if call.name != "count":
                raise SQLCompileError("* only valid in count(*)")
            binding = self.ctx.bindings[0]
            return self.ctx.emit("val", "language.pass",
                                 (Var(binding.cand_var),))
        if len(call.args) != 1:
            raise SQLCompileError("aggregates take exactly one argument")
        value = self._compile_expr(call.args[0])
        if isinstance(value, Const):
            raise SQLCompileError("aggregating a constant is not supported")
        var = value.name
        if call.distinct:
            uniq = self.ctx.emit("uq", "algebra.unique", (Var(var),))
            var = self.ctx.emit("val", "algebra.leftfetchjoin",
                                (Var(uniq), Var(var)))
        return var

    def _compile_grouped(self):
        ctx = self.ctx
        select = self.select
        group_values = [self._compile_expr(g) for g in select.group_by]
        if any(isinstance(v, Const) for v in group_values):
            raise SQLCompileError("GROUP BY constant is not supported")
        gids = None
        for value in group_values:
            args = (value, Var(gids)) if gids is not None else (value,)
            gids, extents, hist = ctx.emit_multi(
                ("gid", "ext", "hist"), "group.group", args)
        ngroups = ctx.emit("ng", "bat.count", (Var(hist),))
        group_keys = {_expr_key(g): (value, i)
                      for i, (g, value) in enumerate(zip(select.group_by,
                                                         group_values))}
        names = []
        columns = []
        for name, expr in self._expand_items():
            names.append(name)
            columns.append(self._compile_group_expr(
                expr, group_keys, gids, extents, ngroups))
        if select.having is not None:
            mask = self._compile_group_expr(
                select.having, group_keys, gids, extents, ngroups)
            first = columns[0]
            keep = ctx.emit("keep", "algebra.selectmask",
                            (Var(first), Var(mask)))
            columns = [ctx.emit("out", "algebra.leftfetchjoin",
                                (Var(keep), Var(c))) for c in columns]
        return names, columns

    def _compile_group_expr(self, expr, group_keys, gids, extents, ngroups):
        """Expression in group context -> var of a group-aligned BAT."""
        ctx = self.ctx
        key = _expr_key(expr)
        if key in group_keys:
            value, _ = group_keys[key]
            return ctx.emit("out", "algebra.leftfetchjoin",
                            (Var(extents), value))
        if isinstance(expr, FuncCall) and expr.name in FuncCall.AGGREGATES:
            if len(expr.args) == 1 and isinstance(expr.args[0], Star):
                if expr.name != "count":
                    raise SQLCompileError("* only valid in count(*)")
                return ctx.emit("agg", "aggr.grouped_count",
                                (Var(gids), Var(gids), Var(ngroups)))
            value = self._compile_expr(expr.args[0])
            if isinstance(value, Const):
                raise SQLCompileError("aggregating a constant "
                                      "is not supported")
            return ctx.emit("agg", "aggr.grouped_" + expr.name,
                            (value, Var(gids), Var(ngroups)))
        if isinstance(expr, BinOp):
            left = Var(self._compile_group_expr(expr.left, group_keys,
                                                gids, extents, ngroups))
            right = Var(self._compile_group_expr(expr.right, group_keys,
                                                 gids, extents, ngroups))
            op = _CMP_TO_CALC.get(expr.op, expr.op)
            return ctx.emit("m", "batcalc." + op, (left, right))
        if isinstance(expr, UnaryOp) and expr.op == "not":
            operand = self._compile_group_expr(expr.operand, group_keys,
                                               gids, extents, ngroups)
            return ctx.emit("m", "batcalc.not", (Var(operand),))
        if isinstance(expr, Literal):
            return ctx.emit("m", "sql.constcolumn",
                            (Var(extents), Const(expr.value),
                             Const(_const_atom_name(expr.value))))
        raise SQLCompileError(
            "{0!r} must appear in GROUP BY or inside an aggregate".format(
                expr))

    # -- DISTINCT / ORDER BY ----------------------------------------------------------------

    def _compile_distinct(self, columns):
        ctx = self.ctx
        if any(c.startswith("scalar!") for c in columns):
            return columns
        gids = None
        for column in columns:
            args = (Var(column), Var(gids)) if gids is not None \
                else (Var(column),)
            gids, extents, hist = ctx.emit_multi(
                ("dgid", "dext", "dhist"), "group.group", args)
        positions = ctx.emit("dpos", "candidates.sort", (Var(extents),))
        return [ctx.emit("out", "algebra.leftfetchjoin",
                         (Var(positions), Var(c))) for c in columns]

    def _compile_order_by(self, columns, names):
        ctx = self.ctx
        if any(c.startswith("scalar!") for c in columns):
            return columns
        args = []
        for item in self.select.order_by:
            key_var = self._order_key(item.expr, columns, names)
            args.append(Var(key_var))
            args.append(Const(item.ascending))
        perm = ctx.emit("perm", "algebra.sortmulti", tuple(args))
        return [ctx.emit("out", "algebra.leftfetchjoin",
                         (Var(perm), Var(c))) for c in columns]

    def _order_key(self, expr, columns, names):
        # An output column (by alias or identical expression) is reused;
        # only possible when outputs align with the row-set (no grouping).
        if isinstance(expr, Column) and expr.table is None \
                and expr.name in names:
            return columns[names.index(expr.name)]
        for item, col in zip(self._expand_items(), columns):
            if _expr_key(item[1]) == _expr_key(expr):
                return col
        if self.select.group_by or any(
                _has_aggregate(i.expr) for i in self.select.items):
            raise SQLCompileError(
                "ORDER BY on grouped queries must name an output column")
        value = self._compile_expr(expr)
        if isinstance(value, Const):
            raise SQLCompileError("cannot ORDER BY a constant")
        return value.name


def _has_aggregate(expr):
    from repro.sql.ast import contains_aggregate
    return contains_aggregate(expr)


def _default_name(expr):
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, FuncCall):
        if len(expr.args) == 1 and isinstance(expr.args[0], Column):
            return "{0}_{1}".format(expr.name, expr.args[0].name)
        return expr.name
    return "expr"


def _expr_key(expr):
    return repr(expr)


def _const_atom_name(value):
    if isinstance(value, bool):
        return "bit"
    if isinstance(value, int):
        return "lng"
    if isinstance(value, float):
        return "dbl"
    if isinstance(value, str):
        return "str"
    return "str"


def compile_select(catalog, select):
    """Compile a SELECT AST against a catalog.

    Returns ``(program, output_names)``; the program's return variables
    hold one value column per output name (or a scalar for aggregate-only
    queries).
    """
    if not isinstance(select, Select):
        raise TypeError("expected a Select AST node")
    return _SelectCompiler(catalog, select).compile()


def compile_where_candidates(catalog, table_name, where):
    """Candidates of ``table_name`` matching ``where`` (DML helper).

    Returns a program whose single return variable is the candidate list
    of visible oids matching the predicate (all visible rows when
    ``where`` is None).
    """
    from repro.sql.ast import SelectItem, TableRef
    select = Select(items=[SelectItem(Star())],
                    table=TableRef(table_name), where=where)
    compiler = _SelectCompiler(catalog, select)
    compiler._open_table(select.table)
    if where is not None:
        compiler._compile_where(where)
    program = compiler.ctx.program
    program.returns = (compiler.ctx.bindings[0].cand_var,)
    return program.validate()
