"""The user-facing Database facade: parse -> compile -> optimize -> run."""

from repro.core.bat import BAT
from repro.mal.interpreter import Interpreter
from repro.mal.optimizer import DEFAULT_PIPELINE
from repro.sql.ast import (
    Column, CreateTable, Delete, Insert, Select, SelectItem, SetPragma,
    Update,
)
from repro.sql.catalog import Catalog
from repro.sql.compiler import compile_select, compile_where_candidates
from repro.sql.parser import parse_sql
from repro.sql.transactions import Transaction


class ResultSet:
    """Columnar query result: named columns of decoded Python values."""

    def __init__(self, names, columns):
        if len(names) != len(columns):
            raise ValueError("names/columns arity mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError("ragged result columns: {0}".format(lengths))
        self.names = list(names)
        self.columns = [list(c) for c in columns]

    def __len__(self):
        return len(self.columns[0]) if self.columns else 0

    def column(self, name):
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError("no result column {0!r}".format(name)) from None

    def rows(self):
        """All rows as a list of tuples."""
        return list(zip(*self.columns)) if self.columns else []

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.columns) != 1 or len(self) != 1:
            raise ValueError("result is not a single scalar")
        return self.columns[0][0]

    def __iter__(self):
        return iter(self.rows())

    def __str__(self):
        cells = [[_render(v) for v in row] for row in self.rows()]
        widths = [max([len(n)] + [len(row[i]) for row in cells])
                  for i, n in enumerate(self.names)]
        header = " | ".join(n.ljust(w) for n, w in zip(self.names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [" | ".join(c.ljust(w) for c, w in zip(row, widths))
                for row in cells]
        return "\n".join([header, rule] + body)


def _render(value):
    if value is None:
        return "null"
    if isinstance(value, float):
        return "{0:g}".format(value)
    return str(value)


class Database:
    """An embedded column-store database (Figure 1, end to end).

    Parameters
    ----------
    pipeline:
        The MAL optimizer pipeline applied to every compiled SELECT.
    recycler:
        Optional :class:`repro.recycling.Recycler`; when given, the
        recycling pipeline marking is expected to be part of ``pipeline``
        (see :data:`repro.mal.optimizer.RECYCLING_PIPELINE`) or the
        recycler must set ``cache_all``.
    smp_profile:
        Optional SMP :class:`~repro.hardware.profiles.HardwareProfile`
        for parallel SELECTs: each worker then simulates a private
        cache hierarchy over a shared last-level cache (see
        :mod:`repro.parallel`).  None (the default) runs parallel plans
        without cache simulation.

    Parallel execution: ``execute(sql, workers=N)`` (or the session
    pragma ``SET workers = N``) runs SELECTs on N simulated morsel
    workers; queries without a parallel plan shape silently fall back
    to the serial engine (counted in ``parallel_fallbacks``).  Parallel
    answers are the same multiset as serial answers, in exchange-union
    order rather than scan order.
    """

    def __init__(self, pipeline=DEFAULT_PIPELINE, recycler=None,
                 smp_profile=None):
        self.catalog = Catalog()
        self.pipeline = pipeline
        self.recycler = recycler
        self.interpreter = Interpreter(self.catalog, recycler=recycler)
        # Plan-for-reuse (§2): optimized MAL plans cached per SQL text.
        self._plan_cache = {}
        self.plans_reused = 0
        # Intra-query parallelism (repro.parallel).
        self.smp_profile = smp_profile
        self.default_workers = 1
        self.parallel_runs = 0
        self.parallel_fallbacks = 0
        self.last_parallel = None  # ParallelResult of the latest SELECT

    @classmethod
    def with_recycling(cls, capacity_bytes=None, policy="benefit"):
        """A database with the recycler wired in (Section 6.1)."""
        from repro.mal.optimizer import RECYCLING_PIPELINE
        from repro.recycling import Recycler
        return cls(pipeline=RECYCLING_PIPELINE,
                   recycler=Recycler(capacity_bytes=capacity_bytes,
                                     policy=policy))

    @classmethod
    def with_cracking(cls):
        """A database whose range selections crack columns (§6.1)."""
        from repro.mal.optimizer import CRACKING_PIPELINE
        return cls(pipeline=CRACKING_PIPELINE)

    # -- statement routing ---------------------------------------------------

    def execute(self, sql, workers=None):
        """Execute one SQL statement (autocommit).

        Returns a :class:`ResultSet` for SELECT, the affected row count
        for DML, and None for DDL.  ``workers`` overrides the session's
        worker count (``SET workers = N``) for this statement.
        """
        effective = self.default_workers if workers is None else workers
        if effective < 1:
            raise ValueError("workers must be at least 1")
        if isinstance(sql, str) and effective == 1:
            cached = self._plan_cache.get(sql)
            if cached is not None:
                self.plans_reused += 1
                return self._run_compiled(cached[0], cached[1],
                                          view=self.catalog)
        statement = parse_sql(sql)
        if isinstance(statement, SetPragma):
            return self._apply_pragma(statement)
        if isinstance(statement, CreateTable):
            self.catalog.create_table(statement.name, statement.columns)
            self._plan_cache.clear()  # schema changed
            return None
        if isinstance(statement, Insert):
            table = self.catalog.get(statement.table)
            table.append_rows(statement.rows, columns=statement.columns)
            return len(statement.rows)
        if isinstance(statement, Delete):
            table = self.catalog.get(statement.table)
            oids = self._eval_where(statement.table, statement.where,
                                    view=self.catalog)
            return table.delete_oids(oids)
        if isinstance(statement, Update):
            return self._apply_update(statement)
        if isinstance(statement, Select):
            if effective > 1:
                result = self._try_parallel(statement, effective)
                if result is not None:
                    return result
            program, names = compile_select(self.catalog, statement)
            program = self.pipeline.optimize(program)
            self._plan_cache[sql] = (program, names)
            return self._run_compiled(program, names, view=self.catalog)
        raise TypeError("unsupported statement {0!r}".format(statement))

    def query(self, sql, workers=None):
        """Shorthand: execute a SELECT and return its rows."""
        return self.execute(sql, workers=workers).rows()

    def _apply_pragma(self, pragma):
        if pragma.name == "workers":
            value = pragma.value
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError("SET workers needs a positive integer")
            self.default_workers = value
            return None
        raise ValueError("unknown pragma {0!r}".format(pragma.name))

    def _try_parallel(self, statement, workers):
        """Morsel-parallel SELECT; None when the shape has no parallel
        plan (the caller then runs the serial engine)."""
        from repro.parallel.executor import (
            ParallelSelectExecutor, ParallelUnsupported,
        )
        executor = ParallelSelectExecutor(self.catalog, workers,
                                          smp_profile=self.smp_profile)
        try:
            result = executor.execute(statement)
        except ParallelUnsupported:
            self.parallel_fallbacks += 1
            return None
        self.parallel_runs += 1
        self.last_parallel = result
        return ResultSet(result.names, result.columns)

    def explain(self, sql):
        """The optimized MAL program for a SELECT, as text."""
        statement = parse_sql(sql)
        if not isinstance(statement, Select):
            raise TypeError("EXPLAIN supports only SELECT")
        program, _ = compile_select(self.catalog, statement)
        return str(self.pipeline.optimize(program))

    def begin(self):
        """Start a snapshot-isolation transaction."""
        return Transaction(self)

    # -- internals shared with Transaction ----------------------------------------

    def _run_select(self, statement, view):
        program, names = compile_select(self.catalog, statement)
        program = self.pipeline.optimize(program)
        return self._run_compiled(program, names, view)

    def _run_compiled(self, program, names, view):
        interpreter = self.interpreter if view is self.catalog \
            else Interpreter(view, recycler=self.recycler)
        out = interpreter.run(program)
        columns = []
        scalar_row = []
        for name in program.returns:
            value = out[name]
            if isinstance(value, BAT):
                columns.append(value.decoded())
            else:
                scalar_row.append(value)
        if scalar_row and columns:
            raise RuntimeError("mixed scalar/column result")
        if scalar_row:
            return ResultSet(names, [[v] for v in scalar_row])
        return ResultSet(names, columns)

    def _eval_where(self, table_name, where, view):
        """Visible oids of ``table_name`` matching ``where``."""
        program = compile_where_candidates(self.catalog, table_name, where)
        program = self.pipeline.optimize(program)
        cand = Interpreter(view).run_single(program)
        return cand.decoded()

    def _eval_update_rows(self, table, statement, view):
        """New full rows (column order) for an UPDATE's matched tuples."""
        assigned = dict(statement.assignments)
        unknown = set(assigned) - set(table.column_names)
        if unknown:
            raise KeyError("UPDATE of unknown column(s) {0}".format(
                sorted(unknown)))
        items = [SelectItem(assigned.get(c, Column(c)), alias=c)
                 for c in table.column_names]
        from repro.sql.ast import Select as SelectNode, TableRef
        select = SelectNode(items=items, table=TableRef(table.name),
                            where=statement.where)
        result = self._run_select(select, view=view)
        return result.rows()

    def _apply_update(self, statement):
        table = self.catalog.get(statement.table)
        new_rows = self._eval_update_rows(table, statement,
                                          view=self.catalog)
        oids = self._eval_where(statement.table, statement.where,
                                view=self.catalog)
        table.delete_oids(oids)
        if new_rows:
            table.append_rows(new_rows)
        return len(oids)
