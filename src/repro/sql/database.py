"""The user-facing Database facade: parse -> compile -> optimize -> run."""

from repro.core.bat import BAT
from repro.faults import NO_FAULTS
from repro.governance.context import NO_GOVERNANCE, QueryContext
from repro.mal.interpreter import Interpreter
from repro.mal.optimizer import DEFAULT_PIPELINE
from repro.observability.tracer import NO_TRACE
from repro.sql.ast import (
    BeginTransaction, Column, CommitTransaction, CreateMaterializedView,
    CreateTable, Delete, DropMaterializedView, Explain, Insert, Profile,
    RollbackTransaction, Select, SelectItem, SetPragma, Update,
    statement_kind,
)
from repro.sql.catalog import Catalog
from repro.sql.compiler import compile_select, compile_where_candidates
from repro.sql.parser import parse_sql
from repro.sql.render import render_select
from repro.sql.transactions import Transaction
from repro.views.maintainer import ViewMaintainer


class ResultSet:
    """Columnar query result: named columns of decoded Python values."""

    def __init__(self, names, columns):
        if len(names) != len(columns):
            raise ValueError("names/columns arity mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError("ragged result columns: {0}".format(lengths))
        self.names = list(names)
        self.columns = [list(c) for c in columns]

    def __len__(self):
        return len(self.columns[0]) if self.columns else 0

    def column(self, name):
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError("no result column {0!r}".format(name)) from None

    def rows(self):
        """All rows as a list of tuples."""
        return list(zip(*self.columns)) if self.columns else []

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.columns) != 1 or len(self) != 1:
            raise ValueError("result is not a single scalar")
        return self.columns[0][0]

    def __iter__(self):
        return iter(self.rows())

    def __str__(self):
        cells = [[_render(v) for v in row] for row in self.rows()]
        widths = [max([len(n)] + [len(row[i]) for row in cells])
                  for i, n in enumerate(self.names)]
        header = " | ".join(n.ljust(w) for n, w in zip(self.names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [" | ".join(c.ljust(w) for c, w in zip(row, widths))
                for row in cells]
        return "\n".join([header, rule] + body)


def _render(value):
    if value is None:
        return "null"
    if isinstance(value, float):
        return "{0:g}".format(value)
    return str(value)


class Database:
    """An embedded column-store database (Figure 1, end to end).

    Parameters
    ----------
    pipeline:
        The MAL optimizer pipeline applied to every compiled SELECT.
    recycler:
        Optional :class:`repro.recycling.Recycler`; when given, the
        recycling pipeline marking is expected to be part of ``pipeline``
        (see :data:`repro.mal.optimizer.RECYCLING_PIPELINE`) or the
        recycler must set ``cache_all``.
    smp_profile:
        Optional SMP :class:`~repro.hardware.profiles.HardwareProfile`
        for parallel SELECTs: each worker then simulates a private
        cache hierarchy over a shared last-level cache (see
        :mod:`repro.parallel`).  None (the default) runs parallel plans
        without cache simulation.
    wal:
        Optional :class:`~repro.wal.WriteAheadLog`.  When given, every
        write (DDL, autocommit DML, ``Transaction.commit``) appends a
        checksummed logical record *before* touching the catalog, and
        :meth:`recover` rebuilds the catalog by replaying the log —
        complete records only, torn tails discarded.
    faults:
        Optional :class:`~repro.faults.FaultInjector` threaded through
        the commit path (``commit.validate`` / ``commit.publish`` /
        ``commit.apply``), the WAL (``wal.append``) and parallel
        execution (``morsel.run``).  Defaults to the inert injector.

    Parallel execution: ``execute(sql, workers=N)`` (or the session
    pragma ``SET workers = N``) runs SELECTs on N simulated morsel
    workers; queries without a parallel plan shape silently fall back
    to the serial engine (counted in ``parallel_fallbacks``).  Parallel
    answers are the same multiset as serial answers, in exchange-union
    order rather than scan order.  An injected worker death mid-query
    re-dispatches the dead worker's morsels to the survivors (recorded
    in ``last_parallel.failures``); if every worker dies the query
    falls back to the serial engine.
    """

    def __init__(self, pipeline=DEFAULT_PIPELINE, recycler=None,
                 smp_profile=None, wal=None, faults=None, tracer=None):
        self.catalog = Catalog()
        self.pipeline = pipeline
        self.recycler = recycler
        # Session-wide tracing (repro.observability): off by default.
        self.tracer = tracer if tracer is not None else NO_TRACE
        self.interpreter = Interpreter(self.catalog, recycler=recycler,
                                       tracer=self.tracer)
        # Plan-for-reuse (§2): optimized MAL plans cached per SQL text.
        self._plan_cache = {}
        self.plans_reused = 0
        # Durability and fault injection (repro.wal / repro.faults).
        self.faults = faults if faults is not None else NO_FAULTS
        self.wal = wal
        if wal is not None and wal.faults is NO_FAULTS:
            wal.faults = self.faults
        if wal is not None and self.tracer.enabled:
            wal.tracer = self.tracer
        # Intra-query parallelism (repro.parallel).
        self.smp_profile = smp_profile
        self.default_workers = 1
        self.parallel_runs = 0
        self.parallel_fallbacks = 0
        # Plan-fragment compilation (repro.compile): off by default,
        # enabled per statement (execute(..., compile=True)) or per
        # session (SET compile = true).  Built lazily on first use.
        self.default_compile = False
        self._plan_compiler = None
        self.last_parallel = None  # ParallelResult of the latest SELECT
        # Query governance (repro.governance): session-level defaults,
        # set by the SET deadline / SET memory_budget pragmas.  When
        # either is set, execute() runs each statement under an owned
        # QueryContext; an explicit context argument always wins.
        self.default_deadline = None
        self.default_memory_budget = None
        self.governance_kills = 0
        self.last_profile = None   # QueryProfile of the latest PROFILE
        # Two-phase commit bookkeeping: prepared-but-undecided records
        # seen during WAL replay (xid -> ops), resolved by the sharding
        # coordinator's decision log after recovery.
        self._pending_prepares = {}
        # Monotone commit sequence number, bumped once per published
        # commit (autocommit DML, Transaction.commit, replay).  The
        # session layer stamps snapshots and commits with it.
        self.commit_seq = 0
        # Materialized views (repro.views): maintained incrementally
        # from the committed deltas flowing through _apply_ops.
        self.views = ViewMaintainer(self)

    @classmethod
    def with_recycling(cls, capacity_bytes=None, policy="benefit"):
        """A database with the recycler wired in (Section 6.1)."""
        from repro.mal.optimizer import RECYCLING_PIPELINE
        from repro.recycling import Recycler
        return cls(pipeline=RECYCLING_PIPELINE,
                   recycler=Recycler(capacity_bytes=capacity_bytes,
                                     policy=policy))

    @classmethod
    def with_cracking(cls):
        """A database whose range selections crack columns (§6.1)."""
        from repro.mal.optimizer import CRACKING_PIPELINE
        return cls(pipeline=CRACKING_PIPELINE)

    # -- statement routing ---------------------------------------------------

    @property
    def plan_compiler(self):
        """The plan-fragment compiler (repro.compile), built lazily so
        databases that never set ``compile`` pay nothing for it."""
        if self._plan_compiler is None:
            from repro.compile import PlanCompiler
            self._plan_compiler = PlanCompiler(self)
        return self._plan_compiler

    def _bump_schema_epoch(self):
        """Schema changed: orphan every compiled kernel alongside the
        SQL plan cache."""
        if self._plan_compiler is not None:
            self._plan_compiler.bump_schema()

    def _make_context(self):
        """An owned QueryContext from the session defaults, or None
        when no governance is configured."""
        if self.default_deadline is None and \
                self.default_memory_budget is None:
            return None
        return QueryContext(deadline=self.default_deadline,
                            memory_budget=self.default_memory_budget)

    def execute(self, sql, workers=None, compile=None, context=None):
        """Execute one SQL statement (autocommit).

        Returns a :class:`ResultSet` for SELECT, the affected row count
        for DML, None for DDL, and for ``EXPLAIN``/``PROFILE`` a
        one-column ``plan`` ResultSet holding the rendered plan or
        span-tree lines.  ``workers`` overrides the session's worker
        count (``SET workers = N``) for this statement; ``compile``
        likewise overrides ``SET compile`` to run SELECTs through the
        plan-fragment compiler (repro.compile) with transparent
        per-fragment fallback to the interpreter.

        ``context`` is an optional
        :class:`~repro.governance.QueryContext` checked cooperatively
        at every engine checkpoint (per MAL instruction, per compiled
        fragment, per morsel); without one, ``SET deadline`` /
        ``SET memory_budget`` make the statement run under an owned
        context built from those defaults.  A governance kill raises
        the matching :class:`~repro.governance.GovernanceError` —
        always *before* the statement's commit point, so committed
        state is untouched.
        """
        from repro.governance.errors import GovernanceError
        owned = None
        if context is None:
            context = owned = self._make_context()
        try:
            if not self.tracer.enabled:
                return self._execute_statement(sql, workers, compile,
                                               context=context)
            label = sql if isinstance(sql, str) else repr(sql)
            with self.tracer.span("statement", kind="statement",
                                  sql=label[:200]):
                return self._execute_statement(sql, workers, compile,
                                               context=context)
        except GovernanceError:
            self.governance_kills += 1
            raise
        finally:
            if owned is not None:
                owned.release()

    def _execute_statement(self, sql, workers=None, compile=None,
                           context=None):
        effective = self.default_workers if workers is None else workers
        if effective < 1:
            raise ValueError("workers must be at least 1")
        compiled = self.default_compile if compile is None else compile
        if isinstance(sql, str) and effective == 1:
            cached = self._plan_cache.get(sql)
            if cached is not None:
                self.plans_reused += 1
                return self._run_compiled(cached[0], cached[1],
                                          view=self.catalog,
                                          compiled=compiled,
                                          context=context)
        # Pre-parsed statement ASTs run directly (the sharding and
        # replication layers route statements as ASTs, not text).
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, Explain):
            plan = self._explain_statement(statement.statement)
            return ResultSet(["plan"], [plan.splitlines()])
        if isinstance(statement, Profile):
            profile = self._profile_statement(
                statement.statement, sql if isinstance(sql, str) else "",
                workers=effective)
            self.last_profile = profile
            return ResultSet(["plan"], [profile.text().splitlines()])
        if isinstance(statement, SetPragma):
            return self._apply_pragma(statement)
        if isinstance(statement, (BeginTransaction, CommitTransaction,
                                  RollbackTransaction)):
            raise TypeError(
                "{0} needs a session (repro.sessions.Session); "
                "Database.execute is autocommit-only".format(
                    statement_kind(statement)))
        if isinstance(statement, CreateTable):
            if self.wal is not None:
                record = {"kind": "create", "table": statement.name,
                          "columns": [list(c) for c in statement.columns]}
                if statement.partition_by is not None:
                    record["partition_by"] = statement.partition_by
                self.wal.append(record)
            self.catalog.create_table(statement.name, statement.columns,
                                      partition_by=statement.partition_by)
            self._plan_cache.clear()  # schema changed
            self._bump_schema_epoch()
            return None
        if isinstance(statement, CreateMaterializedView):
            # Classify (and reject) *before* the WAL append, so a bad
            # definition never reaches the log.
            self.views.validate(statement.name, statement.select)
            if self.wal is not None:
                sql_text = statement.select_sql or \
                    render_select(statement.select)
                self.wal.append({"kind": "create_view",
                                 "name": statement.name,
                                 "sql": sql_text})
            self.views.create(statement.name, statement.select)
            self._plan_cache.clear()  # schema changed
            self._bump_schema_epoch()
            return None
        if isinstance(statement, DropMaterializedView):
            if not self.views.is_view(statement.name):
                raise KeyError(
                    "no materialized view {0!r}".format(statement.name))
            if self.wal is not None:
                self.wal.append({"kind": "drop_view",
                                 "name": statement.name})
            self.views.drop(statement.name)
            self._plan_cache.clear()  # schema changed
            self._bump_schema_epoch()
            return None
        if isinstance(statement, Insert):
            self._reject_view_dml(statement.table)
            table = self.catalog.get(statement.table)
            rows = self._normalized_rows(table, statement.rows,
                                         statement.columns)
            ops = [{"table": statement.table, "appends": rows,
                    "deletes": []}]
            self._log_commit(ops)
            self._apply_ops(ops)
            self._bump_commit()
            return len(statement.rows)
        if isinstance(statement, Delete):
            self._reject_view_dml(statement.table)
            self.catalog.get(statement.table)
            oids = self._eval_where(statement.table, statement.where,
                                    view=self.catalog, context=context)
            ops = [{"table": statement.table, "appends": [],
                    "deletes": sorted(int(o) for o in oids)}]
            self._log_commit(ops)
            deleted = self._apply_ops(ops)
            self._bump_commit()
            return deleted
        if isinstance(statement, Update):
            return self._apply_update(statement, context=context)
        if isinstance(statement, Select):
            if effective > 1:
                result = self._try_parallel(statement, effective,
                                            compiled=compiled,
                                            context=context)
                if result is not None:
                    return result
            program, names = compile_select(self.catalog, statement)
            program = self.pipeline.optimize(program)
            if isinstance(sql, str):
                self._plan_cache[sql] = (program, names)
            return self._run_compiled(program, names, view=self.catalog,
                                      compiled=compiled, context=context)
        raise TypeError("unsupported statement {0!r}".format(statement))

    def query(self, sql, workers=None, compile=None):
        """Shorthand: execute a SELECT and return its rows."""
        return self.execute(sql, workers=workers, compile=compile).rows()

    def _apply_pragma(self, pragma):
        if pragma.name == "workers":
            value = pragma.value
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError("SET workers needs a positive integer")
            self.default_workers = value
            return None
        if pragma.name == "compile":
            value = pragma.value
            if not isinstance(value, bool):
                raise ValueError("SET compile needs true or false")
            self.default_compile = value
            return None
        if pragma.name == "deadline":
            self.default_deadline = self._pragma_limit("deadline",
                                                       pragma.value)
            return None
        if pragma.name == "memory_budget":
            self.default_memory_budget = self._pragma_limit(
                "memory_budget", pragma.value)
            return None
        raise ValueError("unknown pragma {0!r}".format(pragma.name))

    @staticmethod
    def _pragma_limit(name, value):
        """Validate a governance limit pragma: a positive integer sets
        the limit, 0 clears it."""
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise ValueError(
                "SET {0} needs a non-negative integer (0 clears)".format(
                    name))
        return value or None

    def _try_parallel(self, statement, workers, compiled=False,
                      context=None):
        """Morsel-parallel SELECT; None when the shape has no parallel
        plan or every worker died (the caller then runs the serial
        engine — graceful degradation, recorded in ``last_parallel``)."""
        from repro.parallel.exchange import ParallelExecutionFailed
        from repro.parallel.executor import (
            ParallelResult, ParallelSelectExecutor, ParallelUnsupported,
        )
        executor = ParallelSelectExecutor(
            self.catalog, workers, smp_profile=self.smp_profile,
            faults=self.faults, tracer=self.tracer,
            compiler=self.plan_compiler if compiled else None,
            governance=context)
        try:
            result = executor.execute(statement)
        except ParallelUnsupported:
            self.parallel_fallbacks += 1
            return None
        except ParallelExecutionFailed as failure:
            self.parallel_fallbacks += 1
            self.last_parallel = ParallelResult(
                [], [], None, None, failures=list(failure.failures),
                fell_back=True)
            return None
        self.parallel_runs += 1
        self.last_parallel = result
        return ResultSet(result.names, result.columns)

    def explain(self, sql):
        """The optimized MAL program for a SELECT, as text."""
        statement = parse_sql(sql)
        if isinstance(statement, Explain):
            statement = statement.statement
        return self._explain_statement(statement)

    def _explain_statement(self, statement):
        if not isinstance(statement, Select):
            raise TypeError(
                "EXPLAIN supports only SELECT statements, got {0}".format(
                    statement_kind(statement)))
        program, _ = compile_select(self.catalog, statement)
        return str(self.pipeline.optimize(program))

    def profile(self, sql, workers=None, hardware_profile=None,
                compile=None):
        """Execute a SELECT with tracing on; returns a
        :class:`~repro.observability.QueryProfile`.

        A serial profile charges the interpreter's simulated memory
        traffic against a fresh hierarchy (``hardware_profile``,
        default :data:`~repro.hardware.profiles.SCALED_DEFAULT`) that
        the query tracer watches, so the span tree's cycle total equals
        the hierarchy's global accounting exactly.  With ``workers > 1``
        (or ``SET workers``) the parallel engine runs instead: one span
        stream per worker (watching that worker's private hierarchy),
        merged under the exchange span, with per-morsel attribution.
        Queries without a parallel plan shape fall back to a serial
        profile, like ``execute``.
        """
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, Profile):
            statement = statement.statement
        effective = self.default_workers if workers is None else workers
        if effective < 1:
            raise ValueError("workers must be at least 1")
        profile = self._profile_statement(
            statement, sql if isinstance(sql, str) else "",
            workers=effective, hardware_profile=hardware_profile,
            compile=compile)
        self.last_profile = profile
        return profile

    def _profile_statement(self, statement, sql_text, workers=1,
                           hardware_profile=None, compile=None):
        from repro.observability.profiling import QueryProfile
        from repro.observability.tracer import Tracer
        if not isinstance(statement, Select):
            raise TypeError(
                "PROFILE supports only SELECT statements, got {0}".format(
                    statement_kind(statement)))
        tracer = Tracer()
        compiled = self.default_compile if compile is None else compile
        if workers > 1:
            profiled = self._profile_parallel(statement, workers, tracer,
                                              sql_text, compiled=compiled)
            if profiled is not None:
                return profiled
        if hardware_profile is None:
            from repro.hardware.profiles import SCALED_DEFAULT
            hardware_profile = SCALED_DEFAULT
        hierarchy = hardware_profile.make_hierarchy()
        tracer.watch(hierarchy)
        with tracer.span("query", kind="query", sql=sql_text[:200],
                         engine="serial"):
            with tracer.span("compile", kind="phase"):
                program, names = compile_select(self.catalog, statement)
                program = self.pipeline.optimize(program)
            interpreter = Interpreter(self.catalog,
                                      recycler=self.recycler,
                                      tracer=tracer, hierarchy=hierarchy)
            with tracer.span("execute", kind="pipeline",
                             compiled=compiled):
                out = None
                if compiled:
                    out = self.plan_compiler.try_run(
                        program, self.catalog, interpreter,
                        tracer=tracer, hierarchy=hierarchy)
                if out is None:
                    out = interpreter.run(program)
            result = self._materialize_result(program, names, out)
        return QueryProfile(tracer.roots[-1], result,
                            hierarchy=hierarchy)

    def _profile_parallel(self, statement, workers, tracer, sql_text,
                          compiled=False):
        """Parallel profile, or None on fallback (no parallel plan /
        all workers died) — the caller then profiles serially."""
        from repro.observability.profiling import QueryProfile
        from repro.parallel.exchange import ParallelExecutionFailed
        from repro.parallel.executor import (
            ParallelSelectExecutor, ParallelUnsupported,
        )
        smp_profile = self.smp_profile
        if smp_profile is None:
            from repro.hardware.profiles import SCALED_SMP
            smp_profile = SCALED_SMP
        executor = ParallelSelectExecutor(
            self.catalog, workers, smp_profile=smp_profile,
            faults=self.faults, tracer=tracer,
            compiler=self.plan_compiler if compiled else None)
        try:
            with tracer.span("query", kind="query", sql=sql_text[:200],
                             engine="parallel", workers=workers):
                result = executor.execute(statement)
        except (ParallelUnsupported, ParallelExecutionFailed):
            self.parallel_fallbacks += 1
            tracer.roots.clear()  # restart the tree for the serial run
            return None
        self.parallel_runs += 1
        self.last_parallel = result
        return QueryProfile(tracer.roots[-1],
                            ResultSet(result.names, result.columns),
                            worker_set=result.worker_set)

    def begin(self, pin=False):
        """Start a snapshot-isolation transaction.

        ``pin=True`` snapshots every existing table immediately, so the
        snapshot is one consistent cross-table point in time (sessions
        use this); the default pins each table lazily at first touch.
        """
        return Transaction(self, pin=pin)

    # -- internals shared with Transaction ----------------------------------------

    def _run_select(self, statement, view, compiled=None, context=None):
        program, names = compile_select(self.catalog, statement)
        program = self.pipeline.optimize(program)
        return self._run_compiled(program, names, view, compiled=compiled,
                                  context=context)

    def _run_compiled(self, program, names, view, compiled=None,
                      context=None):
        interpreter = self.interpreter if view is self.catalog \
            else Interpreter(view, recycler=self.recycler,
                             tracer=self.tracer)
        use_compiler = self.default_compile if compiled is None \
            else compiled
        interpreter.governance = context if context is not None \
            else NO_GOVERNANCE
        try:
            if use_compiler:
                out = self.plan_compiler.try_run(program, view,
                                                 interpreter,
                                                 tracer=self.tracer)
                if out is not None:
                    return self._materialize_result(program, names, out)
            out = interpreter.run(program)
            return self._materialize_result(program, names, out)
        finally:
            interpreter.governance = NO_GOVERNANCE

    @staticmethod
    def _materialize_result(program, names, out):
        values = [out[name] for name in program.returns]
        widths = {len(v) for v in values if isinstance(v, BAT)}
        if not widths:
            # Pure scalar result (e.g. aggregates without GROUP BY).
            return ResultSet(names, [[v] for v in values])
        # Scalar returns alongside columns are constant expressions
        # (SELECT -5, k FROM t): broadcast them to the column length.
        n = max(widths)
        return ResultSet(names, [v.decoded() if isinstance(v, BAT)
                                 else [v] * n for v in values])

    def _eval_where(self, table_name, where, view, context=None):
        """Visible oids of ``table_name`` matching ``where``."""
        program = compile_where_candidates(self.catalog, table_name, where)
        program = self.pipeline.optimize(program)
        interpreter = Interpreter(view)
        if context is not None:
            interpreter.governance = context
        cand = interpreter.run_single(program)
        return cand.decoded()

    def _eval_update_rows(self, table, statement, view, context=None):
        """New full rows (column order) for an UPDATE's matched tuples."""
        assigned = dict(statement.assignments)
        unknown = set(assigned) - set(table.column_names)
        if unknown:
            raise KeyError("UPDATE of unknown column(s) {0}".format(
                sorted(unknown)))
        items = [SelectItem(assigned.get(c, Column(c)), alias=c)
                 for c in table.column_names]
        from repro.sql.ast import Select as SelectNode, TableRef
        select = SelectNode(items=items, table=TableRef(table.name),
                            where=statement.where)
        result = self._run_select(select, view=view, context=context)
        return result.rows()

    def _reject_view_dml(self, table_name):
        """Views are read-only derived state: DML targets base tables."""
        if self.views.is_view(table_name):
            raise ValueError(
                "materialized view {0!r} is read-only; modify its base "
                "tables instead".format(table_name))

    def _apply_update(self, statement, context=None):
        self._reject_view_dml(statement.table)
        table = self.catalog.get(statement.table)
        new_rows = self._eval_update_rows(table, statement,
                                          view=self.catalog,
                                          context=context)
        oids = self._eval_where(statement.table, statement.where,
                                view=self.catalog, context=context)
        ops = [{"table": statement.table,
                "appends": [list(r) for r in new_rows],
                "deletes": sorted(int(o) for o in oids)}]
        self._log_commit(ops)
        self._apply_ops(ops)
        self._bump_commit()
        return len(oids)

    # -- durability: logical ops, write-ahead logging, recovery --------------

    @staticmethod
    def _normalized_rows(table, rows, columns):
        """Insert rows reordered to the table's column order (the
        canonical shape of a logical append record)."""
        order = columns or table.column_names
        if sorted(order) != sorted(table.column_names):
            raise ValueError(
                "INSERT must provide every column of {0!r}".format(
                    table.name))
        reorder = [order.index(c) for c in table.column_names]
        out = []
        for row in rows:
            if len(row) != len(order):
                raise ValueError("row arity mismatch: {0!r}".format(row))
            out.append([row[i] for i in reorder])
        return out

    def _bump_commit(self):
        """Advance and return the commit sequence number (one commit
        just published)."""
        self.commit_seq += 1
        return self.commit_seq

    def _log_commit(self, ops):
        """Write-ahead: make the logical ops durable before applying."""
        ops = [op for op in ops if op["appends"] or op["deletes"]]
        if ops and self.wal is not None:
            self.wal.append({"kind": "commit", "ops": ops})

    def _apply_ops(self, ops):
        """Publish logical ops to the catalog; the one code path shared
        by live execution and WAL replay, so a recovered catalog is
        bit-identical to one that never crashed.  Returns the number of
        rows (freshly) deleted.

        Materialized views watching a table get the op's delta —
        appended and (freshly) removed rows — folded in right here,
        atomically with the base-table change, so every caller of this
        path (autocommit, transaction publish, replay, replication
        apply, 2PC decide, resharding install) keeps views consistent
        without knowing they exist.
        """
        deleted = 0
        for op in ops:
            table = self.catalog.get(op["table"])
            watched = self.views.watching(op["table"])
            removed = []
            if watched and op["deletes"]:
                # Capture doomed rows before delete_oids hides them,
                # mirroring its freshness filter.
                for oid in op["deletes"]:
                    oid = int(oid)
                    if 0 <= oid < table.physical_count \
                            and oid not in table.deleted:
                        removed.append(table.row(oid))
            appended = []
            if op["appends"]:
                oids = table.append_rows(op["appends"])
                if watched:
                    appended = [table.row(o) for o in oids]
            if op["deletes"]:
                deleted += table.delete_oids(op["deletes"])
            if watched and (appended or removed):
                self.views.apply_delta(op["table"], appended, removed)
        return deleted

    def _replay_record(self, record):
        """Apply one logical WAL record to the live catalog.

        The single dispatch point shared by :meth:`recover` and
        replication apply (a replica replays the primary's shipped
        records through here), so a replayed catalog is bit-identical
        to one built by live execution.  Unknown keys on the record
        (e.g. the replication layer's ``term``/``lsn`` stamps) are
        ignored.
        """
        kind = record.get("kind")
        if kind == "create":
            self.catalog.create_table(
                record["table"],
                [tuple(c) for c in record["columns"]],
                partition_by=record.get("partition_by"))
            self._plan_cache.clear()  # schema changed
            self._bump_schema_epoch()
        elif kind == "create_view":
            # Re-installing the view re-materializes its backing table
            # from the (replayed) base tables; subsequent commit
            # records then maintain it exactly as live execution did.
            select = parse_sql(record["sql"])
            self.views.create(record["name"], select)
            self._plan_cache.clear()  # schema changed
            self._bump_schema_epoch()
        elif kind == "drop_view":
            self.views.drop(record["name"])
            self._plan_cache.clear()  # schema changed
            self._bump_schema_epoch()
        elif kind == "commit":
            self._apply_ops(record["ops"])
            self._bump_commit()
        elif kind == "prepare":
            # Two-phase commit (repro.sharding): the record is durable
            # but undecided; it applies only when a decide-commit
            # follows, or when the coordinator's decision log resolves
            # it after recovery (presumed abort otherwise).
            self._pending_prepares[record["xid"]] = record["ops"]
        elif kind == "decide":
            ops = self._pending_prepares.pop(record["xid"], None)
            if record["outcome"] == "commit" and ops is not None:
                self._apply_ops(ops)
                self._bump_commit()
        elif kind == "stage":
            # Online-resharding staging (repro.sharding.resharding):
            # migrated rows parked durably on the target but *not*
            # visible — the cutover's install commit materializes them.
            # The migration rebuilds its staged state by scanning the
            # WAL, so replay has nothing to apply here.
            pass
        else:
            raise ValueError(
                "unknown WAL record kind {0!r}".format(kind))

    def recover(self):
        """Rebuild the catalog by replaying the write-ahead log.

        Models restart after a crash: the in-memory catalog is
        discarded wholesale and every *complete* WAL record is replayed
        in order (the WAL's torn tail, if an append was cut short, is
        discarded and truncated).  Replay is idempotent — recovering
        twice, or recovering an instance that never crashed, yields
        the same state with no duplicated rows — because it always
        starts from an empty catalog; replication failover retries
        lean on this.  A mid-log checksum failure raises
        :class:`~repro.wal.WalCorruptionError` *before* the catalog is
        touched.  Returns the number of records replayed.
        """
        if self.wal is None:
            raise RuntimeError("recover() needs a write-ahead log")
        records = self.wal.recover()
        self.catalog = Catalog()
        self.views = ViewMaintainer(self)  # rebuilt by create_view replay
        self.interpreter = Interpreter(self.catalog,
                                       recycler=self.recycler,
                                       tracer=self.tracer)
        if self.recycler is not None:
            self.recycler.clear()  # cached results may predate the crash
        self._plan_cache.clear()
        self._bump_schema_epoch()
        self.last_parallel = None
        self._pending_prepares = {}
        self.commit_seq = 0  # rebuilt by replay
        for record in records:
            self._replay_record(record)
        return len(records)

    @property
    def in_doubt(self):
        """Xids of prepared-but-undecided 2PC transactions after
        :meth:`recover` (empty outside distributed operation)."""
        return sorted(self._pending_prepares)

    def resolve_in_doubt(self, committed_xids):
        """Settle in-doubt 2PC participants after recovery.

        ``committed_xids``: xids the coordinator's decision log marked
        committed — their prepared ops are applied (and the decision is
        re-logged locally so a later replay is self-contained); every
        other in-doubt xid is presumed aborted.  Returns the number of
        transactions committed here.
        """
        committed = 0
        for xid in sorted(self._pending_prepares):
            ops = self._pending_prepares.pop(xid)
            outcome = "commit" if xid in committed_xids else "abort"
            if self.wal is not None:
                self.wal.append({"kind": "decide", "xid": xid,
                                 "outcome": outcome})
            if outcome == "commit":
                self._apply_ops(ops)
                self._bump_commit()
                committed += 1
        return committed
