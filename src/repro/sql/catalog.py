"""Catalog and table storage: columns as BATs, deltas, deleted positions.

Section 3.2: "The relational front-end decomposes tables by column, in
BATs with a dense (non-stored) TID head, and a tail column with values.
For each table, a BAT with deleted positions is kept.  Delta BATs are
designed to delay updates to the main columns, and allow a relatively
cheap snapshot isolation mechanism (only the delta BATs are copied)."

Concretely, each column is one append-only BAT whose prefix of
``base_count`` rows is the merged *main* column and whose suffix is the
insert delta; the delete delta is a set of deleted oids.  Appends only
ever extend columns, so a snapshot is fully described by a row count and
a copy of the deleted set — the cheap-snapshot property the paper claims
(measured in experiment E14).
"""

import numpy as np

from repro.core.atoms import OID, atom_by_name
from repro.core.bat import BAT


class Table:
    """One relational table, vertically decomposed into BATs."""

    def __init__(self, name, columns, partition_by=None):
        """``columns``: ordered list of (column name, type name) pairs.

        ``partition_by`` records the declared hash-partition key (the
        ``PARTITION BY`` DDL clause); a single-node database stores it
        as inert metadata, the sharding layer routes by it.
        """
        if not columns:
            raise ValueError("a table needs at least one column")
        if partition_by is not None and \
                partition_by not in [c for c, _ in columns]:
            raise ValueError(
                "PARTITION BY names unknown column {0!r}".format(
                    partition_by))
        self.name = name
        self.partition_by = partition_by
        self.column_names = []
        self.atoms = {}
        self.columns = {}
        for col_name, type_name in columns:
            if col_name in self.atoms:
                raise ValueError("duplicate column {0!r}".format(col_name))
            atom = atom_by_name(type_name)
            self.column_names.append(col_name)
            self.atoms[col_name] = atom
            self.columns[col_name] = BAT.from_values([], atom=atom)
        self.base_count = 0
        self.deleted = set()
        self.version = 0
        self.delete_log = []        # [(version after delete, frozenset oids)]
        self._delete_log_floor = 0  # snapshots older than this can't be answered
        self._crackers = {}

    # -- geometry -----------------------------------------------------------

    @property
    def physical_count(self):
        """Rows stored, including deleted ones and the insert delta."""
        return len(self.columns[self.column_names[0]])

    @property
    def visible_count(self):
        return self.physical_count - len(self.deleted)

    @property
    def delta_count(self):
        """Rows in the insert delta (not yet merged into the main column)."""
        return self.physical_count - self.base_count

    def atom(self, column):
        try:
            return self.atoms[column]
        except KeyError:
            raise KeyError("table {0!r} has no column {1!r}".format(
                self.name, column)) from None

    # -- reads ---------------------------------------------------------------

    def bind(self, column):
        """The full physical column BAT (main + insert delta)."""
        if column not in self.columns:
            raise KeyError("table {0!r} has no column {1!r}".format(
                self.name, column))
        return self.columns[column]

    def tid(self, physical_count=None, deleted=None):
        """Visible row oids as a candidate list (``sql.tid``).

        ``physical_count`` and ``deleted`` let a snapshot restrict the
        view to its frozen state.
        """
        count = self.physical_count if physical_count is None \
            else physical_count
        dead = self.deleted if deleted is None else deleted
        oids = np.arange(count, dtype=np.int64)
        if dead:
            mask = np.ones(count, dtype=bool)
            dead_arr = np.fromiter((d for d in dead if d < count),
                                   dtype=np.int64)
            mask[dead_arr] = False
            oids = oids[mask]
        return BAT(OID, oids, tsorted=True, tkey=True)

    def row(self, oid):
        """Decoded values of one visible row (testing/debugging aid)."""
        if oid in self.deleted or not 0 <= oid < self.physical_count:
            raise KeyError(oid)
        return tuple(self.columns[c].tail_at(oid) for c in self.column_names)

    # -- writes ----------------------------------------------------------------

    def append_rows(self, rows, columns=None):
        """Append full rows; unmentioned columns are rejected.

        ``rows`` is a list of value tuples in ``columns`` order (defaults
        to the table's column order).  Returns the oids assigned.
        """
        order = columns or self.column_names
        if sorted(order) != sorted(self.column_names):
            raise ValueError(
                "INSERT must provide every column of {0!r}".format(self.name))
        for row in rows:
            if len(row) != len(order):
                raise ValueError("row arity mismatch: {0!r}".format(row))
        first = self.physical_count
        by_column = {name: [row[i] for row in rows]
                     for i, name in enumerate(order)}
        for name in self.column_names:
            atom = self.atoms[name]
            values = by_column[name]
            if not atom.varsized:
                values = [atom.nil if v is None else v for v in values]
            self.columns[name].append_values(values)
            cracker = self._crackers.get(name)
            if cracker is not None:
                cracker.insert(values)
        self.version += 1
        return list(range(first, first + len(rows)))

    def delete_oids(self, oids):
        """Mark rows deleted (the deleted-positions BAT of Section 3.2)."""
        fresh = {int(o) for o in oids
                 if 0 <= int(o) < self.physical_count
                 and int(o) not in self.deleted}
        self.deleted.update(fresh)
        if fresh:
            for cracker in self._crackers.values():
                cracker.delete(fresh)
            self.version += 1
            self.delete_log.append((self.version, frozenset(fresh)))
            if len(self.delete_log) > 1024:
                dropped_version, _ = self.delete_log.pop(0)
                self._delete_log_floor = dropped_version
        return len(fresh)

    def deleted_since(self, version):
        """Oids deleted by writers after snapshot ``version``, or
        ``None`` when the log cannot answer (the snapshot predates a
        vacuum or a trimmed log entry) — callers must then assume the
        worst and treat every shared row as touched."""
        if version < self._delete_log_floor:
            return None
        out = set()
        for logged_version, oids in self.delete_log:
            if logged_version > version:
                out |= oids
        return out

    def cracked_select(self, column, lo=None, hi=None, lo_incl=True,
                       hi_incl=False):
        """Candidates matching the range via a self-organizing cracker.

        The column's cracker index is created on first use ("just-in-
        time partial indexing", §6.1) and kept in sync with appends and
        deletes.  Falls back to a plain select for non-integer columns
        — which keeps the optimizer rewrite unconditionally safe.
        """
        from repro.core.algebra import select_range
        atom = self.atom(column)
        if atom.dtype.kind not in "iu" or atom.varsized:
            return select_range(self.bind(column), lo, hi, lo_incl,
                                hi_incl, candidates=self.tid())
        cracker = self._crackers.get(column)
        if cracker is None:
            from repro.cracking import CrackedStore
            cracker = CrackedStore(self.columns[column].tail,
                                   merge_threshold=2048)
            if self.deleted:
                cracker.delete(self.deleted)
            self._crackers[column] = cracker
        oids = cracker.select_range(lo, hi, lo_incl, hi_incl)
        return BAT(OID, np.asarray(oids, dtype=np.int64), tsorted=True,
                   tkey=True)

    def cracker_stats(self, column):
        """(tuples touched, piece count) of a column's cracker, if any."""
        cracker = self._crackers.get(column)
        if cracker is None:
            return (0, 0)
        return (cracker.tuples_touched, cracker.n_pieces)

    def merge_deltas(self):
        """Physically merge deltas into the main columns.

        Rebuilds every column without the deleted rows and resets the
        deltas.  Oids are renumbered (a vacuum), so this runs only at
        quiescent points.
        """
        keep = np.asarray(self.tid().tail, dtype=np.int64)
        for name in self.column_names:
            old = self.columns[name]
            merged = old.fetch(keep)
            merged.heap = old.heap
            self.columns[name] = merged
        self.deleted = set()
        self.base_count = len(keep)
        self._crackers = {}  # oids were renumbered: rebuild lazily
        self.version += 1
        # Oids were renumbered: older snapshots can no longer be
        # validated row-by-row against the delete log.
        self.delete_log = []
        self._delete_log_floor = self.version

    def __repr__(self):
        return "Table({0!r}, {1} rows visible, {2} delta, {3} deleted)".format(
            self.name, self.visible_count, self.delta_count,
            len(self.deleted))


class Catalog:
    """The schema: named tables, plus the interpreter's catalog protocol.

    Besides tables, the catalog can hold *join indices* (§3.2:
    "MonetDB/SQL also keeps additional BATs for join indices"): for a
    declared N:1 relationship, a BAT mapping each foreign-key row to
    the matching primary-key oid (-1 for no match).  The compiler
    exploits them per §3.1 ("exploit catalogue knowledge on
    join-indices"), turning an equi-join into a positional fetch.
    Indices are rebuilt lazily when either table's version moves.
    """

    def __init__(self):
        self.tables = {}
        self._join_indices = {}   # key -> declared
        self._join_cache = {}     # key -> (fk_ver, pk_ver, BAT)

    def create_table(self, name, columns, partition_by=None):
        if name in self.tables:
            raise ValueError("table {0!r} already exists".format(name))
        table = Table(name, columns, partition_by=partition_by)
        self.tables[name] = table
        return table

    def drop_table(self, name):
        del self.tables[name]

    def get(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError("unknown table {0!r}".format(name)) from None

    def __contains__(self, name):
        return name in self.tables

    # -- the MAL interpreter protocol ------------------------------------------

    def bind(self, table, column):
        return self.get(table).bind(column)

    def count(self, table):
        return self.get(table).visible_count

    def tid(self, table):
        return self.get(table).tid()

    def table_version(self, table):
        """Version token for recycler keys: changes on every write."""
        return ("v", self.get(table).version)

    def cracked_select(self, table, column, lo, hi, lo_incl, hi_incl):
        return self.get(table).cracked_select(column, lo, hi, lo_incl,
                                              hi_incl)

    # -- join indices -----------------------------------------------------------

    def declare_join_index(self, fk_table, fk_column, pk_table,
                           pk_column):
        """Declare an N:1 join path; the mapping BAT builds lazily."""
        self.get(fk_table).atom(fk_column)
        self.get(pk_table).atom(pk_column)
        key = (fk_table, fk_column, pk_table, pk_column)
        self._join_indices[key] = True
        return key

    def has_join_index(self, fk_table, fk_column, pk_table, pk_column):
        return (fk_table, fk_column, pk_table, pk_column) \
            in self._join_indices

    def join_index(self, fk_table, fk_column, pk_table, pk_column):
        """The fk-row -> pk-oid mapping BAT (-1 marks no match).

        Rebuilt when either table's version changed; deleted pk rows
        map to -1, deleted fk rows keep a (harmless) stale slot — the
        visible-tid filtering upstream never selects them.
        """
        key = (fk_table, fk_column, pk_table, pk_column)
        if key not in self._join_indices:
            raise KeyError("no join index declared for {0}".format(key))
        fk = self.get(fk_table)
        pk = self.get(pk_table)
        cached = self._join_cache.get(key)
        if cached is not None and cached[0] == fk.version and \
                cached[1] == pk.version:
            return cached[2]
        fk_values = fk.bind(fk_column).tail
        pk_values = pk.bind(pk_column).tail
        visible = np.ones(len(pk_values), dtype=bool)
        if pk.deleted:
            visible[np.fromiter(pk.deleted, dtype=np.int64)] = False
        mapping = np.full(len(fk_values), -1, dtype=np.int64)
        lookup = {}
        for oid, value in enumerate(pk_values.tolist()):
            if visible[oid]:
                lookup[value] = oid  # last visible match wins (keys
                # are expected unique; duplicates keep one)
        for row, value in enumerate(fk_values.tolist()):
            mapping[row] = lookup.get(value, -1)
        bat = BAT(OID, mapping)
        self._join_cache[key] = (fk.version, pk.version, bat)
        return bat
