"""SQL tokenizer.

Produces a flat token list for the recursive-descent parser.  Keywords
are case-insensitive; identifiers are normalized to lower case; string
literals use single quotes with ``''`` escaping.
"""

import re
from dataclasses import dataclass


class SQLSyntaxError(ValueError):
    """Raised on malformed SQL."""


KEYWORDS = frozenset("""
    select from where group by having order asc desc limit distinct
    create table insert into values delete update set join inner on
    and or not between in is as integer int bigint smallint tinyint
    varchar text string boolean bool real float double true false null
    explain profile partition
    begin commit rollback abort transaction work
    materialized view drop
""".split())

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|[=<>+\-*/%(),.;])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str   # 'keyword', 'ident', 'number', 'string', 'op', 'end'
    value: object
    position: int

    def matches(self, kind, value=None):
        return self.kind == kind and (value is None or self.value == value)


END = "end"


def tokenize(text):
    """Tokenize SQL text into a list of Tokens (terminated by an END)."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLSyntaxError(
                "unexpected character {0!r} at position {1}".format(
                    text[pos], pos))
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        raw = match.group()
        if match.lastgroup == "number":
            value = float(raw) if ("." in raw or "e" in raw or "E" in raw) \
                else int(raw)
            tokens.append(Token("number", value, match.start()))
        elif match.lastgroup == "string":
            tokens.append(Token("string", raw[1:-1].replace("''", "'"),
                                match.start()))
        elif match.lastgroup == "ident":
            lowered = raw.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, match.start()))
            else:
                tokens.append(Token("ident", lowered, match.start()))
        else:
            tokens.append(Token("op", raw, match.start()))
    tokens.append(Token(END, None, len(text)))
    return tokens
