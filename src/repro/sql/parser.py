"""Recursive-descent SQL parser for the supported subset.

Statements: CREATE TABLE, CREATE MATERIALIZED VIEW ... AS SELECT,
DROP MATERIALIZED VIEW, INSERT, DELETE, UPDATE, SELECT (joins, WHERE,
GROUP BY, HAVING, ORDER BY, LIMIT, DISTINCT, BETWEEN, IN), the
session pragma SET (``SET workers = 4``), transaction control
(``BEGIN`` / ``COMMIT`` / ``ROLLBACK``, each with an optional
``TRANSACTION``/``WORK`` noise word, plus ``ABORT``), and the
EXPLAIN / PROFILE statement prefixes.  Expressions
follow standard precedence: OR < AND < NOT < comparison < additive <
multiplicative < unary minus.
"""

from repro.sql.ast import (
    BeginTransaction, BinOp, Column, CommitTransaction,
    CreateMaterializedView, CreateTable, Delete, DropMaterializedView,
    Explain, FuncCall, Insert, IsNull, Join, Literal, OrderItem,
    Profile, RollbackTransaction, Select, SelectItem, SetPragma, Star,
    TableRef, UnaryOp, Update,
)
from repro.sql.lexer import END, SQLSyntaxError, tokenize

_TYPE_KEYWORDS = frozenset([
    "integer", "int", "bigint", "smallint", "tinyint", "varchar", "text",
    "string", "boolean", "bool", "real", "float", "double",
])


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != END:
            self.pos += 1
        return token

    def accept(self, kind, value=None):
        if self.peek().matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            raise SQLSyntaxError(
                "expected {0} {1!r}, found {2!r} at position {3}".format(
                    kind, value, self.peek().value, self.peek().position))
        return token

    # -- statements ------------------------------------------------------------

    def parse_statement(self):
        token = self.peek()
        if token.matches("keyword", "explain"):
            self.advance()
            return Explain(self.parse_statement())
        if token.matches("keyword", "profile"):
            self.advance()
            return Profile(self.parse_statement())
        if token.matches("keyword", "create"):
            if self.peek(1).matches("keyword", "materialized"):
                return self.create_view()
            return self.create_table()
        if token.matches("keyword", "drop"):
            return self.drop_view()
        if token.matches("keyword", "insert"):
            return self.insert()
        if token.matches("keyword", "delete"):
            return self.delete()
        if token.matches("keyword", "update"):
            return self.update()
        if token.matches("keyword", "select"):
            return self.select()
        if token.matches("keyword", "set"):
            return self.set_pragma()
        if token.matches("keyword", "begin"):
            return self.txn_control("begin", BeginTransaction)
        if token.matches("keyword", "commit"):
            return self.txn_control("commit", CommitTransaction)
        if token.matches("keyword", "rollback"):
            return self.txn_control("rollback", RollbackTransaction)
        if token.matches("keyword", "abort"):
            return self.txn_control("abort", RollbackTransaction)
        raise SQLSyntaxError("unsupported statement start: {0!r}".format(
            token.value))

    def txn_control(self, word, node):
        """``BEGIN|COMMIT|ROLLBACK [TRANSACTION|WORK]`` and ``ABORT``."""
        self.expect("keyword", word)
        if not self.accept("keyword", "transaction"):
            self.accept("keyword", "work")
        return node()

    def set_pragma(self):
        """``SET name = value`` session pragma (e.g. ``SET workers = 4``)."""
        self.expect("keyword", "set")
        name = self.expect("ident").value
        self.expect("op", "=")
        value = self._literal_value()
        self.accept("op", ";")
        self.expect(END)
        return SetPragma(name, value)

    def create_table(self):
        self.expect("keyword", "create")
        self.expect("keyword", "table")
        name = self.expect("ident").value
        self.expect("op", "(")
        columns = []
        while True:
            col = self.expect("ident").value
            type_token = self.advance()
            if type_token.kind not in ("keyword", "ident") or \
                    type_token.value not in _TYPE_KEYWORDS:
                raise SQLSyntaxError("unknown column type {0!r}".format(
                    type_token.value))
            # Swallow optional length parameter: VARCHAR(20).
            if self.accept("op", "("):
                self.expect("number")
                self.expect("op", ")")
            columns.append((col, type_token.value))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        partition_by = None
        if self.accept("keyword", "partition"):
            self.expect("keyword", "by")
            parenthesized = bool(self.accept("op", "("))
            partition_by = self.expect("ident").value
            if parenthesized:
                self.expect("op", ")")
            if partition_by not in [c for c, _ in columns]:
                raise SQLSyntaxError(
                    "PARTITION BY names unknown column {0!r}".format(
                        partition_by))
        self.accept("op", ";")
        self.expect(END)
        return CreateTable(name, columns, partition_by)

    def create_view(self):
        """``CREATE MATERIALIZED VIEW name AS SELECT ...``."""
        self.expect("keyword", "create")
        self.expect("keyword", "materialized")
        self.expect("keyword", "view")
        name = self.expect("ident").value
        self.expect("keyword", "as")
        select = self.select()  # consumes the trailing ';' and END
        return CreateMaterializedView(name, select)

    def drop_view(self):
        """``DROP MATERIALIZED VIEW name``."""
        self.expect("keyword", "drop")
        self.expect("keyword", "materialized")
        self.expect("keyword", "view")
        name = self.expect("ident").value
        self.accept("op", ";")
        self.expect(END)
        return DropMaterializedView(name)

    def insert(self):
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        table = self.expect("ident").value
        columns = None
        if self.accept("op", "("):
            columns = [self.expect("ident").value]
            while self.accept("op", ","):
                columns.append(self.expect("ident").value)
            self.expect("op", ")")
        self.expect("keyword", "values")
        rows = [self._value_row()]
        while self.accept("op", ","):
            rows.append(self._value_row())
        self.accept("op", ";")
        self.expect(END)
        return Insert(table, rows, columns)

    def _value_row(self):
        self.expect("op", "(")
        values = [self._literal_value()]
        while self.accept("op", ","):
            values.append(self._literal_value())
        self.expect("op", ")")
        return tuple(values)

    def _literal_value(self):
        token = self.advance()
        if token.kind == "number":
            return token.value
        if token.kind == "string":
            return token.value
        if token.matches("keyword", "true"):
            return True
        if token.matches("keyword", "false"):
            return False
        if token.matches("keyword", "null"):
            return None
        if token.matches("op", "-"):
            inner = self._literal_value()
            return -inner
        raise SQLSyntaxError("expected literal, found {0!r}".format(
            token.value))

    def delete(self):
        self.expect("keyword", "delete")
        self.expect("keyword", "from")
        table = self.expect("ident").value
        where = None
        if self.accept("keyword", "where"):
            where = self.expression()
        self.accept("op", ";")
        self.expect(END)
        return Delete(table, where)

    def update(self):
        self.expect("keyword", "update")
        table = self.expect("ident").value
        self.expect("keyword", "set")
        assignments = [self._assignment()]
        while self.accept("op", ","):
            assignments.append(self._assignment())
        where = None
        if self.accept("keyword", "where"):
            where = self.expression()
        self.accept("op", ";")
        self.expect(END)
        return Update(table, assignments, where)

    def _assignment(self):
        column = self.expect("ident").value
        self.expect("op", "=")
        return (column, self.expression())

    # -- SELECT -------------------------------------------------------------------

    def select(self, nested=False):
        self.expect("keyword", "select")
        distinct = bool(self.accept("keyword", "distinct"))
        items = [self._select_item()]
        while self.accept("op", ","):
            items.append(self._select_item())
        table = None
        joins = []
        if self.accept("keyword", "from"):
            table = self._table_ref()
            while True:
                if self.accept("keyword", "join"):
                    pass
                elif self.peek().matches("keyword", "inner") and \
                        self.peek(1).matches("keyword", "join"):
                    self.advance()
                    self.advance()
                else:
                    break
                joined = self._table_ref()
                self.expect("keyword", "on")
                condition = self.expression()
                joins.append(Join(joined, condition))
        where = None
        if self.accept("keyword", "where"):
            where = self.expression()
        group_by = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by.append(self.expression())
            while self.accept("op", ","):
                group_by.append(self.expression())
        having = None
        if self.accept("keyword", "having"):
            having = self.expression()
        order_by = []
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            order_by.append(self._order_item())
            while self.accept("op", ","):
                order_by.append(self._order_item())
        limit = None
        if self.accept("keyword", "limit"):
            limit = self.expect("number").value
        self.accept("op", ";")
        if not nested:
            self.expect(END)
        return Select(items, table, joins, where, group_by, having,
                      order_by, limit, distinct)

    def _select_item(self):
        if self.accept("op", "*"):
            return SelectItem(Star())
        # table.* form
        if self.peek().kind == "ident" and self.peek(1).matches("op", ".") \
                and self.peek(2).matches("op", "*"):
            table = self.advance().value
            self.advance()
            self.advance()
            return SelectItem(Star(table))
        expr = self.expression()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _table_ref(self):
        name = self.expect("ident").value
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return TableRef(name, alias)

    def _order_item(self):
        expr = self.expression()
        ascending = True
        if self.accept("keyword", "desc"):
            ascending = False
        else:
            self.accept("keyword", "asc")
        return OrderItem(expr, ascending)

    # -- expressions ---------------------------------------------------------------

    def expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept("keyword", "or"):
            left = BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept("keyword", "and"):
            left = BinOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept("keyword", "not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "<>", "!=", "<", "<=",
                                                  ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            return BinOp(op, left, self._additive())
        if token.matches("keyword", "is"):
            self.advance()
            negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "null")
            node = IsNull(left)
            return UnaryOp("not", node) if negated else node
        if token.matches("keyword", "between"):
            self.advance()
            lo = self._additive()
            self.expect("keyword", "and")
            hi = self._additive()
            return BinOp("and", BinOp(">=", left, lo), BinOp("<=", left, hi))
        if token.matches("keyword", "in"):
            self.advance()
            self.expect("op", "(")
            values = [self.expression()]
            while self.accept("op", ","):
                values.append(self.expression())
            self.expect("op", ")")
            disjunction = BinOp("=", left, values[0])
            for value in values[1:]:
                disjunction = BinOp("or", disjunction,
                                    BinOp("=", left, value))
            return disjunction
        if token.matches("keyword", "not") and \
                self.peek(1).matches("keyword", "in"):
            self.advance()
            inner = self._comparison_in_tail(left)
            return UnaryOp("not", inner)
        return left

    def _comparison_in_tail(self, left):
        self.expect("keyword", "in")
        self.expect("op", "(")
        values = [self.expression()]
        while self.accept("op", ","):
            values.append(self.expression())
        self.expect("op", ")")
        disjunction = BinOp("=", left, values[0])
        for value in values[1:]:
            disjunction = BinOp("or", disjunction, BinOp("=", left, value))
        return disjunction

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self.accept("op", "+"):
                left = BinOp("+", left, self._multiplicative())
            elif self.accept("op", "-"):
                left = BinOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            if self.accept("op", "*"):
                left = BinOp("*", left, self._unary())
            elif self.accept("op", "/"):
                left = BinOp("/", left, self._unary())
            elif self.accept("op", "%"):
                left = BinOp("%", left, self._unary())
            else:
                return left

    def _unary(self):
        if self.accept("op", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self.peek()
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.matches("keyword", "true"):
            self.advance()
            return Literal(True)
        if token.matches("keyword", "false"):
            self.advance()
            return Literal(False)
        if token.matches("keyword", "null"):
            self.advance()
            return Literal(None)
        if token.matches("op", "("):
            self.advance()
            expr = self.expression()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            name = self.advance().value
            if self.accept("op", "("):
                return self._function_call(name)
            if self.accept("op", "."):
                column = self.expect("ident").value
                return Column(column, table=name)
            return Column(name)
        raise SQLSyntaxError("unexpected token {0!r} at position {1}".format(
            token.value, token.position))

    def _function_call(self, name):
        distinct = bool(self.accept("keyword", "distinct"))
        if self.accept("op", ")"):
            return FuncCall(name, (), distinct)
        if self.accept("op", "*"):
            args = (Star(),)
        else:
            args = [self.expression()]
            while self.accept("op", ","):
                args.append(self.expression())
            args = tuple(args)
        self.expect("op", ")")
        return FuncCall(name, args, distinct)


def parse_sql(text):
    """Parse one SQL statement into its AST node."""
    return _Parser(tokenize(text)).parse_statement()
