"""SQL abstract syntax tree nodes."""

from dataclasses import dataclass, field


# -- expressions --------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class Column:
    name: str
    table: str = None  # alias or table name, when qualified

    def __str__(self):
        return "{0}.{1}".format(self.table, self.name) if self.table \
            else self.name


@dataclass(frozen=True)
class Star:
    """``*`` in a select list or in COUNT(*)."""

    table: str = None


@dataclass(frozen=True)
class BinOp:
    op: str  # '+','-','*','/','%','=','<>','<','<=','>','>=','and','or'
    left: object
    right: object


@dataclass(frozen=True)
class UnaryOp:
    op: str  # 'not', '-'
    operand: object


@dataclass(frozen=True)
class IsNull:
    """``expr IS NULL`` — true where the value is missing.

    The engine stores missing values as in-domain nil sentinels
    (:mod:`repro.core.atoms`); boolean expressions never produce nil
    (three-valued logic is not modelled: comparisons always decide),
    so ``(a < 5) IS NULL`` is all-false by construction.  ``IS NOT
    NULL`` parses as ``UnaryOp('not', IsNull(...))``.
    """

    operand: object


@dataclass(frozen=True)
class FuncCall:
    """Function call; aggregates are count/sum/min/max/avg."""

    name: str
    args: tuple
    distinct: bool = False

    AGGREGATES = frozenset(["count", "sum", "min", "max", "avg"])

    @property
    def is_aggregate(self):
        return self.name in self.AGGREGATES


def contains_aggregate(expr):
    """True when the expression tree contains an aggregate call."""
    if isinstance(expr, FuncCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    return False


# -- statements -----------------------------------------------------------------

@dataclass
class CreateTable:
    name: str
    columns: list            # [(column name, type name)]
    partition_by: str = None  # hash-partition key column (sharding DDL)


@dataclass
class Insert:
    table: str
    rows: list            # list of tuples of Literal values
    columns: list = None  # optional explicit column order


@dataclass
class Delete:
    table: str
    where: object = None


@dataclass
class Update:
    table: str
    assignments: list  # [(column name, expression)]
    where: object = None


@dataclass
class CreateMaterializedView:
    """``CREATE MATERIALIZED VIEW name AS SELECT ...``.

    The view's contents materialize into a backing table named after
    the view and are maintained incrementally from committed DML deltas
    (:mod:`repro.views`).  ``select_sql`` optionally carries the
    defining query's SQL text; when absent, the WAL record renders it
    from the AST (:func:`repro.sql.render.render_select`).
    """

    name: str
    select: object        # the defining Select AST
    select_sql: str = None


@dataclass
class DropMaterializedView:
    """``DROP MATERIALIZED VIEW name`` — unregister the view and drop
    its backing table."""

    name: str


@dataclass
class SetPragma:
    """``SET <name> = <value>`` session pragma (e.g. ``SET workers = 4``)."""

    name: str
    value: object


@dataclass
class BeginTransaction:
    """``BEGIN [TRANSACTION|WORK]`` — leave autocommit, start a
    snapshot-isolation transaction (handled by the session layer)."""


@dataclass
class CommitTransaction:
    """``COMMIT [TRANSACTION|WORK]`` — commit the open transaction."""


@dataclass
class RollbackTransaction:
    """``ROLLBACK [TRANSACTION|WORK]`` / ``ABORT`` — abort it."""


@dataclass
class Explain:
    """``EXPLAIN <statement>`` — show the optimized MAL plan."""

    statement: object


@dataclass
class Profile:
    """``PROFILE <statement>`` — run it traced, show the span tree."""

    statement: object


def statement_kind(node):
    """Human-readable kind of a statement AST node ("SELECT", "INSERT
    INTO", ...), for error messages about unsupported statements."""
    kinds = {
        "Select": "SELECT",
        "Insert": "INSERT",
        "Delete": "DELETE",
        "Update": "UPDATE",
        "CreateTable": "CREATE TABLE",
        "CreateMaterializedView": "CREATE MATERIALIZED VIEW",
        "DropMaterializedView": "DROP MATERIALIZED VIEW",
        "SetPragma": "SET",
        "Explain": "EXPLAIN",
        "Profile": "PROFILE",
        "BeginTransaction": "BEGIN",
        "CommitTransaction": "COMMIT",
        "RollbackTransaction": "ROLLBACK",
    }
    return kinds.get(type(node).__name__, type(node).__name__)


@dataclass
class TableRef:
    name: str
    alias: str = None

    @property
    def binding(self):
        return self.alias or self.name


@dataclass
class Join:
    table: TableRef
    condition: object  # ON expression


@dataclass
class SelectItem:
    expr: object
    alias: str = None


@dataclass
class OrderItem:
    expr: object
    ascending: bool = True


@dataclass
class Select:
    items: list
    table: TableRef = None
    joins: list = field(default_factory=list)
    where: object = None
    group_by: list = field(default_factory=list)
    having: object = None
    order_by: list = field(default_factory=list)
    limit: int = None
    distinct: bool = False
