"""Snapshot-isolation transactions over delta BATs (Section 3.2).

A transaction's snapshot of a table is just *(row count, copy of the
deleted set)* — columns are append-only, so the first ``n`` rows never
change and need not be copied.  "Only the delta BATs are copied."  The
transaction's own writes are buffered privately (insert rows, deleted
oids) and merged at commit:

* appends always merge (they cannot conflict);
* deletes/updates of shared rows conflict iff another writer committed
  a delete/update of *the same row* since the snapshot was taken
  (row-level first-writer-wins, answered by the table's delete log;
  when the log cannot answer — the snapshot predates a vacuum — the
  check degrades to the coarse table-level conservative abort).

Commit is write-ahead logged and fault-injectable: the buffered writes
are first distilled into one logical record (appends + shared deletes
per table), appended to the database's WAL, and only then published to
the catalog.  Injection sites ``commit.validate``, ``wal.append``
(inside the WAL), ``commit.publish`` and ``commit.apply`` cover every
crash point; ``Database.recover()`` replays the log, so a crash
anywhere leaves either the full commit or none of it.
"""

from repro.faults import CrashError
from repro.sql.ast import (
    Column, CreateMaterializedView, CreateTable, Delete,
    DropMaterializedView, Insert, Select, Update,
)
from repro.sql.parser import parse_sql


class ConflictError(RuntimeError):
    """Write-write conflict detected at commit."""


class TransactionClosedError(RuntimeError):
    """The transaction already committed or aborted."""


class Transaction:
    """One snapshot-isolated transaction.

    Acts as both the compiler's schema source and the interpreter's
    catalog view (``bind``/``count``/``tid``), so SELECTs inside the
    transaction see the snapshot plus the transaction's own writes.
    """

    def __init__(self, database, pin=False):
        self._db = database
        self._catalog = database.catalog
        self._snapshots = {}   # table name -> (count, deleted copy, version)
        self._appends = {}     # table name -> [row tuple in column order]
        self._deleted = {}     # table name -> set of oids
        self._bind_cache = {}  # (table, column) -> (n appends, BAT)
        self.closed = False
        self.outcome = None
        # LSN stamps for the session layer: the snapshot is as-of
        # ``snapshot_lsn`` (the database's commit sequence number at
        # begin); ``commit_lsn`` is assigned when the commit publishes.
        self.snapshot_lsn = getattr(database, "commit_seq", 0)
        self.commit_lsn = None
        if pin:
            # Pin every existing table now so the snapshot is one
            # consistent cross-table point in time, not first-touch.
            for name in list(self._catalog.tables):
                self._snapshot(name)

    # -- snapshot plumbing --------------------------------------------------

    def _check_open(self):
        if self.closed:
            raise TransactionClosedError(
                "transaction already {0}".format(self.outcome))

    def _snapshot(self, name):
        """Table snapshot, established at first touch."""
        snap = self._snapshots.get(name)
        if snap is None:
            table = self._catalog.get(name)
            snap = (table.physical_count, set(table.deleted), table.version)
            self._snapshots[name] = snap
        return snap

    # -- schema (compiler) protocol ---------------------------------------------

    def get(self, name):
        self._check_open()
        self._snapshot(name)
        return self._catalog.get(name)

    # -- view (interpreter) protocol -----------------------------------------------

    def bind(self, table_name, column):
        self._check_open()
        snap_count, _, _ = self._snapshot(table_name)
        table = self._catalog.get(table_name)
        shared = table.bind(column)
        appends = self._appends.get(table_name, [])
        key = (table_name, column)
        cached = self._bind_cache.get(key)
        if cached is not None and cached[0] == len(appends):
            return cached[1]
        if snap_count == len(shared) and not appends:
            merged = shared
        else:
            merged = shared.slice(0, snap_count)
            merged.heap = shared.heap
            if appends:
                index = table.column_names.index(column)
                atom = table.atoms[column]
                values = [row[index] for row in appends]
                if not atom.varsized:
                    values = [atom.nil if v is None else v for v in values]
                merged.append_values(values)
        self._bind_cache[key] = (len(appends), merged)
        return merged

    def tid(self, table_name):
        self._check_open()
        snap_count, snap_deleted, _ = self._snapshot(table_name)
        table = self._catalog.get(table_name)
        count = snap_count + len(self._appends.get(table_name, []))
        dead = snap_deleted | self._deleted.get(table_name, set())
        return table.tid(physical_count=count, deleted=dead)

    def count(self, table_name):
        return len(self.tid(table_name))

    def cracked_select(self, table_name, column, lo, hi, lo_incl,
                       hi_incl):
        """Transactions fall back to a plain select on their snapshot
        view: a shared cracker cannot reflect per-snapshot state."""
        from repro.core.algebra import select_range
        return select_range(self.bind(table_name, column), lo, hi,
                            lo_incl, hi_incl,
                            candidates=self.tid(table_name))

    def join_index(self, fk_table, fk_column, pk_table, pk_column):
        """Join-index mapping computed against this snapshot's view."""
        import numpy as np
        from repro.core.atoms import OID
        from repro.core.bat import BAT
        fk_values = self.bind(fk_table, fk_column).tail
        pk_values = self.bind(pk_table, pk_column).tail
        visible = set(self.tid(pk_table).tail.tolist())
        lookup = {}
        for oid, value in enumerate(pk_values.tolist()):
            if oid in visible:
                lookup[value] = oid
        mapping = np.asarray([lookup.get(v, -1)
                              for v in fk_values.tolist()],
                             dtype=np.int64)
        return BAT(OID, mapping)

    def table_version(self, table_name):
        """Recycler key token: private to this transaction's state."""
        snap_count, _, snap_version = self._snapshot(table_name)
        return ("txn", id(self), snap_version, snap_count,
                len(self._appends.get(table_name, [])),
                len(self._deleted.get(table_name, set())))

    # -- statement execution -----------------------------------------------------------

    def execute(self, sql, context=None):
        """Execute a statement inside this transaction.

        SELECT returns a ResultSet; INSERT/DELETE/UPDATE return the
        affected row count (buffered until commit); DDL is rejected.
        ``context`` is an optional governance
        :class:`~repro.governance.QueryContext` for this statement: a
        kill fires at a read checkpoint, before anything is buffered —
        the transaction stays open and consistent.
        """
        self._check_open()
        statement = parse_sql(sql)
        if isinstance(statement, (CreateTable, CreateMaterializedView,
                                  DropMaterializedView)):
            raise NotImplementedError("DDL inside a transaction")
        if isinstance(statement, Insert):
            return self._buffer_insert(statement)
        if isinstance(statement, Delete):
            return self._buffer_delete(statement, context=context)
        if isinstance(statement, Update):
            return self._buffer_update(statement, context=context)
        if isinstance(statement, Select):
            return self._db._run_select(statement, view=self,
                                        context=context)
        raise TypeError("unsupported statement {0!r}".format(statement))

    def _buffer_insert(self, statement):
        self._db._reject_view_dml(statement.table)
        table = self.get(statement.table)
        order = statement.columns or table.column_names
        if sorted(order) != sorted(table.column_names):
            raise ValueError(
                "INSERT must provide every column of {0!r}".format(
                    table.name))
        reorder = [order.index(c) for c in table.column_names]
        rows = self._appends.setdefault(statement.table, [])
        for row in statement.rows:
            if len(row) != len(order):
                raise ValueError("row arity mismatch: {0!r}".format(row))
            rows.append(tuple(row[i] for i in reorder))
        self._bind_cache = {k: v for k, v in self._bind_cache.items()
                            if k[0] != statement.table}
        return len(statement.rows)

    def _matched_oids(self, table_name, where, context=None):
        return self._db._eval_where(table_name, where, view=self,
                                    context=context)

    def _buffer_delete(self, statement, context=None):
        self._db._reject_view_dml(statement.table)
        self.get(statement.table)
        oids = self._matched_oids(statement.table, statement.where,
                                  context=context)
        dead = self._deleted.setdefault(statement.table, set())
        fresh = [o for o in oids if o not in dead]
        dead.update(fresh)
        return len(fresh)

    def _buffer_update(self, statement, context=None):
        self._db._reject_view_dml(statement.table)
        table = self.get(statement.table)
        new_rows = self._db._eval_update_rows(table, statement, view=self,
                                              context=context)
        oids = self._matched_oids(statement.table, statement.where,
                                  context=context)
        dead = self._deleted.setdefault(statement.table, set())
        dead.update(oids)
        self._appends.setdefault(statement.table, []).extend(new_rows)
        self._bind_cache = {k: v for k, v in self._bind_cache.items()
                            if k[0] != statement.table}
        return len(oids)

    # -- commit / abort ----------------------------------------------------------------------

    def _validate(self):
        """Validation phase: row-level first-writer-wins for non-append
        writes.  A transaction deleting/updating shared rows conflicts
        iff a committed writer deleted/updated *one of the same rows*
        after its snapshot; when the delete log cannot answer (the
        snapshot predates a vacuum) any concurrent table change aborts
        conservatively.  A conflict closes the transaction (catalog
        untouched) and raises :class:`ConflictError`."""
        touched = sorted(set(self._appends) | set(self._deleted))
        for name in touched:
            snap_count, _, snap_version = self._snapshots[name]
            table = self._catalog.get(name)
            shared_deletes = {o for o in self._deleted.get(name, set())
                              if o < snap_count}
            if not shared_deletes or table.version == snap_version:
                continue
            committed = table.deleted_since(snap_version)
            if committed is None or committed & shared_deletes:
                self.closed = True
                self.outcome = "aborted (conflict)"
                raise ConflictError(
                    "rows of {0!r} changed since snapshot".format(name))
        return touched

    def _distill_ops(self):
        """The buffered writes as one logical commit record's ops —
        the only state recovery (or a 2PC participant) needs."""
        ops = []
        for name in sorted(set(self._appends) | set(self._deleted)):
            snap_count, _, _ = self._snapshots[name]
            dead = self._deleted.get(name, set())
            rows = [list(row) for i, row
                    in enumerate(self._appends.get(name, []))
                    if (snap_count + i) not in dead]
            shared_deletes = sorted(int(o) for o in dead
                                    if o < snap_count)
            if rows or shared_deletes:
                ops.append({"table": name, "appends": rows,
                            "deletes": shared_deletes})
        return ops

    def _publish(self, ops):
        """Publication phase: apply already-durable ops to the shared
        catalog, table by table, through the commit fault sites."""
        faults = self._db.faults
        faults.inject("commit.publish")
        for op in ops:
            faults.inject("commit.apply", table=op["table"])
            self._db._apply_ops([op])

    def commit(self):
        """Validate, log and apply the buffered writes; close the
        transaction.

        Three phases: validation (conflicts abort here, catalog
        untouched), write-ahead logging of the logical commit record,
        and publication to the catalog.  An injected crash in any
        phase re-raises after marking the transaction crashed; the
        catalog is then rebuilt by ``Database.recover()``.
        """
        self._check_open()
        faults = self._db.faults
        try:
            faults.inject("commit.validate")
            self._validate()
            # Logging phase: make the record durable before any table
            # is touched (the write-ahead rule).
            ops = self._distill_ops()
            if ops and self._db.wal is not None:
                self._db.wal.append({"kind": "commit", "ops": ops})
            self._publish(ops)
        except CrashError:
            self.closed = True
            self.outcome = "crashed"
            raise
        # Writers take the next commit sequence number; a read-only
        # commit is stamped as-of the current one.
        self.commit_lsn = self._db._bump_commit() if ops \
            else self._db.commit_seq
        self.closed = True
        self.outcome = "committed"

    def abort(self):
        self._check_open()
        self.closed = True
        self.outcome = "aborted"

    rollback = abort

    # -- context manager ------------------------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self.closed:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False
