"""Render SELECT ASTs back to canonical SQL text.

The write-ahead log stores a materialized view's defining query as SQL
text (WAL records are JSON — AST objects do not serialize), and the
sharding/replication layers occasionally need a textual form of a
statement they only hold as an AST.  The renderer covers exactly the
parser's SELECT subset; ``parse_sql(render_select(s))`` round-trips to
an equal AST (expressions re-parenthesize conservatively, which the
frozen-dataclass equality does not see).
"""

from repro.sql.ast import (
    BinOp, Column, FuncCall, IsNull, Literal, Select, Star, UnaryOp,
)


def render_expr(expr):
    """One expression subtree as SQL text (conservatively parenthesized)."""
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            return "'{0}'".format(value.replace("'", "''"))
        return repr(value)
    if isinstance(expr, Column):
        return str(expr)
    if isinstance(expr, Star):
        return "{0}.*".format(expr.table) if expr.table else "*"
    if isinstance(expr, BinOp):
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return "({0} {1} {2})".format(render_expr(expr.left), op,
                                      render_expr(expr.right))
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return "(NOT {0})".format(render_expr(expr.operand))
        return "(- {0})".format(render_expr(expr.operand))
    if isinstance(expr, IsNull):
        return "({0} IS NULL)".format(render_expr(expr.operand))
    if isinstance(expr, FuncCall):
        if len(expr.args) == 1 and isinstance(expr.args[0], Star) \
                and expr.args[0].table is None:
            inner = "*"
        else:
            inner = ", ".join(render_expr(a) for a in expr.args)
        if expr.distinct:
            inner = "DISTINCT " + inner
        return "{0}({1})".format(expr.name, inner)
    raise TypeError("cannot render expression {0!r}".format(expr))


def _render_table_ref(ref):
    return "{0} {1}".format(ref.name, ref.alias) if ref.alias else ref.name


def render_select(select):
    """A Select AST as one line of canonical SQL."""
    if not isinstance(select, Select):
        raise TypeError("render_select needs a Select, got "
                        "{0!r}".format(select))
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        text = render_expr(item.expr)
        if item.alias:
            text += " AS " + item.alias
        items.append(text)
    parts.append(", ".join(items))
    if select.table is not None:
        parts.append("FROM " + _render_table_ref(select.table))
        for join in select.joins:
            parts.append("JOIN {0} ON {1}".format(
                _render_table_ref(join.table),
                render_expr(join.condition)))
    if select.where is not None:
        parts.append("WHERE " + render_expr(select.where))
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(e)
                                             for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + render_expr(select.having))
    if select.order_by:
        orders = ["{0}{1}".format(render_expr(o.expr),
                                  "" if o.ascending else " DESC")
                  for o in select.order_by]
        parts.append("ORDER BY " + ", ".join(orders))
    if select.limit is not None:
        parts.append("LIMIT {0}".format(select.limit))
    return " ".join(parts)
