"""Simulated memory hierarchy: caches, TLB, and access-trace utilities.

This package is the hardware substrate of the reproduction.  The paper's
cache-conscious results (radix-cluster, partitioned hash-join,
radix-decluster, the generic cost model) are all statements about cache and
TLB miss counts and the latency they incur.  Pure Python cannot exhibit
those effects natively, so every cache-conscious algorithm in this
repository can emit its exact memory-access trace into a
:class:`MemoryHierarchy`, which simulates set-associative LRU caches and a
TLB and accounts hits, misses (split into sequential and random), and total
latency cycles.
"""

from repro.hardware.cache import Cache, CacheStats
from repro.hardware.tlb import TLB
from repro.hardware.hierarchy import AccessReport, MemoryHierarchy
from repro.hardware.profiles import (
    HardwareProfile,
    ITANIUM2,
    PENTIUM4_XEON,
    SCALED_DEFAULT,
    SCALED_SMP,
    TINY,
    TINY_SMP,
    profile_by_name,
)
from repro.hardware import trace

__all__ = [
    "Cache",
    "CacheStats",
    "TLB",
    "MemoryHierarchy",
    "AccessReport",
    "HardwareProfile",
    "TINY",
    "TINY_SMP",
    "SCALED_DEFAULT",
    "SCALED_SMP",
    "PENTIUM4_XEON",
    "ITANIUM2",
    "profile_by_name",
    "trace",
]
