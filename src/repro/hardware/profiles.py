"""Hardware profiles: parameter sets for the simulated hierarchy.

Two kinds of profiles exist:

* *Scaled* profiles (:data:`TINY`, :data:`SCALED_DEFAULT`) shrink the
  caches so the paper's effects (TLB thrashing, cache thrashing, crossover
  points) appear at data sizes that simulate in seconds.  All of the
  paper's claims are about ratios and crossovers relative to cache/TLB
  capacity, which scaling preserves.  Scaled caches are *fully
  associative*: power-of-two-aligned data (ubiquitous in these
  algorithms) would otherwise conflict-thrash individual sets, an
  artifact real systems dodge via page coloring and higher effective
  associativity, and one the Section 4.4 cost model (capacity misses
  only) deliberately ignores.

* *Historic* profiles (:data:`PENTIUM4_XEON`, :data:`ITANIUM2`)
  approximate the machines the paper mentions (Section 4.3).  They are
  used for analytical cost-model studies (e.g. the radix-decluster
  scalability limit), not for full trace simulation.
"""

from dataclasses import dataclass, field

from repro.hardware.cache import Cache
from repro.hardware.tlb import TLB
from repro.hardware.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class CacheSpec:
    name: str
    capacity: int
    line_size: int
    associativity: int
    miss_latency_random: int
    miss_latency_sequential: int

    def build(self):
        return Cache(self.name, self.capacity, self.line_size,
                     self.associativity, self.miss_latency_random,
                     self.miss_latency_sequential)


@dataclass(frozen=True)
class TLBSpec:
    entries: int
    page_size: int
    miss_latency: int

    def build(self):
        return TLB(self.entries, self.page_size, self.miss_latency)


@dataclass(frozen=True)
class HardwareProfile:
    """A named, immutable description of a memory hierarchy."""

    name: str
    caches: tuple
    tlb: TLBSpec = None
    description: str = ""

    def make_hierarchy(self):
        """Build a fresh, empty :class:`MemoryHierarchy`."""
        tlb = self.tlb.build() if self.tlb is not None else None
        return MemoryHierarchy([spec.build() for spec in self.caches],
                               tlb=tlb, name=self.name)

    def cache(self, name):
        for spec in self.caches:
            if spec.name == name:
                return spec
        raise KeyError(name)

    @property
    def last_level(self):
        return self.caches[-1]


TINY = HardwareProfile(
    name="tiny",
    description="Miniature hierarchy for fast unit tests.",
    caches=(
        CacheSpec("L1", capacity=512, line_size=32, associativity=16,
                  miss_latency_random=10, miss_latency_sequential=4),
        CacheSpec("L2", capacity=4096, line_size=64, associativity=64,
                  miss_latency_random=100, miss_latency_sequential=25),
    ),
    tlb=TLBSpec(entries=32, page_size=256, miss_latency=30),
)

SCALED_DEFAULT = HardwareProfile(
    name="scaled-default",
    description=("Default benchmark profile: a real hierarchy scaled down "
                 "~64x so thrashing effects appear within second-long "
                 "simulations."),
    caches=(
        CacheSpec("L1", capacity=8 * 1024, line_size=32, associativity=256,
                  miss_latency_random=10, miss_latency_sequential=6),
        CacheSpec("L2", capacity=64 * 1024, line_size=128,
                  associativity=512, miss_latency_random=150,
                  miss_latency_sequential=25),
    ),
    tlb=TLBSpec(entries=64, page_size=4096, miss_latency=60),
)

PENTIUM4_XEON = HardwareProfile(
    name="pentium4-xeon",
    description="Approximation of the Pentium4 Xeon cited in Section 4.3.",
    caches=(
        CacheSpec("L1", capacity=8 * 1024, line_size=64, associativity=4,
                  miss_latency_random=28, miss_latency_sequential=10),
        CacheSpec("L2", capacity=512 * 1024, line_size=64, associativity=8,
                  miss_latency_random=350, miss_latency_sequential=80),
    ),
    tlb=TLBSpec(entries=64, page_size=4096, miss_latency=30),
)

ITANIUM2 = HardwareProfile(
    name="itanium2",
    description="Approximation of the Itanium2 cited in Section 4.3.",
    caches=(
        CacheSpec("L1", capacity=16 * 1024, line_size=64, associativity=4,
                  miss_latency_random=5, miss_latency_sequential=2),
        CacheSpec("L2", capacity=256 * 1024, line_size=128, associativity=8,
                  miss_latency_random=14, miss_latency_sequential=7),
        CacheSpec("L3", capacity=6 * 1024 * 1024, line_size=128,
                  associativity=12, miss_latency_random=200,
                  miss_latency_sequential=50),
    ),
    tlb=TLBSpec(entries=128, page_size=16 * 1024, miss_latency=30),
)

SCALED_SMP = HardwareProfile(
    name="scaled-smp",
    description=("SMP profile for morsel-driven parallelism: per-worker "
                 "private L1/L2 plus a last level meant to be *shared* "
                 "between workers (see repro.parallel.context), scaled so "
                 "the contention knee appears within second-long runs."),
    caches=(
        CacheSpec("L1", capacity=8 * 1024, line_size=32, associativity=256,
                  miss_latency_random=10, miss_latency_sequential=6),
        CacheSpec("L2", capacity=64 * 1024, line_size=128,
                  associativity=512, miss_latency_random=40,
                  miss_latency_sequential=12),
        CacheSpec("LLC", capacity=2 * 1024 * 1024, line_size=128,
                  associativity=16384, miss_latency_random=220,
                  miss_latency_sequential=35),
    ),
    tlb=TLBSpec(entries=64, page_size=4096, miss_latency=60),
)

TINY_SMP = HardwareProfile(
    name="tiny-smp",
    description=("Miniature SMP profile for fast parallel unit tests: "
                 "private L1 plus a tiny shared last level."),
    caches=(
        CacheSpec("L1", capacity=512, line_size=32, associativity=16,
                  miss_latency_random=10, miss_latency_sequential=4),
        CacheSpec("LLC", capacity=4096, line_size=64, associativity=64,
                  miss_latency_random=100, miss_latency_sequential=25),
    ),
    tlb=TLBSpec(entries=32, page_size=256, miss_latency=30),
)

_PROFILES = {p.name: p for p in (TINY, SCALED_DEFAULT, PENTIUM4_XEON,
                                 ITANIUM2, SCALED_SMP, TINY_SMP)}


def profile_by_name(name):
    """Look up a built-in profile by its name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError("unknown hardware profile {0!r}; available: {1}".format(
            name, sorted(_PROFILES))) from None
