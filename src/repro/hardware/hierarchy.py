"""Multi-level memory hierarchy: caches + TLB + latency accounting.

Accesses are fed in program order as byte-address arrays.  Each access
probes the first-level cache; misses propagate to the next level, and so
on; the last level's misses are served by (infinite) main memory.  The TLB
is probed in parallel with the first level.  Total memory cost follows the
paper's Section 4.4 formula::

    T_Mem = sum over levels i of (Ms_i * ls_i + Mr_i * lr_i)  [+ TLB misses]

where sequential misses (``Ms``) are those whose line directly follows the
previously missed line, and random misses (``Mr``) are the rest.

Algorithms may also charge pure CPU work via :meth:`add_cpu_cycles`, which
lets experiments reproduce the paper's point that memory- and
CPU-optimization boost each other (Section 4.2).
"""

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cache import Cache, CacheStats
from repro.hardware.tlb import TLB, TLBStats
from repro.hardware.trace import collapse_runs


@dataclass
class AccessReport:
    """Immutable snapshot of hierarchy counters."""

    cache_stats: dict = field(default_factory=dict)
    tlb_stats: TLBStats = None
    memory_cycles: int = 0
    tlb_cycles: int = 0
    cpu_cycles: int = 0
    accesses: int = 0

    @property
    def total_cycles(self):
        return self.memory_cycles + self.tlb_cycles + self.cpu_cycles

    def misses(self, level):
        return self.cache_stats[level].misses

    def delta(self, earlier):
        """Counters accumulated since the ``earlier`` snapshot."""
        stats = {}
        for name, cur in self.cache_stats.items():
            prev = earlier.cache_stats[name]
            stats[name] = CacheStats(
                hits=cur.hits - prev.hits,
                sequential_misses=cur.sequential_misses - prev.sequential_misses,
                random_misses=cur.random_misses - prev.random_misses,
            )
        tlb = None
        if self.tlb_stats is not None:
            tlb = TLBStats(hits=self.tlb_stats.hits - earlier.tlb_stats.hits,
                           misses=self.tlb_stats.misses - earlier.tlb_stats.misses)
        return AccessReport(
            cache_stats=stats,
            tlb_stats=tlb,
            memory_cycles=self.memory_cycles - earlier.memory_cycles,
            tlb_cycles=self.tlb_cycles - earlier.tlb_cycles,
            cpu_cycles=self.cpu_cycles - earlier.cpu_cycles,
            accesses=self.accesses - earlier.accesses,
        )


class MemoryHierarchy:
    """An ordered stack of caches plus an optional TLB.

    Parameters
    ----------
    caches:
        Levels ordered from closest to the CPU (L1 first).  Line sizes must
        be non-decreasing from L1 outward.
    tlb:
        Optional :class:`repro.hardware.tlb.TLB`.
    """

    def __init__(self, caches, tlb=None, name="hierarchy"):
        if not caches:
            raise ValueError("at least one cache level is required")
        for inner, outer in zip(caches, caches[1:]):
            if outer.line_size < inner.line_size:
                raise ValueError("line sizes must not shrink outward")
        self.caches = list(caches)
        self.tlb = tlb
        self.name = name
        self.cpu_cycles = 0
        self.accesses = 0

    # -- construction helpers -------------------------------------------

    def reset(self):
        """Zero all counters and empty all caches and the TLB."""
        for cache in self.caches:
            cache.reset()
        if self.tlb is not None:
            self.tlb.reset()
        self.cpu_cycles = 0
        self.accesses = 0

    def level(self, name):
        for cache in self.caches:
            if cache.name == name:
                return cache
        raise KeyError(name)

    # -- the access path --------------------------------------------------

    def access(self, addresses):
        """Simulate in-order accesses to the given byte addresses."""
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.ndim != 1:
            raise ValueError("addresses must be a 1-D array")
        if len(addrs) == 0:
            return
        self.accesses += len(addrs)

        if self.tlb is not None:
            page_bits = self.tlb.page_size.bit_length() - 1
            pages, removed = collapse_runs(addrs >> page_bits)
            self.tlb.stats.hits += removed
            self.tlb.access_pages(pages)

        l1 = self.caches[0]
        line_bits = l1.line_size.bit_length() - 1
        lines, removed = collapse_runs(addrs >> line_bits)
        l1.stats.hits += removed
        miss_mask = l1.access_lines(lines)
        # Propagate misses outward, re-translating to each level's lines.
        missed_addrs = lines[miss_mask] << line_bits
        for cache in self.caches[1:]:
            if len(missed_addrs) == 0:
                break
            bits = cache.line_size.bit_length() - 1
            level_lines = missed_addrs >> bits
            miss_mask = cache.access_lines(level_lines)
            missed_addrs = level_lines[miss_mask] << bits

    def add_cpu_cycles(self, cycles):
        """Charge pure CPU work (hash computation, branch logic, calls)."""
        self.cpu_cycles += int(cycles)

    # -- reporting ---------------------------------------------------------

    @property
    def memory_cycles(self):
        return sum(cache.miss_cycles() for cache in self.caches)

    @property
    def tlb_cycles(self):
        return self.tlb.miss_cycles() if self.tlb is not None else 0

    @property
    def total_cycles(self):
        return self.memory_cycles + self.tlb_cycles + self.cpu_cycles

    def report(self):
        """Snapshot of all counters as an :class:`AccessReport`."""
        return AccessReport(
            cache_stats={c.name: CacheStats(c.stats.hits,
                                            c.stats.sequential_misses,
                                            c.stats.random_misses)
                         for c in self.caches},
            tlb_stats=(TLBStats(self.tlb.stats.hits, self.tlb.stats.misses)
                       if self.tlb is not None else None),
            memory_cycles=self.memory_cycles,
            tlb_cycles=self.tlb_cycles,
            cpu_cycles=self.cpu_cycles,
            accesses=self.accesses,
        )

    def __repr__(self):
        levels = ", ".join(c.name for c in self.caches)
        return "MemoryHierarchy({0}, levels=[{1}])".format(self.name, levels)
