"""Translation-lookaside-buffer simulation.

The TLB is modelled as a fully-associative LRU cache of page numbers.  It
matters for the radix-cluster experiments (Section 4.2): clustering into
more regions than there are TLB entries makes every tuple write a TLB
miss, which is one of the two effects the multi-pass Radix-Cluster avoids.
"""

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_ratio(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class TLB:
    """Fully-associative LRU TLB.

    Parameters
    ----------
    entries:
        Number of page translations held.
    page_size:
        Page size in bytes (power of two).
    miss_latency:
        Cycles charged per TLB miss (page-table walk).
    """

    def __init__(self, entries, page_size, miss_latency):
        if page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        self.entries = entries
        self.page_size = page_size
        self.miss_latency = miss_latency
        self.stats = TLBStats()
        self._lru = OrderedDict()

    def reset(self):
        self.stats = TLBStats()
        self._lru.clear()

    def access_pages(self, page_ids):
        """Access a sequence of page numbers in order; count hits/misses."""
        page_ids = np.asarray(page_ids)
        lru = self._lru
        entries = self.entries
        hits = 0
        misses = 0
        for page in page_ids.tolist():
            if page in lru:
                lru.move_to_end(page)
                hits += 1
            else:
                misses += 1
                lru[page] = None
                if len(lru) > entries:
                    lru.popitem(last=False)
        self.stats.hits += hits
        self.stats.misses += misses

    def miss_cycles(self):
        return self.stats.misses * self.miss_latency

    @property
    def reach(self):
        """Bytes addressable without a TLB miss."""
        return self.entries * self.page_size

    def __repr__(self):
        return "TLB(entries={0.entries}, page_size={0.page_size})".format(self)
