"""Set-associative LRU cache simulation.

The cache operates on *line identifiers* (byte address divided by the line
size); address-to-line translation happens in
:class:`repro.hardware.hierarchy.MemoryHierarchy`, which knows each level's
line size.

Misses are classified the way the paper's cost model scores them
(Section 4.4): a miss that continues one of the recently observed
sequential miss *streams* (next line after a stream's last miss) is
*sequential* — hardware stream prefetchers would serve it at bandwidth
cost — every other miss is *random* and pays the full latency.  Multiple
concurrent streams are tracked because algorithms like Radix-Cluster
deliberately write a bounded number of sequential cursors at once.
"""

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss counters of one cache level."""

    hits: int = 0
    sequential_misses: int = 0
    random_misses: int = 0

    @property
    def misses(self):
        return self.sequential_misses + self.random_misses

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_ratio(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merged(self, other):
        return CacheStats(
            hits=self.hits + other.hits,
            sequential_misses=self.sequential_misses + other.sequential_misses,
            random_misses=self.random_misses + other.random_misses,
        )


class Cache:
    """One level of a simulated set-associative LRU cache.

    Parameters
    ----------
    name:
        Human-readable level name ("L1", "L2", ...).
    capacity:
        Total capacity in bytes.
    line_size:
        Cache-line size in bytes (power of two).
    associativity:
        Number of ways per set.  ``associativity >= capacity // line_size``
        makes the cache fully associative.
    miss_latency_random / miss_latency_sequential:
        Cycles charged per random / sequential miss at this level (the
        latency of the *next* level, bandwidth-discounted for sequential
        misses).
    max_streams:
        Number of concurrent sequential miss streams the classifier
        tracks (models the stream-prefetcher capacity).
    """

    MAX_STREAMS = 16

    def __init__(self, name, capacity, line_size, associativity,
                 miss_latency_random, miss_latency_sequential=None,
                 max_streams=None):
        if capacity % line_size != 0:
            raise ValueError("capacity must be a multiple of line_size")
        n_lines = capacity // line_size
        if associativity > n_lines:
            associativity = n_lines
        if n_lines % associativity != 0:
            raise ValueError("line count must be a multiple of associativity")
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        self.name = name
        self.capacity = capacity
        self.line_size = line_size
        self.associativity = associativity
        self.n_sets = n_lines // associativity
        self.miss_latency_random = miss_latency_random
        if miss_latency_sequential is None:
            miss_latency_sequential = miss_latency_random
        self.miss_latency_sequential = miss_latency_sequential
        self.max_streams = max_streams or self.MAX_STREAMS
        self.stats = CacheStats()
        # One LRU (OrderedDict keyed by line id) per set; value is unused.
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        # LRU of the last missed line of each tracked stream.
        self._stream_tails = OrderedDict()

    @property
    def n_lines(self):
        return self.n_sets * self.associativity

    def reset(self):
        """Drop all cached lines and zero the counters."""
        self.stats = CacheStats()
        for lru in self._sets:
            lru.clear()
        self._stream_tails.clear()

    def access_lines(self, line_ids):
        """Access a sequence of line ids in order; return the miss mask.

        ``line_ids`` is a 1-D integer numpy array.  The returned boolean
        array marks which accesses missed (and therefore must be forwarded
        to the next level by the hierarchy).
        """
        line_ids = np.asarray(line_ids)
        misses = np.zeros(len(line_ids), dtype=bool)
        n_sets = self.n_sets
        assoc = self.associativity
        sets = self._sets
        streams = self._stream_tails
        max_streams = self.max_streams
        hits = 0
        seq_misses = 0
        rand_misses = 0
        for i, line in enumerate(line_ids.tolist()):
            lru = sets[line % n_sets]
            if line in lru:
                lru.move_to_end(line)
                hits += 1
            else:
                misses[i] = True
                prev = line - 1
                if prev in streams:
                    seq_misses += 1
                    del streams[prev]
                else:
                    rand_misses += 1
                streams[line] = None
                if len(streams) > max_streams:
                    streams.popitem(last=False)
                lru[line] = None
                if len(lru) > assoc:
                    lru.popitem(last=False)
        self.stats.hits += hits
        self.stats.sequential_misses += seq_misses
        self.stats.random_misses += rand_misses
        return misses

    def contains_line(self, line_id):
        """True if the line currently resides in the cache (no LRU touch)."""
        return line_id in self._sets[line_id % self.n_sets]

    def miss_cycles(self):
        """Latency cycles charged for this level's misses so far."""
        return (self.stats.sequential_misses * self.miss_latency_sequential
                + self.stats.random_misses * self.miss_latency_random)

    def __repr__(self):
        return ("Cache({0.name!r}, capacity={0.capacity}, line={0.line_size}, "
                "assoc={0.associativity})".format(self))
