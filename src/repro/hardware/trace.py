"""Builders for memory-access address traces.

Algorithms under test describe their memory behaviour as 1-D numpy arrays
of byte addresses, built from the primitives below, and feed them to
:meth:`repro.hardware.hierarchy.MemoryHierarchy.access`.  The primitives
mirror the basic access patterns of the paper's cost model (Section 4.4):
sequential traversal, random traversal, random access (gather), and
interleavings thereof.
"""

import numpy as np


def sequential(base, count, item_size):
    """Addresses of a sequential traversal: base, base+s, base+2s, ..."""
    return base + np.arange(count, dtype=np.int64) * item_size


def gather(base, indexes, item_size):
    """Addresses of an index-driven gather: base + indexes[i] * item_size."""
    return base + np.asarray(indexes, dtype=np.int64) * item_size


def random_uniform(rng, base, region_items, count, item_size):
    """``count`` uniformly random item accesses within a region."""
    idx = rng.integers(0, region_items, size=count)
    return gather(base, idx, item_size)


def random_permutation(rng, base, region_items, item_size):
    """Each item of the region accessed exactly once, in random order."""
    return gather(base, rng.permutation(region_items), item_size)


def interleave(*streams):
    """Round-robin merge of equally long address streams.

    ``interleave(reads, writes)`` models a loop that alternates one read
    with one write per iteration — the pattern of a clustering pass.
    """
    streams = [np.asarray(s, dtype=np.int64) for s in streams]
    length = len(streams[0])
    for s in streams[1:]:
        if len(s) != length:
            raise ValueError("interleave requires equally long streams")
    return np.column_stack(streams).reshape(-1)


def concat(*streams):
    """Concatenate address streams (one phase after another)."""
    return np.concatenate([np.asarray(s, dtype=np.int64) for s in streams])


def collapse_runs(values):
    """Collapse runs of identical adjacent values.

    Returns ``(collapsed, removed)`` where ``removed`` is the number of
    dropped duplicates.  Used by the hierarchy: repeated accesses to the
    line (or page) just touched are guaranteed hits and need not be
    simulated individually.
    """
    values = np.asarray(values)
    if len(values) == 0:
        return values, 0
    keep = np.empty(len(values), dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    collapsed = values[keep]
    return collapsed, len(values) - len(collapsed)
