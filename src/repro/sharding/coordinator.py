"""The sharding coordinator: hash-partitioned tables over shard nodes.

A :class:`ShardedDatabase` fronts ``n_shards`` shard nodes — each a
full single-node :class:`~repro.sql.database.Database` with its own
write-ahead log (or, with ``replicas > 0``, a
:class:`~repro.replication.ReplicationGroup`) — connected by simulated
request/response links (:mod:`repro.datacyclotron.link`) with fault
sites ``shard.ship`` and ``shard.ack``.

Tables declared ``PARTITION BY (col)`` hash-split their rows across
the shards (:mod:`repro.sharding.partition`); tables without a
partition key are *reference tables*, broadcast whole to every shard
so joins against them stay shard-local.  SELECTs run scatter-gather
(:mod:`repro.sharding.planner` / :mod:`repro.sharding.merge`); DML
routes by key, and multi-shard writes commit through the WAL-logged
two-phase protocol in :mod:`repro.sharding.twopc`.

With one shard every statement takes the ``single`` plan with the
original AST, so ``ShardedDatabase(n_shards=1)`` degrades to exactly
the single-node engine.
"""

import os
import random
from dataclasses import dataclass

from repro.datacyclotron.link import SimulatedLink
from repro.faults import NO_FAULTS
from repro.governance.breaker import CircuitBreaker
from repro.governance.context import CHECK_SCATTER
from repro.governance.errors import GovernanceError
from repro.mal.optimizer import DEFAULT_PIPELINE
from repro.observability.tracer import NO_TRACE
from repro.sharding.merge import merge_aggregates, merge_rows
from repro.sharding.partition import ShardMap
from repro.sharding.planner import (
    ShardSchema, _prune_value, plan_select,
)
from repro.sql.ast import (
    Column, CreateMaterializedView, CreateTable, Delete,
    DropMaterializedView, Explain, Insert, Select, SelectItem,
    SetPragma, TableRef, Update, statement_kind,
)
from repro.sql.database import Database, ResultSet
from repro.sql.parser import parse_sql
from repro.views.definition import classify
from repro.views.maintainer import merge_partials
from repro.views.rows import ViewError
from repro.wal import WriteAheadLog

SHIP_SITE = "shard.ship"
ACK_SITE = "shard.ack"


class ShardUnavailableError(RuntimeError):
    """A shard could not be reached within the link retry budget."""


class LegTimeout(Exception):
    """Internal: a scatter leg's link wait exceeded the leg timeout.

    Never escapes the coordinator — the leg is re-dispatched on the
    hedge path (replica or direct channel) and the breaker records the
    failure."""

    def __init__(self, shard_id, wait):
        self.shard_id = shard_id
        self.wait = wait
        super().__init__("shard {0} leg waited {1} ticks".format(
            shard_id, wait))


@dataclass
class ShardingStats:
    """Coordinator counters (observability satellite of E21)."""

    statements: int = 0
    single_shard: int = 0      # plans routed to exactly one shard
    scatter: int = 0           # decomposed multi-shard SELECTs
    gather: int = 0            # full-fragment fallbacks
    pruned: int = 0            # single-shard plans won by key pruning
    requests: int = 0          # coordinator -> shard round trips
    retries: int = 0           # link sends retried after a drop
    shipped_rows: int = 0      # result/fragment rows crossing a link
    shipped_bytes: int = 0     # estimated payload bytes on the links
    twopc_fast_path: int = 0   # commits touching <= 1 shard
    twopc_commits: int = 0     # full two-phase commits
    twopc_aborts: int = 0      # two-phase rounds aborted in phase 1
    view_reads: int = 0        # SELECTs answered from materialized views
    backoff_ticks: int = 0     # clock ticks slept between link retries
    stale_epoch_rejections: int = 0  # transactions fenced at a cutover
    reshard_pump_failures: int = 0   # dual-route pumps demoted
    # Governance (repro.governance): slow-node defense + cancellation.
    leg_timeouts: int = 0      # scatter legs abandoned past the timeout
    hedged_legs: int = 0       # legs re-dispatched on the hedge path
    breaker_skips: int = 0     # legs routed straight to the hedge
    cancels_sent: int = 0      # cancel messages broadcast mid-scatter
    governance_kills: int = 0  # statements killed by their context


def _payload_size(payload):
    """Byte estimate of one link message (its printed form)."""
    return len(repr(payload))


class ShardNode:
    """One shard: a Database, or a ReplicationGroup when replicated."""

    def __init__(self, shard_id, replicas=0, mode="sync",
                 faults=None, wal_path=None, pipeline=DEFAULT_PIPELINE):
        self.shard_id = shard_id
        # Online-resharding lifecycle: a joining node is receiving its
        # snapshot (no bucket routes to it yet), a retired node was
        # merged away, and epoch tracks the shard-map version the node
        # last acknowledged (bumped at every cutover that kept it).
        self.joining = False
        self.retired = False
        self.epoch = 0
        if replicas:
            from repro.replication import ReplicationGroup
            self.group = ReplicationGroup(
                n_replicas=replicas, mode=mode,
                db_kwargs={"pipeline": pipeline})
            self.db = None
        else:
            self.group = None
            self.db = Database(pipeline=pipeline,
                               wal=WriteAheadLog(path=wal_path),
                               faults=faults)

    def execute(self, statement, workers=None, context=None):
        if self.group is not None:
            return self.group.execute(statement, workers=workers,
                                      context=context)
        return self.db.execute(statement, workers=workers,
                               context=context)

    @property
    def database(self):
        """The shard's authoritative Database (the primary's, when
        replicated)."""
        if self.db is not None:
            return self.db
        return self.group.require_primary().db

    def __repr__(self):
        flavour = "replicated" if self.group is not None else "plain"
        return "ShardNode({0}, {1})".format(self.shard_id, flavour)


class ShardedDatabase:
    """Hash-partitioned database over ``n_shards`` shard nodes.

    Parameters
    ----------
    n_shards:
        Shard count; 1 degrades to single-node behaviour exactly.
    replicas / mode:
        Per-shard replication (each shard becomes a ReplicationGroup
        with that many replicas).  Replicated shards support DDL, DML
        and SELECT; explicit transactions and :meth:`recover` are
        single-Database features (``replicas=0``).
    faults:
        One :class:`~repro.faults.FaultInjector` shared by the shard
        links (``shard.ship`` / ``shard.ack``), every shard's commit
        path (``commit.*`` / ``wal.append``) and the coordinator's
        decision log.
    wal_dir:
        Directory for on-disk WALs (``shard<i>.wal`` plus the
        coordinator's 2PC ``decisions.wal``); in-memory when None.
    link_retry_limit:
        Sends attempted per message before the shard is declared
        unreachable (transient drops retry; a cut link exhausts this).
    """

    def __init__(self, n_shards=2, replicas=0, mode="sync", faults=None,
                 wal_dir=None, pipeline=DEFAULT_PIPELINE, tracer=None,
                 link_retry_limit=8, retry_seed=0, retry_backoff_cap=16,
                 leg_timeout=None, breaker_threshold=3,
                 breaker_cooldown=32, breaker_probe_jitter=8,
                 breaker_seed=0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if leg_timeout is not None and leg_timeout < 1:
            raise ValueError("leg_timeout must be at least 1 tick")
        self.n_shards = n_shards
        self.replicas = replicas
        self._mode = mode
        self.shard_map = ShardMap(n_shards)
        self.faults = faults if faults is not None else NO_FAULTS
        self.tracer = tracer if tracer is not None else NO_TRACE
        self.pipeline = pipeline
        self.schema = ShardSchema()
        # Materialized views (repro.views): the coordinator registry,
        # view name -> ViewDefinition.  Each shard maintains its own
        # copy of every view over its fragment; coordinator reads
        # scatter-gather the per-shard partial state.
        self.views = {}
        self.stats = ShardingStats()
        self.link_retry_limit = link_retry_limit
        self.retry_backoff_cap = retry_backoff_cap
        self._retry_rng = random.Random(retry_seed)
        # Slow-node defense (repro.governance): with a leg timeout set,
        # scatter legs that wait longer than ``leg_timeout`` ticks on a
        # gray link are abandoned and re-dispatched on the hedge path
        # (the shard's replica, or a direct channel bypassing the
        # link); one circuit breaker per shard stops paying a link that
        # keeps timing out.  None keeps the naive behaviour: every leg
        # waits out whatever latency the link injects.
        self.leg_timeout = leg_timeout
        self._breaker_opts = {"threshold": breaker_threshold,
                              "cooldown": breaker_cooldown,
                              "probe_jitter": breaker_probe_jitter}
        self._breaker_seed = breaker_seed
        self.breakers = {}        # shard id -> CircuitBreaker, lazy
        # Coordinator-level governance defaults (SET deadline /
        # SET memory_budget land here, not on the shards).
        self.default_deadline = None
        self.default_memory_budget = None
        self.clock = 0            # the link tick clock
        self._xid_counter = 0
        self._wal_dir = wal_dir
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
        self.decision_log = WriteAheadLog(
            path=self._wal_path("decisions.wal"), faults=self.faults)
        # Online resharding (repro.sharding.resharding): the durable
        # migration log and the at-most-one live migration.
        self.reshard_log = WriteAheadLog(
            path=self._wal_path("reshard.wal"), faults=self.faults)
        self.migration = None
        self._mid_counter = 0
        self.shards = []
        self.links = []
        for _ in range(n_shards):
            self._add_node(joining=False)
        self.n_shards = n_shards

    def _wal_path(self, name):
        return None if self._wal_dir is None \
            else os.path.join(self._wal_dir, name)

    def _add_node(self, joining=True):
        """Grow the cluster by one shard node (plus its link pair).
        A joining node serves no traffic until a migration's cutover
        assigns it buckets and clears the flag."""
        shard_id = len(self.shards)
        node = ShardNode(
            shard_id, replicas=self.replicas, mode=self._mode,
            faults=self.faults,
            wal_path=self._wal_path("shard{0}.wal".format(shard_id)),
            pipeline=self.pipeline)
        node.joining = joining
        self.shards.append(node)
        self.links.append(
            (SimulatedLink(SHIP_SITE, faults=self.faults,
                           name="coord->s{0}".format(shard_id)),
             SimulatedLink(ACK_SITE, faults=self.faults,
                           name="s{0}->coord".format(shard_id))))
        self.n_shards = len(self.shards)
        return node

    def broadcast_shards(self):
        """Shard ids that hold broadcast state: every node except the
        retired (merged away) and the still-joining (their reference
        rows arrive via the migration's copy/delta channel)."""
        return [i for i, node in enumerate(self.shards)
                if not node.retired and not node.joining]

    # -- the simulated network -------------------------------------------------

    def cut(self, shard_id):
        """Partition one shard off (both link directions)."""
        for link in self.links[shard_id]:
            link.cut()

    def heal(self, shard_id):
        for link in self.links[shard_id]:
            link.heal()

    def _send(self, link, message, size, timeout=None, shard_id=None):
        """Ship one message with bounded exponential backoff: retry
        ``link_retry_limit`` sends, sleeping ``backoff + jitter`` clock
        ticks before each retry, with the backoff doubling up to
        ``retry_backoff_cap``.  The jitter is drawn from the
        coordinator's seeded rng, so a retry storm is deterministic per
        seed (and desynchronized across messages, instead of every
        retry hammering the link on the same tick).

        The sender *waits out* the link's delivery tick — injected
        latency (a gray node) costs real clock ticks.  With ``timeout``
        set, a wait past that many ticks abandons the leg instead:
        the clock pays only the timeout and :class:`LegTimeout` is
        raised (the message stays in flight, queueing FIFO behind
        whatever else the slow link holds)."""
        backoff = 1
        for attempt in range(self.link_retry_limit):
            if attempt:
                pause = backoff + self._retry_rng.randrange(backoff)
                self.clock += pause
                self.stats.backoff_ticks += pause
                backoff = min(backoff * 2, self.retry_backoff_cap)
            self.clock += 1
            if link.send(message, self.clock, size=size):
                wait = max(link.last_deliver_at - self.clock, 1)
                if timeout is not None and wait > timeout:
                    self.clock += timeout
                    raise LegTimeout(shard_id, wait)
                self.clock += wait
                link.deliver(self.clock)
                self.stats.shipped_bytes += size
                return
            self.stats.retries += 1
            if self.tracer.enabled:
                self.tracer.add("link_retries", 1)
        raise ShardUnavailableError(
            "link {0!r} failed {1} sends".format(link.name,
                                                 self.link_retry_limit))

    def _rpc(self, shard_id, request, fn, timeout=None):
        """One coordinator<->shard round trip: ship the request, run
        the shard-side work, ship the response back.  Transient link
        faults retry (re-sending is idempotent — the shard-side work
        runs exactly once, after the request delivers); a cut link
        raises :class:`ShardUnavailableError`; with ``timeout`` set, a
        slow link raises :class:`LegTimeout` *before* the shard-side
        work runs (the hedge path re-runs the whole leg)."""
        req, resp = self.links[shard_id]
        self.stats.requests += 1
        self._send(req, request, _payload_size(request),
                   timeout=timeout, shard_id=shard_id)
        if self.tracer.enabled:
            with self.tracer.span("shard.exec", kind="sharding",
                                  shard=shard_id):
                result = fn()
        else:
            result = fn()
        reply_rows = len(result) if isinstance(result, ResultSet) else 0
        reply_size = _payload_size(result.rows()) \
            if isinstance(result, ResultSet) else _payload_size(result)
        self._send(resp, "ack", reply_size)
        self.stats.shipped_rows += reply_rows
        if self.tracer.enabled:
            self.tracer.add("shard_shipped_rows", reply_rows)
            self.tracer.add("shard_shipped_bytes", reply_size)
        return result

    # -- slow-node defense (repro.governance) -----------------------------------

    def _breaker(self, shard_id):
        """The shard link's circuit breaker (created on first use, with
        a per-shard seed so a fleet of breakers never probes in
        lockstep)."""
        breaker = self.breakers.get(shard_id)
        if breaker is None:
            breaker = CircuitBreaker(
                seed=self._breaker_seed * 1000 + shard_id,
                name="coord->s{0}".format(shard_id),
                **self._breaker_opts)
            self.breakers[shard_id] = breaker
        return breaker

    def _hedge_leg(self, shard_id, ast, workers=None, context=None):
        """Re-dispatch one scatter leg around its gray link: to the
        shard's replica group when replicated, else over a direct
        channel to the shard's database.  Costs a flat healthy-path
        round trip (2 ticks) instead of the gray link's swelling
        wait."""
        self.stats.hedged_legs += 1
        self.clock += 2
        node = self.shards[shard_id]
        if node.group is not None:
            return node.group.execute(ast, workers=workers,
                                      context=context)
        return node.db.execute(ast, workers=workers, context=context)

    def _run_leg(self, runner, shard_id, ast, context=None,
                 hedged=False, workers=None):
        """One scatter/single leg: checkpoint, breaker gate, run —
        hedging past a timed-out or broken link when enabled."""
        if context is not None and context.active:
            context.checkpoint(CHECK_SCATTER)
        if not hedged:
            return runner(shard_id, ast)
        breaker = self._breaker(shard_id)
        if not breaker.allow(self.clock):
            # Open breaker: stop paying the gray link at all.
            self.stats.breaker_skips += 1
            return self._hedge_leg(shard_id, ast, workers=workers,
                                   context=context)
        try:
            result = runner(shard_id, ast)
        except LegTimeout:
            self.stats.leg_timeouts += 1
            breaker.record_failure(self.clock)
            return self._hedge_leg(shard_id, ast, workers=workers,
                                   context=context)
        except ShardUnavailableError:
            breaker.record_failure(self.clock)
            raise
        breaker.record_success(self.clock)
        return result

    def _broadcast_cancel(self, shard_ids, context):
        """Best-effort cancel message to every leg not yet run when a
        governance kill fires mid-scatter: one unacknowledged send per
        remaining request link (no retries — the statement is already
        dead; a lost cancel just means that shard never starts the
        leg)."""
        reason = context.killed_by \
            if context is not None and context.killed_by is not None \
            else "cancelled"
        note = {"reason": reason}
        for shard_id in shard_ids:
            req = self.links[shard_id][0]
            self.clock += 1
            if req.send(("cancel", note), self.clock,
                        size=_payload_size(note)):
                self.stats.cancels_sent += 1
                req.deliver(self.clock + 1)

    # -- statement routing ------------------------------------------------------

    def _make_context(self):
        """An owned QueryContext from the coordinator's governance
        defaults, or None when none are set."""
        if self.default_deadline is None and \
                self.default_memory_budget is None:
            return None
        from repro.governance.context import QueryContext
        return QueryContext(deadline=self.default_deadline,
                            memory_budget=self.default_memory_budget)

    def execute(self, sql, workers=None, context=None):
        """Execute one statement across the shards (autocommit).

        ``context`` is an optional
        :class:`~repro.governance.QueryContext`: checked before every
        scatter leg (and, threaded into the shard databases, at every
        engine checkpoint inside each leg); a kill mid-scatter
        broadcasts a best-effort cancel to the legs not yet run."""
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        self.stats.statements += 1
        owned = None
        if context is None:
            context = owned = self._make_context()
        try:
            if not self.tracer.enabled:
                return self._execute_statement(statement, workers,
                                               context)
            label = sql if isinstance(sql, str) else repr(sql)
            with self.tracer.span("sharded.statement", kind="sharding",
                                  sql=label[:200]):
                return self._execute_statement(statement, workers,
                                               context)
        except GovernanceError:
            self.stats.governance_kills += 1
            raise
        finally:
            if owned is not None:
                owned.release()

    def _execute_statement(self, statement, workers, context=None):
        if isinstance(statement, Explain):
            return ResultSet(["plan"],
                             [self.explain(statement.statement)
                              .splitlines()])
        if isinstance(statement, SetPragma):
            if statement.name in ("deadline", "memory_budget"):
                # Governance limits govern whole statements, scatter
                # legs included — they live on the coordinator, not
                # the shards.
                limit = Database._pragma_limit(statement.name,
                                               statement.value)
                if statement.name == "deadline":
                    self.default_deadline = limit
                else:
                    self.default_memory_budget = limit
                return None
            for shard_id in self.broadcast_shards():
                self._rpc(shard_id, ("pragma",),
                          lambda s=shard_id: self.shards[s]
                          .execute(statement))
            return None
        if isinstance(statement, CreateTable):
            return self._create_table(statement)
        if isinstance(statement, CreateMaterializedView):
            return self._create_view(statement)
        if isinstance(statement, DropMaterializedView):
            return self._drop_view(statement)
        if isinstance(statement, (Insert, Delete, Update)):
            result = self._execute_dml(statement, context=context)
            self._after_write()
            return result
        if isinstance(statement, Select):
            return self._select(statement, workers=workers,
                                context=context)
        raise TypeError("unsupported statement {0}".format(
            statement_kind(statement)))

    def query(self, sql, workers=None):
        return self.execute(sql, workers=workers).rows()

    def begin(self, context=None):
        """A cross-shard transaction (two-phase commit when it writes
        more than one shard).  ``context`` governs the transaction's
        statements and its prepare phase (a kill before any prepare's
        point of no return aborts cleanly via presumed abort)."""
        if self.replicas:
            raise NotImplementedError(
                "transactions need plain shards (replicas=0)")
        from repro.sharding.twopc import ShardedTransaction
        return ShardedTransaction(self, context=context)

    def explain(self, statement):
        """The distributed plan of a SELECT, as text."""
        if isinstance(statement, str):
            statement = parse_sql(statement)
        if isinstance(statement, Explain):
            statement = statement.statement
        if not isinstance(statement, Select):
            raise TypeError("EXPLAIN supports only SELECT statements")
        plan = plan_select(self.schema, statement, self.shard_map)
        lines = ["{0} over shards {1}".format(plan.kind.upper(),
                                              plan.shards)]
        if plan.pruned:
            lines.append("  pruned by partition-key equality")
        if plan.kind == "scatter":
            lines.append("  mode: {0}".format(plan.mode))
            if plan.mode == "agg":
                lines.append("  partials: {0}".format(plan.partial_kinds))
            lines.append("  shard select: {0!r}".format(plan.shard_select))
        if plan.kind == "gather":
            lines.append("  ships: {0}".format(
                sorted({t.name for t in plan.tables})))
        return "\n".join(lines)

    # -- DDL ---------------------------------------------------------------------

    def _check_no_migration(self):
        if self.migration is not None and not self.migration.finished:
            from repro.sharding.resharding import MigrationInProgressError
            raise MigrationInProgressError(
                "DDL is rejected while migration {0} is {1}".format(
                    self.migration.mid, self.migration.phase))

    def _create_table(self, statement):
        self._check_no_migration()
        if statement.name in self.views:
            raise ValueError(
                "name {0!r} is already a materialized view".format(
                    statement.name))
        self.schema.register(statement.name, statement.columns,
                             partition_by=statement.partition_by)
        for shard_id in self.broadcast_shards():
            self._rpc(shard_id, ("create", statement.name),
                      lambda s=shard_id: self.shards[s].execute(statement))
        return None

    def _anchor_database(self):
        """The first serving shard's authoritative Database — the
        schema source views classify against (all shards agree on it)."""
        return self.shards[self.broadcast_shards()[0]].database

    def _view_complete_per_shard(self, definition):
        """True when every serving shard holds the *whole* view: all
        base tables are broadcast reference tables (or there is only
        one serving shard) — reads then route to any single shard."""
        if len(self.broadcast_shards()) == 1:
            return True
        return all(self.schema.get(name).partition_by is None
                   for name in definition.base_tables)

    def _create_view(self, statement):
        """CREATE MATERIALIZED VIEW across the cluster: classify once
        on the coordinator, then broadcast the DDL so each shard builds
        and maintains the view over its own fragment.

        Per-shard fragments compose back to the global view only for
        decomposable shapes: ``linear`` views concatenate, ``aggregate``
        views merge their per-group partials.  Join and eager views are
        accepted only when every base table is a broadcast reference
        table (each shard then holds the whole view).
        """
        self._check_no_migration()
        if statement.name in self.views or \
                statement.name in self.schema.tables:
            raise ViewError(
                "name {0!r} is already a table or view".format(
                    statement.name))
        anchor = self._anchor_database()
        definition = classify(anchor.catalog.tables, statement.name,
                              statement.select,
                              view_names=set(self.views))
        if definition.kind in ("join", "eager") and \
                not self._view_complete_per_shard(definition):
            raise NotImplementedError(
                "a {0} view over a partitioned base table does not "
                "decompose per shard; only linear and aggregate views "
                "are maintainable on a sharded cluster".format(
                    definition.kind))
        for shard_id in self.broadcast_shards():
            self._rpc(shard_id, ("create_view", statement.name),
                      lambda s=shard_id: self.shards[s].execute(statement))
        self.views[statement.name] = definition
        return None

    def _drop_view(self, statement):
        self._check_no_migration()
        if statement.name not in self.views:
            raise KeyError(
                "no materialized view {0!r}".format(statement.name))
        for shard_id in self.broadcast_shards():
            self._rpc(shard_id, ("drop_view", statement.name),
                      lambda s=shard_id: self.shards[s].execute(statement))
        del self.views[statement.name]
        return None

    # -- SELECT ------------------------------------------------------------------

    def _default_runner(self, workers, context=None, timeout=None):
        return lambda shard_id, ast: self._rpc(
            shard_id, ("select", repr(ast)),
            lambda: self.shards[shard_id].execute(ast, workers=workers,
                                                  context=context),
            timeout=timeout)

    def _select(self, select, workers=None, runner=None, context=None):
        # Hedging defends the coordinator's own scatter; a transaction
        # runner reads per-shard snapshots, which a replica or direct
        # re-run would not see, so it always waits its legs out.
        hedged = runner is None and self.leg_timeout is not None
        if runner is None:
            runner = self._default_runner(
                workers, context=context,
                timeout=self.leg_timeout if hedged else None)
        refs = [select.table] + [join.table for join in select.joins] \
            if select.table is not None else []
        if any(ref.name in self.views for ref in refs):
            return self._select_view(select, refs, workers=workers,
                                     context=context)
        plan = plan_select(self.schema, select, self.shard_map)
        if plan.kind == "single":
            self.stats.single_shard += 1
            if plan.pruned:
                self.stats.pruned += 1
            return self._run_leg(runner, plan.shards[0], select,
                                 context=context, hedged=hedged,
                                 workers=workers)
        if plan.kind == "scatter":
            self.stats.scatter += 1
            results = []
            try:
                for shard_id in plan.shards:
                    results.append(self._run_leg(
                        runner, shard_id, plan.shard_select,
                        context=context, hedged=hedged, workers=workers))
            except GovernanceError:
                self._broadcast_cancel(plan.shards[len(results):],
                                       context)
                raise
            if plan.mode == "rows":
                rows = merge_rows(plan, [r.rows() for r in results])
                names = results[0].names[:plan.n_items]
            else:
                rows = merge_aggregates(plan, [r.rows() for r in results])
                names = plan.item_names
            return _rows_result(names, rows)
        self.stats.gather += 1
        scratch = self._gather_database(plan, runner, context=context,
                                        hedged=hedged, workers=workers)
        return scratch.execute(select, context=context)

    def _select_view(self, select, refs, workers=None, context=None):
        """A SELECT over materialized views: rebuild each referenced
        view's global contents on a scratch database, then run the
        query there.

        Per-shard view state composes by kind: complete-per-shard views
        ship from one shard, ``linear`` fragments over a partitioned
        base concatenate across shards, ``aggregate`` views ship their
        per-group accumulator partials and merge (count/sum add,
        min/max take the best shard extremum, avg divides merged sums
        by merged counts).
        """
        missing = [ref.name for ref in refs if ref.name not in self.views]
        if missing:
            raise NotImplementedError(
                "a SELECT mixing materialized views with base tables "
                "is not supported on a sharded cluster (base tables: "
                "{0})".format(sorted(set(missing))))
        self.stats.view_reads += 1
        scratch = Database(pipeline=self.pipeline)
        for name in dict.fromkeys(ref.name for ref in refs):
            definition = self.views[name]
            scratch.catalog.create_table(name, definition.columns)
            target = scratch.catalog.get(name)
            rows = self._view_rows(name, definition)
            if rows:
                target.append_rows([list(r) for r in rows])
        return scratch.execute(select, workers=workers, context=context)

    def _view_rows(self, name, definition):
        """One view's global contents, gathered from the shards (rows
        in logical space — None for missing values)."""
        if self._view_complete_per_shard(definition):
            shard_id = self.broadcast_shards()[0]
            return self._rpc(
                shard_id, ("view", name),
                lambda: self.shards[shard_id].database.views
                .contents(name))
        if definition.kind == "linear":
            rows = []
            for shard_id in self.broadcast_shards():
                rows.extend(self._rpc(
                    shard_id, ("view", name),
                    lambda s=shard_id: self.shards[s].database.views
                    .contents(name)))
            return rows
        # Aggregate over a partitioned base: merge per-shard partials.
        dumps = [self._rpc(shard_id, ("view_partials", name),
                           lambda s=shard_id: self.shards[s].database
                           .views.partials(name))
                 for shard_id in self.broadcast_shards()]
        return merge_partials(definition, dumps)

    def _gather_database(self, plan, runner, context=None, hedged=False,
                         workers=None):
        """The gather fallback's scratch single-node database: every
        referenced fragment shipped to the coordinator."""
        scratch = Database(pipeline=self.pipeline)
        seen = set()
        for info in plan.tables:
            if info.name in seen:
                continue
            seen.add(info.name)
            scratch.catalog.create_table(info.name, info.columns)
            fetch = Select(items=[SelectItem(Column(c))
                                  for c in info.column_names],
                           table=TableRef(info.name))
            sources = plan.shards if info.partition_by \
                else [plan.shards[0]]
            target = scratch.catalog.get(info.name)
            for shard_id in sources:
                rows = self._run_leg(runner, shard_id, fetch,
                                     context=context, hedged=hedged,
                                     workers=workers).rows()
                if rows:
                    target.append_rows([list(r) for r in rows])
        return scratch

    # -- DML ---------------------------------------------------------------------

    def _execute_dml(self, statement, context=None):
        if statement.table in self.views:
            raise ValueError(
                "materialized view {0!r} is read-only; modify its base "
                "tables instead".format(statement.table))
        info = self.schema.get(statement.table)
        if isinstance(statement, Insert):
            return self._insert(statement, info, context=context)
        if info.partition_by is None:
            # Reference table: identical broadcast write everywhere.
            # No context inside the legs — a kill between two shards'
            # independent commits would leave the broadcast divergent;
            # only the 2PC path can cancel a multi-shard write safely.
            counts = [self._rpc(shard_id, ("dml", statement.table),
                                lambda s=shard_id: self.shards[s]
                                .execute(statement))
                      for shard_id in self.broadcast_shards()]
            return counts[0]
        bindings = [(statement.table, info)]
        pruned, value = _prune_value(statement.where, bindings)
        if pruned:
            shard_id = self.shard_map.shard_of(value)
            self.stats.single_shard += 1
            self.stats.pruned += 1
            return self._rpc(shard_id, ("dml", statement.table),
                             lambda: self.shards[shard_id]
                             .execute(statement, context=context))
        moves_key = isinstance(statement, Update) and \
            info.partition_by in {c for c, _ in statement.assignments}
        if self.replicas:
            if moves_key:
                raise NotImplementedError(
                    "partition-key UPDATE needs plain shards "
                    "(replicas=0)")
            # Same divergence risk as the broadcast above: replicated
            # multi-shard writes run without a context.
            return sum(self._rpc(shard_id, ("dml", statement.table),
                                 lambda s=shard_id: self.shards[s]
                                 .execute(statement))
                       for shard_id in self.broadcast_shards())
        # Un-pruned multi-shard write: atomic via two-phase commit.
        txn = self.begin(context=context)
        try:
            count = txn.execute(statement)
            txn.commit()
        except BaseException:
            if not txn.closed:
                txn.abort()
            raise
        return count

    def _insert(self, statement, info, context=None):
        if info.partition_by is None:
            counts = [self._rpc(shard_id, ("insert", statement.table),
                                lambda s=shard_id: self.shards[s]
                                .execute(statement, context=context))
                      for shard_id in self.broadcast_shards()]
            return counts[0]
        order = statement.columns or info.column_names
        if info.partition_by not in order:
            raise ValueError(
                "INSERT into {0!r} must provide the partition key "
                "{1!r}".format(statement.table, info.partition_by))
        key_pos = order.index(info.partition_by)
        split = self.shard_map.split_rows(statement.rows, key_pos)
        total = 0
        for shard_id in sorted(split):
            rows = split[shard_id]
            sub = Insert(statement.table, rows, columns=statement.columns)
            total += self._rpc(shard_id, ("insert", statement.table),
                               lambda s=shard_id, a=sub: self.shards[s]
                               .execute(a, context=context))
        return total

    # -- online resharding -------------------------------------------------------

    def split_shard(self, source, chunk_rows=64):
        """Begin an online split of ``source``: a fresh node joins and
        half the source's buckets migrate to it.  Returns the live
        :class:`~repro.sharding.resharding.Resharding`; drive it with
        ``step()``/``run()`` interleaved with normal traffic."""
        from repro.sharding import resharding
        return resharding.start_split(self, source, chunk_rows=chunk_rows)

    def merge_shards(self, source, target, chunk_rows=64):
        """Begin an online merge: every bucket of ``source`` migrates
        to ``target`` and the source retires at cutover."""
        from repro.sharding import resharding
        return resharding.start_merge(self, source, target,
                                      chunk_rows=chunk_rows)

    def move_buckets(self, source, target, buckets, chunk_rows=64):
        """Begin an online move of an explicit bucket set between two
        established shards (rebalancing without membership change)."""
        from repro.sharding import resharding
        return resharding.start_move(self, source, target, buckets,
                                     chunk_rows=chunk_rows)

    def _after_write(self):
        """Dual-routing hook, called after every committed write: while
        a migration is in its ``dual`` phase the write synchronously
        pumps the source-WAL tail to the target."""
        migration = self.migration
        if migration is not None and not migration.finished:
            migration.on_write()

    # -- two-phase-commit bookkeeping -------------------------------------------

    def next_xid(self):
        self._xid_counter += 1
        return "x{0:06d}".format(self._xid_counter)

    def committed_xids(self):
        """Xids the durable decision log marked committed — the ground
        truth for resolving in-doubt participants after a crash."""
        return {record["xid"] for record in self.decision_log.recover()
                if record.get("kind") == "decision"
                and record.get("outcome") == "commit"}

    def recover(self):
        """Crash-restart the whole cluster: replay the resharding log
        (rebuilding the shard-map evolution, node roles and any
        in-flight migration), replay each shard's WAL, settle in-doubt
        2PC participants from the coordinator's decision log (presumed
        abort for undecided xids), heal the links, rebuild the routing
        schema, and resume — or, past its decision record, finish — an
        interrupted migration.  Returns the total records replayed."""
        if self.replicas:
            raise NotImplementedError(
                "replicated shards recover through their groups")
        from repro.sharding import resharding
        pending = resharding.replay_log(self)
        committed = self.committed_xids()
        replayed = 0
        for shard_id, node in enumerate(self.shards):
            replayed += node.db.recover()
            node.db.resolve_in_doubt(committed)
            self.heal(shard_id)
        self.schema = ShardSchema()
        anchor = self.shards[self.broadcast_shards()[0]].db
        for name, table in sorted(anchor.catalog.tables.items()):
            if anchor.views.is_view(name):
                continue  # view backing tables are not routable tables
            self.schema.register(
                name,
                [(c, table.atoms[c].name) for c in table.column_names],
                partition_by=table.partition_by)
        # Each shard's WAL replay reinstalled its views; the
        # coordinator registry rebuilds from the anchor's definitions.
        self.views = {name: anchor.views.definition(name)
                      for name in anchor.views.names()}
        resharding.resume(self, pending)
        for node in self.shards:
            if not node.retired:
                node.epoch = self.shard_map.epoch
        return replayed

    def __repr__(self):
        return "ShardedDatabase({0} shards, {1} tables)".format(
            self.n_shards, len(self.schema.tables))


def _rows_result(names, rows):
    """Row tuples -> a columnar ResultSet."""
    columns = [list(col) for col in zip(*rows)] if rows \
        else [[] for _ in names]
    return ResultSet(names, columns)
