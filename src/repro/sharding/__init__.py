"""Hash-partitioned sharding with scatter-gather distributed execution.

``CREATE TABLE t (...) PARTITION BY (k)`` declares a hash-partitioning
key; a :class:`ShardedDatabase` splits such tables row-wise across N
shard nodes (each a full single-node engine behind a simulated link)
and plans every SELECT as scatter-gather with partition pruning and
distributed aggregate decomposition.  Multi-shard writes commit via a
WAL-logged two-phase protocol.  See :mod:`repro.sharding.coordinator`.
"""

from repro.sharding.coordinator import (
    ACK_SITE, SHIP_SITE, ShardNode, ShardedDatabase, ShardingStats,
    ShardUnavailableError,
)
from repro.sharding.merge import MergeError
from repro.sharding.partition import ShardMap, partition_hash
from repro.sharding.planner import (
    ScatterPlan, ShardPlanError, ShardSchema, TableInfo, plan_select,
)
from repro.sharding.twopc import ShardedTransaction

__all__ = [
    "ACK_SITE",
    "SHIP_SITE",
    "MergeError",
    "ScatterPlan",
    "ShardMap",
    "ShardNode",
    "ShardPlanError",
    "ShardSchema",
    "ShardedDatabase",
    "ShardedTransaction",
    "ShardingStats",
    "ShardUnavailableError",
    "TableInfo",
    "partition_hash",
    "plan_select",
]
