"""Hash-partitioned sharding with scatter-gather distributed execution.

``CREATE TABLE t (...) PARTITION BY (k)`` declares a hash-partitioning
key; a :class:`ShardedDatabase` splits such tables row-wise across N
shard nodes (each a full single-node engine behind a simulated link)
and plans every SELECT as scatter-gather with partition pruning and
distributed aggregate decomposition.  Multi-shard writes commit via a
WAL-logged two-phase protocol.  See :mod:`repro.sharding.coordinator`.

The shard map is *elastic*: :meth:`ShardedDatabase.split_shard` /
:meth:`merge_shards` / :meth:`move_buckets` run online migrations —
snapshot copy, WAL-tailed delta catch-up, dual-routed writes, and a
2PC-fenced epoch cutover — under live traffic
(:mod:`repro.sharding.resharding`).
"""

from repro.sharding.coordinator import (
    ACK_SITE, SHIP_SITE, ShardNode, ShardedDatabase, ShardingStats,
    ShardUnavailableError,
)
from repro.sharding.merge import MergeError
from repro.sharding.partition import ShardMap, partition_hash
from repro.sharding.planner import (
    ScatterPlan, ShardPlanError, ShardSchema, TableInfo, plan_select,
)
from repro.sharding.resharding import (
    RESHARD_ACK, RESHARD_SHIP, MigrationInProgressError, Resharding,
    ReshardingError, ReshardingStats, StaleEpochError,
)
from repro.sharding.twopc import ShardedTransaction

__all__ = [
    "ACK_SITE",
    "SHIP_SITE",
    "RESHARD_ACK",
    "RESHARD_SHIP",
    "MergeError",
    "MigrationInProgressError",
    "Resharding",
    "ReshardingError",
    "ReshardingStats",
    "StaleEpochError",
    "ScatterPlan",
    "ShardMap",
    "ShardNode",
    "ShardPlanError",
    "ShardSchema",
    "ShardedDatabase",
    "ShardedTransaction",
    "ShardingStats",
    "ShardUnavailableError",
    "TableInfo",
    "partition_hash",
    "plan_select",
]
