"""Stable hash partitioning: value -> shard, independent of process.

The partition function must be *stable* (the same value always lands
on the same shard, across runs and Python versions — ``hash()`` is
salted, so it is useless here) and *equality-compatible* with the SQL
engine: values the engine compares equal must co-hash, or a repartition
would split a join group across shards.  The engine compares numbers
numerically (``2 = 2.0`` is true, and ``True`` is just ``1`` in
``bit``), so booleans and integral floats normalize to ``int`` before
hashing; non-integral floats and strings hash their canonical byte
form.  Integers finish through splitmix64 — a full-avalanche mixer —
so consecutive keys (the common case: dense surrogate keys) spread
evenly instead of striping ``oid % n``-style.
"""

import struct
import zlib

_MASK = (1 << 64) - 1


def _splitmix64(x):
    """The splitmix64 finalizer: a cheap full-avalanche 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def partition_hash(value):
    """Stable 64-bit hash of one partition-key value.

    ``None`` (SQL NULL) hashes to a fixed bucket — every NULL key lands
    on the same shard, like any other equal pair of keys.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if value != value:  # NaN is the dbl nil sentinel's spelling
            return 0
        if value.is_integer():
            value = int(value)
        else:
            raw, = struct.unpack("<Q", struct.pack("<d", value))
            return _splitmix64(raw)
    if isinstance(value, int):
        return _splitmix64(value & _MASK)
    if isinstance(value, str):
        return _splitmix64(zlib.crc32(value.encode("utf-8")) & _MASK)
    raise TypeError(
        "unhashable partition key value {0!r}".format(value))


class ShardMap:
    """Value -> shard assignment over ``n_shards`` hash buckets."""

    def __init__(self, n_shards):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards

    def shard_of(self, value):
        return partition_hash(value) % self.n_shards

    def split_rows(self, rows, key_index):
        """Partition rows by their key column: shard id -> row list."""
        split = {}
        for row in rows:
            split.setdefault(self.shard_of(row[key_index]), []).append(row)
        return split

    def __repr__(self):
        return "ShardMap({0})".format(self.n_shards)
