"""Stable hash partitioning: value -> shard, independent of process.

The partition function must be *stable* (the same value always lands
on the same shard, across runs and Python versions — ``hash()`` is
salted, so it is useless here) and *equality-compatible* with the SQL
engine: values the engine compares equal must co-hash, or a repartition
would split a join group across shards.  The engine compares numbers
numerically (``2 = 2.0`` is true, and ``True`` is just ``1`` in
``bit``), so booleans and integral floats normalize to ``int`` before
hashing; non-integral floats and strings hash their canonical byte
form.  Integers finish through splitmix64 — a full-avalanche mixer —
so consecutive keys (the common case: dense surrogate keys) spread
evenly instead of striping ``oid % n``-style.
"""

import struct
import zlib

_MASK = (1 << 64) - 1


def _splitmix64(x):
    """The splitmix64 finalizer: a cheap full-avalanche 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def partition_hash(value):
    """Stable 64-bit hash of one partition-key value.

    ``None`` (SQL NULL) hashes to a fixed bucket — every NULL key lands
    on the same shard, like any other equal pair of keys.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if value != value:  # NaN is the dbl nil sentinel's spelling
            return 0
        if value.is_integer():
            value = int(value)
        else:
            raw, = struct.unpack("<Q", struct.pack("<d", value))
            return _splitmix64(raw)
    if isinstance(value, int):
        return _splitmix64(value & _MASK)
    if isinstance(value, str):
        return _splitmix64(zlib.crc32(value.encode("utf-8")) & _MASK)
    raise TypeError(
        "unhashable partition key value {0!r}".format(value))


class ShardMap:
    """Versioned value -> shard assignment over hash buckets.

    A value hashes into one of ``n_buckets`` buckets (``n_buckets``
    defaults to ``n_shards``), and ``assignment[bucket]`` names the
    owning shard.  The default assignment (``bucket % n_shards``)
    reproduces the classic ``partition_hash(v) % n_shards`` placement
    exactly — including after :meth:`refined` doubles the bucket count,
    because ``(h % 2n) % n == h % n``.

    ``epoch`` versions the map for online resharding: a migration
    installs a new assignment with ``epoch + 1`` at cutover, and
    requests stamped with an older epoch are fenced
    (:class:`~repro.sharding.resharding.StaleEpochError`) — the same
    deposed-owner discipline the replication layer applies to old
    primaries.  Maps are immutable; evolution goes through
    :meth:`refined` (finer buckets, placement-preserving) and
    :meth:`reassigned` (move buckets to a new owner, bump the epoch).
    """

    def __init__(self, n_shards, n_buckets=None, assignment=None,
                 epoch=0):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.n_buckets = n_shards if n_buckets is None else n_buckets
        if self.n_buckets < 1:
            raise ValueError("need at least one bucket")
        if assignment is None:
            assignment = [b % n_shards for b in range(self.n_buckets)]
        self.assignment = list(assignment)
        if len(self.assignment) != self.n_buckets:
            raise ValueError(
                "assignment covers {0} buckets, map has {1}".format(
                    len(self.assignment), self.n_buckets))
        self.epoch = epoch

    @property
    def active(self):
        """Sorted shard ids that own at least one bucket."""
        return sorted(set(self.assignment))

    def bucket_of(self, value):
        return partition_hash(value) % self.n_buckets

    def shard_of(self, value):
        return self.assignment[self.bucket_of(value)]

    def buckets_of(self, shard_id):
        """Buckets owned by one shard, ascending."""
        return [b for b, s in enumerate(self.assignment) if s == shard_id]

    def refined(self, factor=2):
        """The same placement over ``factor``x more buckets.

        New bucket ``b`` inherits old bucket ``b % n_buckets``'s owner
        (extendible-hashing doubling), so no value moves — refinement
        only makes the moving set of a later :meth:`reassigned`
        expressible at a finer grain.
        """
        if factor < 2:
            raise ValueError("refinement factor must be >= 2")
        return ShardMap(self.n_shards, self.n_buckets * factor,
                        self.assignment * factor, epoch=self.epoch)

    def reassigned(self, buckets, target):
        """A new map (epoch + 1) with ``buckets`` moved to ``target``."""
        assignment = list(self.assignment)
        for bucket in buckets:
            assignment[bucket] = target
        return ShardMap(max(self.n_shards, target + 1), self.n_buckets,
                        assignment, epoch=self.epoch + 1)

    def to_record(self):
        """JSON-able form (for the durable resharding log)."""
        return {"n_shards": self.n_shards, "n_buckets": self.n_buckets,
                "assignment": list(self.assignment), "epoch": self.epoch}

    @classmethod
    def from_record(cls, record):
        return cls(record["n_shards"], record["n_buckets"],
                   record["assignment"], record["epoch"])

    def split_rows(self, rows, key_index):
        """Partition rows by their key column: shard id -> row list."""
        split = {}
        for row in rows:
            split.setdefault(self.shard_of(row[key_index]), []).append(row)
        return split

    def __repr__(self):
        return "ShardMap({0} shards, {1} buckets, epoch {2})".format(
            self.n_shards, self.n_buckets, self.epoch)
