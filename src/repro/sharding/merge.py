"""Coordinator-side merge of scatter results.

The shard fragments arrive as decoded row tuples; everything here is
plain Python over small merged states (group keys, partial aggregates),
mirroring the single-node engine's semantics — None is the decoded nil,
aggregates of nothing are None (COUNT: 0), sorts put None first, HAVING
treats None as false.  Floating-point recombination is exact for the
dyadic-rational data the test generators emit; arbitrary doubles may
see the usual re-association jitter, which the comparison helpers
normalize away.
"""

from repro.sql.ast import BinOp, IsNull, Literal, UnaryOp
from repro.sharding.planner import AvgOf, GroupCol, Partial


class MergeError(Exception):
    """A merge recipe met a value shape it cannot combine."""


# -- partial combination ------------------------------------------------------

def combine_partials(kind, values):
    """Fold one partial aggregate's per-shard values into the total."""
    if kind == "count":
        return sum(v for v in values if v is not None)
    present = [v for v in values if v is not None]
    if not present:
        return None
    if kind == "sum":
        return sum(present)
    if kind == "min":
        return min(present)
    if kind == "max":
        return max(present)
    raise MergeError("unknown partial kind {0!r}".format(kind))


# -- merge-expression evaluation ----------------------------------------------

def eval_merge(expr, group, combined):
    """Evaluate a merge tree for one merged group.

    ``group`` is the group-key tuple, ``combined`` the recombined
    partial values.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, GroupCol):
        return group[expr.index]
    if isinstance(expr, Partial):
        return combined[expr.index]
    if isinstance(expr, AvgOf):
        count = combined[expr.count_index]
        if not count:
            return None
        return combined[expr.sum_index] / count
    if isinstance(expr, BinOp):
        if expr.op == "and":
            return _truthy(eval_merge(expr.left, group, combined)) and \
                _truthy(eval_merge(expr.right, group, combined))
        if expr.op == "or":
            return _truthy(eval_merge(expr.left, group, combined)) or \
                _truthy(eval_merge(expr.right, group, combined))
        return _binop(expr.op, eval_merge(expr.left, group, combined),
                      eval_merge(expr.right, group, combined))
    if isinstance(expr, UnaryOp):
        value = eval_merge(expr.operand, group, combined)
        if value is None:
            return None
        return -value if expr.op == "-" else not value
    if isinstance(expr, IsNull):
        return eval_merge(expr.operand, group, combined) is None
    raise MergeError("unsupported merge expression {0!r}".format(expr))


def _truthy(value):
    return bool(value) if value is not None else False


def _binop(op, left, right):
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise MergeError("unknown operator {0!r}".format(op))


def sort_key(value):
    """Total order with None first (the engine's nil sort position)."""
    return (value is not None, value)


def _order(rows, keyed, order):
    """Stable multi-key sort: ``keyed(row, i)`` yields sort values."""
    out = list(rows)
    for i, ascending in reversed(list(enumerate(order))):
        out.sort(key=lambda row: sort_key(keyed(row, i)),
                 reverse=not ascending)
    return out


def _distinct(rows):
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


# -- the two scatter merges ----------------------------------------------------

def merge_rows(plan, shard_rows):
    """Merge a 'rows' scatter: concatenate, re-sort on the (possibly
    hidden) order-key columns, DISTINCT/LIMIT, strip hidden columns."""
    rows = [row for rows in shard_rows for row in rows]
    if plan.distinct:
        rows = _distinct(rows)
    if plan.order_columns:
        rows = _order(rows,
                      lambda row, i: row[plan.order_columns[i][0]],
                      [asc for _, asc in plan.order_columns])
    if plan.limit is not None:
        rows = rows[:plan.limit]
    if any(pos >= plan.n_items for pos, _ in plan.order_columns):
        rows = [row[:plan.n_items] for row in rows]
    return rows


def merge_aggregates(plan, shard_rows):
    """Merge an 'agg' scatter: recombine partials group by group, then
    apply the coordinator-held HAVING / ORDER BY / DISTINCT / LIMIT."""
    n_group = plan.n_group
    groups = {}      # group key tuple -> [per-partial value lists]
    order = []       # first-arrival group order (deterministic)
    for rows in shard_rows:
        for row in rows:
            key = tuple(row[:n_group])
            state = groups.get(key)
            if state is None:
                state = [[] for _ in plan.partial_kinds]
                groups[key] = state
                order.append(key)
            for i, value in enumerate(row[n_group:]):
                state[i].append(value)
    if not plan.select.group_by and not order:
        # Scalar aggregate over zero shards' rows still yields one row.
        order.append(())
        groups[()] = [[] for _ in plan.partial_kinds]
    out = []
    for key in order:
        combined = [combine_partials(kind, values)
                    for kind, values in zip(plan.partial_kinds,
                                            groups[key])]
        if plan.having_expr is not None and \
                not _truthy(eval_merge(plan.having_expr, key, combined)):
            continue
        row = tuple(eval_merge(e, key, combined)
                    for e in plan.item_exprs)
        out.append((row, key, combined))
    rows = [row for row, _, _ in out]
    if plan.order_exprs:
        decorated = _order(out,
                           lambda entry, i: eval_merge(
                               plan.order_exprs[i][0], entry[1], entry[2]),
                           [asc for _, asc in plan.order_exprs])
        rows = [row for row, _, _ in decorated]
    if plan.distinct:
        rows = _distinct(rows)
    if plan.limit is not None:
        rows = rows[:plan.limit]
    return rows
