"""Scatter-gather planning for hash-partitioned SELECTs.

The coordinator never executes relational operators itself; it rewrites
the SELECT into per-shard SELECTs (each shard runs the full single-node
engine on its fragment) plus a merge recipe.  Three plan kinds:

``single``
    The query provably touches one shard — the table set is all
    reference (unpartitioned, broadcast) tables, only one shard exists,
    or a ``key = literal`` conjunct prunes the hash map to one bucket.
    The *original* AST ships unchanged, so a one-shard database is
    bit-identical to the single-node engine.

``scatter``
    Every shard runs a rewritten SELECT; the coordinator merges.
    Plain projections concatenate (with hidden order-key columns so
    ORDER BY can be re-established after the nondeterministic
    interleave); aggregates are decomposed into per-shard partials —
    COUNT/SUM/MIN/MAX ship as-is, AVG ships as SUM+COUNT — recombined
    group-by-group at the coordinator, where HAVING / ORDER BY / LIMIT
    / DISTINCT then apply.

``gather``
    The undecomposable remainder (DISTINCT aggregates, non-co-
    partitioned joins, expressions the decomposer cannot split): ship
    every referenced fragment to a scratch single-node database and run
    the original AST there.  Always correct, never fast — the measured
    price of a bad partitioning key (experiment E21).
"""

from dataclasses import dataclass, field

from repro.sql.ast import (
    BinOp, Column, FuncCall, IsNull, Literal, Select, SelectItem,
    UnaryOp, contains_aggregate,
)
from repro.sql.compiler import _default_name


class ShardPlanError(Exception):
    """The statement cannot be planned against this shard schema."""


class Undecomposable(Exception):
    """An aggregate shape with no partial/combine split (internal)."""


@dataclass
class TableInfo:
    """Coordinator-side table metadata (the routing catalog)."""

    name: str
    columns: list              # [(column name, type name)]
    partition_by: str = None   # None: reference table, broadcast

    @property
    def column_names(self):
        return [c for c, _ in self.columns]

    @property
    def key_index(self):
        return self.column_names.index(self.partition_by)


class ShardSchema:
    """The coordinator's registry of table layouts."""

    def __init__(self):
        self.tables = {}

    def register(self, name, columns, partition_by=None):
        if name in self.tables:
            raise ShardPlanError("table {0!r} already exists".format(name))
        self.tables[name] = TableInfo(name, [tuple(c) for c in columns],
                                      partition_by)
        return self.tables[name]

    def get(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise ShardPlanError("unknown table {0!r}".format(name)) \
                from None

    def __contains__(self, name):
        return name in self.tables


# -- merge-expression leaves --------------------------------------------------
#
# Merge recipes reuse the SQL AST's operator nodes (BinOp/UnaryOp/
# IsNull/Literal) with three extra leaf kinds below; repro.sharding.merge
# evaluates them per merged group.

@dataclass(frozen=True)
class GroupCol:
    """A group-key column of the per-shard result (position ``index``)."""

    index: int


@dataclass(frozen=True)
class Partial:
    """A combined partial-aggregate value (position ``index``)."""

    index: int


@dataclass(frozen=True)
class AvgOf:
    """AVG recombined from a SUM partial and a COUNT partial."""

    sum_index: int
    count_index: int


@dataclass
class ScatterPlan:
    """One planned distributed SELECT (see the module docstring)."""

    kind: str                  # 'single' | 'scatter' | 'gather'
    shards: list               # target shard ids, ascending
    select: object             # the original AST
    tables: list = field(default_factory=list)        # referenced TableInfo
    pruned: bool = False       # a key-equality conjunct cut the fan-out
    shard_select: object = None
    mode: str = None           # scatter flavour: 'rows' | 'agg'
    # rows mode: shard result = items ++ hidden order-key columns
    n_items: int = 0
    order_columns: list = field(default_factory=list)  # [(index, asc)]
    # agg mode: shard result = group keys ++ partials
    n_group: int = 0
    partial_kinds: list = field(default_factory=list)  # 'count'|'sum'|...
    item_names: list = field(default_factory=list)
    item_exprs: list = field(default_factory=list)     # merge trees
    having_expr: object = None
    order_exprs: list = field(default_factory=list)    # [(tree, asc)]
    distinct: bool = False
    limit: int = None


# -- predicate analysis --------------------------------------------------------

def _conjuncts(expr):
    """Top-level AND conjuncts of a predicate (the unit of pruning)."""
    if isinstance(expr, BinOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr] if expr is not None else []


def _resolve(column, bindings):
    """(binding, TableInfo) a Column refers to, or None if ambiguous."""
    if column.table is not None:
        for binding, info in bindings:
            if binding == column.table:
                return (binding, info)
        return None
    owners = [(b, i) for b, i in bindings
              if column.name in i.column_names]
    return owners[0] if len(owners) == 1 else None


def _is_partition_key(column, bindings):
    resolved = _resolve(column, bindings)
    if resolved is None:
        return False
    _, info = resolved
    return info.partition_by == column.name


def _prune_value(where, bindings):
    """The literal a ``partition_key = literal`` conjunct pins, if any."""
    for conj in _conjuncts(where):
        if not (isinstance(conj, BinOp) and conj.op == "="):
            continue
        for col, lit in ((conj.left, conj.right), (conj.right, conj.left)):
            if isinstance(col, Column) and isinstance(lit, Literal) \
                    and _is_partition_key(col, bindings):
                return (True, lit.value)
    return (False, None)


def _co_partitioned(select, bindings):
    """True when every partitioned table is transitively joined to the
    others by an equality of their partition keys — the condition for
    shard-local joins."""
    partitioned = [b for b, info in bindings if info.partition_by]
    if len(partitioned) <= 1:
        return True
    linked = {partitioned[0]}
    pairs = []
    for join in select.joins:
        for conj in _conjuncts(join.condition):
            if not (isinstance(conj, BinOp) and conj.op == "="):
                continue
            left, right = conj.left, conj.right
            if isinstance(left, Column) and isinstance(right, Column) \
                    and _is_partition_key(left, bindings) \
                    and _is_partition_key(right, bindings):
                lb = _resolve(left, bindings)[0]
                rb = _resolve(right, bindings)[0]
                if lb != rb:
                    pairs.append((lb, rb))
    changed = True
    while changed:
        changed = False
        for a, b in pairs:
            if (a in linked) != (b in linked):
                linked.update((a, b))
                changed = True
    return set(partitioned) <= linked


# -- aggregate decomposition ---------------------------------------------------

_PARTIAL_AGGS = {"count": "count", "sum": "sum", "min": "min",
                 "max": "max"}


class _Decomposer:
    """Splits aggregate expressions into shard partials + a merge tree."""

    def __init__(self, group_by):
        self.group_keys = {repr(g): i for i, g in enumerate(group_by)}
        self.partials = []       # [(kind, shard expr)]
        self._index = {}         # (kind, repr(expr)) -> partial position

    def _partial(self, kind, expr):
        key = (kind, repr(expr))
        if key not in self._index:
            self._index[key] = len(self.partials)
            self.partials.append((kind, expr))
        return self._index[key]

    def decompose(self, expr):
        key = repr(expr)
        if key in self.group_keys:
            return GroupCol(self.group_keys[key])
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            if expr.distinct:
                raise Undecomposable("DISTINCT aggregate")
            if expr.name == "avg":
                arg = expr.args[0]
                return AvgOf(
                    self._partial("sum", FuncCall("sum", (arg,))),
                    self._partial("count", FuncCall("count", (arg,))))
            kind = _PARTIAL_AGGS.get(expr.name)
            if kind is None:
                raise Undecomposable(expr.name)
            return Partial(self._partial(kind, expr))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self.decompose(expr.left),
                         self.decompose(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.decompose(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(self.decompose(expr.operand))
        raise Undecomposable(expr)


# -- the planner ----------------------------------------------------------------

def plan_select(schema, select, shard_map):
    """Plan one SELECT against ``schema`` over ``shard_map``'s active
    shards (the owners of at least one hash bucket — during an online
    migration the joining target and any retired node stay out of every
    plan until the cutover installs the next map epoch)."""
    active = shard_map.active
    if select.table is None:
        # Table-less SELECT (constant expressions): any one shard.
        return ScatterPlan("single", [active[0]], select)
    bindings = [(select.table.binding, schema.get(select.table.name))]
    for join in select.joins:
        bindings.append((join.table.binding, schema.get(join.table.name)))
    infos = [info for _, info in bindings]
    partitioned = [info for info in infos if info.partition_by]
    if not partitioned or len(active) == 1:
        # Reference tables are broadcast: any shard holds them whole.
        return ScatterPlan("single", [active[0]], select, tables=infos)
    pruned, value = _prune_value(select.where, bindings)
    if pruned:
        shard = shard_map.shard_of(value)
        return ScatterPlan("single", [shard], select, tables=infos,
                           pruned=True)
    shards = list(active)
    if not _co_partitioned(select, bindings):
        return ScatterPlan("gather", shards, select, tables=infos)
    if select.group_by or any(contains_aggregate(i.expr)
                              for i in select.items):
        try:
            return _plan_aggregate(select, infos, shards)
        except Undecomposable:
            return ScatterPlan("gather", shards, select, tables=infos)
    return _plan_rows(select, infos, shards)


def _plan_rows(select, infos, shards):
    """Plain projection: concatenate shard rows, re-sort on hidden
    order-key columns shipped alongside the visible items."""
    items = list(select.items)
    n_items = len(items)
    order_columns = []
    item_keys = {repr(i.expr): pos for pos, i in enumerate(select.items)}
    for order in select.order_by:
        pos = item_keys.get(repr(order.expr))
        if pos is None:
            if select.distinct:
                # Appending a hidden key would change what DISTINCT
                # deduplicates; this corner goes through gather.
                return ScatterPlan("gather", shards, select, tables=infos)
            pos = len(items)
            items.append(SelectItem(order.expr,
                                    "__o{0}".format(len(order_columns))))
        order_columns.append((pos, order.ascending))
    shard_select = Select(
        items=items, table=select.table, joins=list(select.joins),
        where=select.where, distinct=select.distinct,
        # ORDER BY + LIMIT push down together (per-shard top-k); a bare
        # LIMIT pushes alone, a bare ORDER BY is wasted shard work.
        order_by=list(select.order_by) if select.limit is not None else [],
        limit=select.limit)
    return ScatterPlan(
        "scatter", shards, select, tables=infos, shard_select=shard_select,
        mode="rows", n_items=n_items, order_columns=order_columns,
        distinct=select.distinct, limit=select.limit)


def _plan_aggregate(select, infos, shards):
    """Decompose aggregates into shard partials plus a merge recipe."""
    decomposer = _Decomposer(select.group_by)
    item_exprs = [decomposer.decompose(i.expr) for i in select.items]
    having_expr = None if select.having is None \
        else decomposer.decompose(select.having)
    order_exprs = [(decomposer.decompose(o.expr), o.ascending)
                   for o in select.order_by]
    items = [SelectItem(g, "__g{0}".format(i))
             for i, g in enumerate(select.group_by)]
    items += [SelectItem(expr, "__p{0}".format(i))
              for i, (_, expr) in enumerate(decomposer.partials)]
    shard_select = Select(
        items=items, table=select.table, joins=list(select.joins),
        where=select.where, group_by=list(select.group_by))
    return ScatterPlan(
        "scatter", shards, select, tables=infos, shard_select=shard_select,
        mode="agg", n_group=len(select.group_by),
        partial_kinds=[kind for kind, _ in decomposer.partials],
        item_names=[i.alias or _default_name(i.expr)
                    for i in select.items],
        item_exprs=item_exprs, having_expr=having_expr,
        order_exprs=order_exprs, distinct=select.distinct,
        limit=select.limit)
