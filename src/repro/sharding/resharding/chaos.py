"""Chaos sweeps for online resharding: seeded crash/partition/drop
schedules against a live migration, with zero-loss invariants checked
mid-flight and at the end.

One :func:`run_reshard_schedule` call drives a ShardedDatabase through
a seeded stream of writes while a shard split (and then a merge of the
new shard back) runs concurrently, injecting — at random but
reproducible points — coordinator crashes at every migration phase
boundary (the ``reshard.*`` sites), mid-commit crashes on the shard
commit path (``commit.*`` / ``wal.append`` / ``twopc.decided``), link
partitions of both the shard RPC links and the migration's own
snapshot/delta channel, and probabilistic drops/latency on the
``shard.ship`` / ``reshard.ship`` / ``reshard.ack`` sites.

Write fates are tracked like the replication chaos harness tracks
them: a statement that returns normally is **acked** and must survive;
a statement interrupted by a crash or an unreachable shard is
**unknown** — after recovery the harness *probes* the database (each
op is built around a unique key or marker, so one SELECT decides its
fate) and mirrors the op into the single-node reference only if it
actually landed.  A fenced transaction
(:class:`~repro.sharding.resharding.StaleEpochError`, or any other
ConflictError) is a clean reject: definitely not applied.

Invariants, checked at seeded mid-migration checkpoints (so the
equivalence holds *during* the copy/catchup/dual phases, not just
after cutover) and once more after the migration drains:

1. **No lost acked write, no double-apply** — the full multiset of
   ``kv`` rows (and the broadcast ``tags`` table) equals the
   single-node reference's.  A lost delta shows up as a missing row, a
   replayed delta or unpurged source row as a duplicate.
2. **Scatter-merge equivalence mid-migration** — a grouped aggregate
   over the moving table matches the reference while the shard set is
   mid-change.
3. **Convergence** — the migration finishes (crash-restarted as many
   times as the schedule demands) and installs the new epoch.

:func:`chaos_sweep` batches consecutive seeds; CI fans the base out
via the ``RESHARD_SEED`` environment variable.
"""

import random
from dataclasses import dataclass, field

from repro.faults import CrashError, FaultInjector
from repro.sharding.coordinator import ShardUnavailableError
from repro.sharding.resharding import PHASE_SITES
from repro.sql.database import Database
from repro.sql.transactions import ConflictError

# Everything a schedule may crash: migration phase boundaries plus the
# shard commit path (through which copy chunks, deltas, purges and the
# migration's own decision log also flow, via wal.append).
CRASH_SITES = PHASE_SITES + (
    "commit.validate", "wal.append", "commit.publish", "commit.apply",
    "twopc.decided",
)


@dataclass
class ReshardChaosReport:
    """What one seeded schedule did and whether the invariants held."""

    seed: int
    ops_attempted: int = 0
    ops_acked: int = 0
    ops_unknown: int = 0       # crash/unreachable: fate probed
    ops_rejected: int = 0      # conflicts and epoch fences: not applied
    probed_applied: int = 0    # unknown ops the probe found landed
    crashes: int = 0
    recoveries: int = 0
    link_cuts: int = 0
    migrations_done: int = 0
    checkpoints: int = 0
    phases_seen: set = field(default_factory=set)
    final_epoch: int = 0
    mismatches: list = field(default_factory=list)  # [(when, query, diff)]
    stuck: list = field(default_factory=list)       # unconverged migration

    @property
    def ok(self):
        return not (self.mismatches or self.stuck)

    def summary(self):
        return ("seed={0}: {1} acked / {2} unknown ({3} landed) / {4} "
                "rejected of {5} ops, {6} crashes, {7} recoveries, "
                "{8} cuts, {9} migrations, {10} checkpoints, phases "
                "{11}, epoch {12} -> {13}".format(
                    self.seed, self.ops_acked, self.ops_unknown,
                    self.probed_applied, self.ops_rejected,
                    self.ops_attempted, self.crashes, self.recoveries,
                    self.link_cuts, self.migrations_done,
                    self.checkpoints, sorted(self.phases_seen),
                    self.final_epoch, "OK" if self.ok else "FAILED"))


CHECK_QUERIES = (
    "SELECT k, v, lbl FROM kv",
    "SELECT t, n FROM tags",
    "SELECT lbl, count(*) AS c, sum(v) AS s FROM kv GROUP BY lbl",
)


def _heal_all(db):
    for shard_id in range(len(db.shards)):
        db.heal(shard_id)
    migration = db.migration
    if migration is not None:
        migration.heal_link()


def _recover(db, report):
    """Crash-restart the cluster, retrying when an armed plan strikes
    again inside recovery itself (recover is idempotent)."""
    for _ in range(30):
        try:
            db.recover()
            report.recoveries += 1
            return
        except CrashError:
            report.crashes += 1
    raise RuntimeError("recovery did not converge under armed faults")


def _checkpoint(db, ref, report, when):
    """Differential equivalence vs the single-node reference, as a full
    multiset — one lost sync-acked write or one double-applied delta is
    a diff here."""
    _heal_all(db)
    report.checkpoints += 1
    for query in CHECK_QUERIES:
        got = sorted(db.query(query))
        want = sorted(ref.query(query))
        if got != want:
            extra = [r for r in got if r not in want]
            missing = [r for r in want if r not in got]
            report.mismatches.append(
                (when, query, {"extra": extra[:10],
                               "missing": missing[:10]}))


class _Schedule:
    """One seeded chaos schedule (see module docstring)."""

    def __init__(self, seed, n_ops, crash_rate, cut_rate, drop_rate):
        self.rng = random.Random(seed)
        self.report = ReshardChaosReport(seed=seed)
        self.n_ops = n_ops
        self.crash_rate = crash_rate
        self.cut_rate = cut_rate
        # Alternate which traffic class drops vs. stalls per seed, like
        # the replication sweep, so both classes get coverage.
        if seed % 2:
            rates = {"shard.ship": ("transient", drop_rate),
                     "reshard.ship": ("transient", drop_rate),
                     "reshard.ack": ("latency", 0.2,
                                     1 + self.rng.randrange(3))}
        else:
            rates = {"shard.ship": ("latency", 0.2,
                                    1 + self.rng.randrange(3)),
                     "reshard.ship": ("latency", 0.2,
                                      1 + self.rng.randrange(3)),
                     "reshard.ack": ("transient", drop_rate)}
        self.faults = FaultInjector.seeded(seed * 7919 + 13, rates)
        self.db = None
        self.ref = Database()      # the single-node truth
        self.live_keys = []        # kv keys present in the reference
        self.next_key = 1000
        self.next_marker = 10 ** 6
        self.next_tag = 1
        self.open_cuts = []        # [(heal_at_op, shard_id | None)]

    # -- setup ----------------------------------------------------------------

    def build(self):
        from repro.sharding.coordinator import ShardedDatabase
        self.db = ShardedDatabase(n_shards=2, faults=self.faults,
                                  retry_seed=self.report.seed)
        ddl = ["CREATE TABLE kv (k BIGINT, v BIGINT, lbl VARCHAR) "
               "PARTITION BY (k)",
               "CREATE TABLE tags (t BIGINT, n BIGINT)"]
        seed_kv = "INSERT INTO kv VALUES " + ", ".join(
            "({0}, {1}, '{2}')".format(k, k * 7, "abc"[k % 3])
            for k in range(40))
        seed_tags = "INSERT INTO tags VALUES (901, 1), (902, 2)"
        for sql in ddl + [seed_kv, seed_tags]:
            self.db.execute(sql)
            self.ref.execute(sql)
        self.live_keys = list(range(40))

    # -- one write op ---------------------------------------------------------

    def _make_op(self):
        """(sql, needs_txn, probe sql, landed predicate, on_applied)."""
        rng = self.rng
        kind = rng.choice(("insert", "insert", "batch", "update",
                           "delete", "tags"))
        if kind == "insert" or (kind in ("update", "delete")
                                and not self.live_keys):
            k = self.next_key = self.next_key + 1
            sql = "INSERT INTO kv VALUES ({0}, {1}, '{2}')".format(
                k, k * 7, "abc"[k % 3])
            probe = "SELECT count(*) AS c FROM kv WHERE k = {0}".format(k)
            return (sql, False, probe, lambda rows: rows[0][0] == 1,
                    lambda: self.live_keys.append(k))
        if kind == "batch":
            ks = [self.next_key + i + 1 for i in range(3)]
            self.next_key += 3
            sql = "INSERT INTO kv VALUES " + ", ".join(
                "({0}, {1}, '{2}')".format(k, k * 7, "abc"[k % 3])
                for k in ks)
            probe = "SELECT count(*) AS c FROM kv WHERE k = {0}".format(
                ks[0])
            return (sql, True, probe, lambda rows: rows[0][0] == 1,
                    lambda: self.live_keys.extend(ks))
        if kind == "update":
            k = rng.choice(self.live_keys)
            marker = self.next_marker = self.next_marker + 1
            sql = "UPDATE kv SET v = {0} WHERE k = {1}".format(marker, k)
            probe = ("SELECT count(*) AS c FROM kv "
                     "WHERE k = {0} AND v = {1}".format(k, marker))
            return (sql, False, probe, lambda rows: rows[0][0] == 1,
                    lambda: None)
        if kind == "delete":
            k = rng.choice(self.live_keys)
            sql = "DELETE FROM kv WHERE k = {0}".format(k)
            probe = "SELECT count(*) AS c FROM kv WHERE k = {0}".format(k)
            return (sql, False, probe, lambda rows: rows[0][0] == 0,
                    lambda: self.live_keys.remove(k))
        t = self.next_tag = self.next_tag + 1
        sql = "INSERT INTO tags VALUES ({0}, {1})".format(t, t * 3)
        probe = "SELECT count(*) AS c FROM tags WHERE t = {0}".format(t)
        return (sql, True, probe, lambda rows: rows[0][0] == 1,
                lambda: None)

    def _execute(self, sql, needs_txn):
        """Run one op; explicit-transaction ops commit through 2PC so
        multi-shard writes stay atomic under crashes (the autocommit
        INSERT split is per-shard RPCs, deliberately not atomic)."""
        if not needs_txn:
            self.db.execute(sql)
            return
        txn = self.db.begin()
        try:
            txn.execute(sql)
            txn.commit()
        except BaseException:
            if not txn.closed:
                txn.abort()
            raise

    def _probe(self, probe_sql, landed):
        """Decide an unknown op's fate from the healed, recovered
        database (retrying once over a freshly healed cluster)."""
        for attempt in (0, 1):
            _heal_all(self.db)
            try:
                return landed(self.db.query(probe_sql))
            except ShardUnavailableError:
                if attempt:
                    raise
            except CrashError:
                self.report.crashes += 1
                _recover(self.db, self.report)
        return False

    def _run_op(self):
        report = self.report
        sql, needs_txn, probe_sql, landed, on_applied = self._make_op()
        report.ops_attempted += 1
        try:
            self._execute(sql, needs_txn)
        except ConflictError:
            # Includes StaleEpochError: fenced, definitely not applied.
            report.ops_rejected += 1
            return
        except CrashError:
            report.crashes += 1
            report.ops_unknown += 1
            _recover(self.db, report)
        except ShardUnavailableError:
            report.ops_unknown += 1
        else:
            report.ops_acked += 1
            self.ref.execute(sql)
            on_applied()
            return
        # Unknown fate: recovery has settled any in-doubt 2PC state, so
        # one probe decides whether to mirror the op to the reference.
        if self._probe(probe_sql, landed):
            report.probed_applied += 1
            self.ref.execute(sql)
            on_applied()

    # -- chaos scheduling ------------------------------------------------------

    def _arm_chaos(self, op_index):
        rng = self.rng
        report = self.report
        for due, shard_id in list(self.open_cuts):
            if due <= op_index:
                self.open_cuts.remove((due, shard_id))
                if shard_id is None:
                    migration = self.db.migration
                    if migration is not None:
                        migration.heal_link()
                else:
                    self.db.heal(shard_id)
        roll = rng.random()
        if roll < self.crash_rate:
            site = rng.choice(CRASH_SITES)
            torn = rng.randrange(10) if site == "wal.append" \
                and rng.random() < 0.5 else None
            self.faults.crash_at(
                site, hit=self.faults.hits[site] + 1 + rng.randrange(4),
                torn=torn)
        elif roll < self.crash_rate + self.cut_rate:
            migration = self.db.migration
            if migration is not None and not migration.finished \
                    and rng.random() < 0.5:
                migration.cut_link()
                self.open_cuts.append((op_index + 1 + rng.randrange(2),
                                       None))
            else:
                shard_id = rng.randrange(len(self.db.shards))
                self.db.cut(shard_id)
                self.open_cuts.append((op_index + 1 + rng.randrange(2),
                                       shard_id))
            report.link_cuts += 1

    def _step_migration(self):
        migration = self.db.migration
        if migration is None or migration.finished:
            return
        self.report.phases_seen.add(migration.phase)
        try:
            migration.step()
        except CrashError:
            self.report.crashes += 1
            _recover(self.db, self.report)
        except ShardUnavailableError:
            pass   # the migration channel is cut; stalls until healed

    def _start_migration(self, op):
        """The split (and later the merge back) this schedule runs.
        Completed cutovers are counted by the map epoch (each one bumps
        it exactly once)."""
        db, rng, report = self.db, self.rng, self.report
        if db.migration is not None and not db.migration.finished:
            return
        want_split = db.shard_map.epoch == 0 and len(db.shards) == 2
        want_merge = db.shard_map.epoch == 1 and len(db.shards) == 3 \
            and not db.shards[2].retired
        try:
            if want_split:
                db.split_shard(rng.randrange(2),
                               chunk_rows=4 + rng.randrange(12))
            elif want_merge and rng.random() < 0.5:
                db.merge_shards(2, rng.randrange(2),
                                chunk_rows=4 + rng.randrange(12))
        except CrashError:
            report.crashes += 1
            _recover(db, report)

    def _drain_migration(self):
        """Heal everything and push the live migration to ``done``."""
        for _ in range(600):
            migration = self.db.migration
            if migration is None or migration.finished:
                return
            _heal_all(self.db)
            self._step_migration()
        self.report.stuck.append(repr(self.db.migration))

    # -- the schedule ----------------------------------------------------------

    def run(self):
        report = self.report
        self.build()
        start_at = 2 + self.rng.randrange(4)
        merge_at = self.n_ops // 2 + self.rng.randrange(4)
        checkpoint_every = 5 + self.rng.randrange(4)
        for op in range(self.n_ops):
            self._arm_chaos(op)
            if op >= start_at and self.db.shard_map.epoch == 0:
                self._start_migration(op)
            if op >= merge_at:
                if self.db.shard_map.epoch == 0:
                    self._drain_migration()
                self._start_migration(op)
            self._run_op()
            for _ in range(self.rng.randrange(3)):
                self._step_migration()
            if (op + 1) % checkpoint_every == 0:
                when = "mid-migration" if self.db.migration is not None \
                    else "op {0}".format(op)
                _checkpoint(self.db, self.ref, report, when)
        self._drain_migration()
        _checkpoint(self.db, self.ref, report, "final")
        report.final_epoch = self.db.shard_map.epoch
        report.migrations_done = report.final_epoch
        return report


def run_reshard_schedule(seed, n_ops=24, crash_rate=0.3, cut_rate=0.15,
                         drop_rate=0.04):
    """Run one seeded resharding chaos schedule; returns a
    :class:`ReshardChaosReport` (callers assert ``report.ok``)."""
    return _Schedule(seed, n_ops, crash_rate, cut_rate, drop_rate).run()


def chaos_sweep(seed_base, n_schedules=20, **kwargs):
    """Run ``n_schedules`` consecutive seeded schedules; returns the
    list of reports (callers assert ``all(r.ok for r in reports)``)."""
    return [run_reshard_schedule(seed_base + i, **kwargs)
            for i in range(n_schedules)]
