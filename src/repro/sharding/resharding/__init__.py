"""Online resharding: live shard split/merge with a fenced cutover.

A :class:`Resharding` migration moves a set of hash buckets from a
*source* shard to a *target* shard while reads and writes keep flowing,
then atomically installs a new :class:`~repro.sharding.partition.ShardMap`
epoch.  Three operations share the machinery:

* **split** — a fresh node joins; the map is refined (bucket doubling,
  placement-preserving) until the source owns at least two buckets, and
  half of them move to the new node.
* **merge** — every bucket of the source moves to an existing node and
  the source retires (node removal).
* **move**  — an explicit bucket set rebalances between two established
  nodes.

The state machine (every phase crash-restartable)::

    begin -> copy -> catchup -> dual -> cutover -> done

``begin``
    One durable record in the coordinator's ``reshard.wal`` fixes the
    whole plan: the moving buckets, the refined pre-migration map, the
    post-cutover assignment/epoch, and ``wal_from`` — the source WAL
    offset that splits history into *snapshot* (copied) and *delta*
    (tailed).  A fresh target node is created and bootstrapped with the
    schema's DDL (idempotently, so a crash mid-bootstrap re-runs it).

``copy``
    The snapshot — the source state reconstructed by replaying its WAL
    prefix ``[0, wal_from)`` into a *shadow* database — ships to the
    target in row chunks over a dedicated
    :class:`~repro.datacyclotron.link.SimulatedLink` pair (fault sites
    ``reshard.ship`` / ``reshard.ack``).  Each chunk lands on the
    target as one WAL-logged ``stage`` record stamped with its unit
    number — durable but *invisible* to the target's catalog, so
    scatter reads never see a moving row on both sides — and a
    restarted coordinator scans the target WAL and resumes after the
    last durable unit: a chunk is staged exactly once.

``catchup``
    Writes racing the copy keep committing on the source (it stays
    authoritative until cutover); the migration *tails the source WAL*
    from ``wal_from``, translating each committed record into a target
    delta: appends filter by moving-bucket membership of the partition
    key, and deletes — logical oids on the source — resolve to row
    *contents* through the shadow (which replays every record just
    before the tail passes it, so it always holds the pre-record
    state), then net one matching row out of the staged multiset
    (moving rows live only on the source pre-cutover, so a delta
    delete always finds its victim among the staged rows).  2PC
    participants translate at their ``decide: commit`` record using the
    shadow's pending prepare.  Each delta lands as one durable
    ``stage`` record stamped with the source-WAL position it covers —
    the cursor that makes replay after a crash skip, never
    double-apply.

``dual``
    Lag is zero; every subsequent coordinator write is *dual-routed* —
    after the source commit, the write path synchronously pumps the
    tail so the target stays current.  A pump failure (link cut, crash
    plan) demotes the migration to ``catchup`` rather than failing the
    already-durable source write.

``cutover``
    The 2PC-style fence: a fence round-trip to the target over the
    migration links proves liveness, the tail drains to lag zero, and
    one durable ``decision`` record in ``reshard.wal`` is the commit
    point.  Then the staged multiset *installs* on the target as one
    stamped commit (idempotent — a retried cutover sees the durable
    install stamp and skips), the moved rows are *purged* from the
    source (a logged, idempotent delete — without it the rows would
    double-count), the
    new epoch-stamped map installs, the target's ``joining`` flag
    clears (a merge retires the source), and a ``done`` record closes
    the migration.  A crash after the decision finishes the cutover
    inside :meth:`ShardedDatabase.recover`; a crash before it resumes
    the migration under the old map.  Transactions that began under the
    old epoch are fenced with :class:`StaleEpochError` — a
    :class:`~repro.sql.transactions.ConflictError`, so sessions retry
    them like any first-writer-wins conflict.

DDL is rejected while a migration is active, and vacuum
(``merge_deltas``) must not run on the source mid-migration — both
would invalidate the oid-stable shadow the delta translation leans on.
"""

from dataclasses import dataclass

from repro.datacyclotron.link import SimulatedLink
from repro.faults import CrashError, TransientFault
from repro.sharding.partition import ShardMap, partition_hash
from repro.sql.ast import CreateMaterializedView, CreateTable
from repro.sql.database import Database
from repro.sql.transactions import ConflictError

RESHARD_SHIP = "reshard.ship"
RESHARD_ACK = "reshard.ack"

#: Injection sites marking the migration's phase boundaries, in order;
#: the chaos sweep crashes at every hit of every one of them.
PHASE_SITES = ("reshard.begin", "reshard.copy", "reshard.catchup",
               "reshard.cutover", "reshard.purge")


class ReshardingError(RuntimeError):
    """The migration cannot proceed as requested."""


class MigrationInProgressError(ReshardingError):
    """Rejected because a resharding migration is already active."""


class StaleEpochError(ConflictError):
    """A request carried a shard-map epoch older than the installed
    one: its owner was deposed by a cutover.  Subclasses
    :class:`~repro.sql.transactions.ConflictError` so the session layer
    treats it as a retryable conflict against the new map."""


@dataclass
class ReshardingStats:
    """Progress and load counters for one migration (tracer-visible)."""

    units_shipped: int = 0     # snapshot chunks applied to the target
    rows_copied: int = 0       # snapshot rows shipped
    deltas_applied: int = 0    # tailed source records applied
    delta_rows: int = 0        # rows those deltas appended/deleted
    pump_failures: int = 0     # dual-routing pumps demoted to catchup
    ack_failures: int = 0      # applied deltas whose ack was lost
    cutover_attempts: int = 0
    purged_rows: int = 0       # moved rows deleted from the source


def _row_key(row):
    """Comparable form of one row (NaN compares equal to itself)."""
    return tuple("__nan__" if isinstance(v, float) and v != v else v
                 for v in row)


class Resharding:
    """One live migration over a ShardedDatabase (see module docstring).

    Constructed from its durable ``begin`` record — the constructor is
    exactly the crash-recovery path, so a freshly started migration and
    one resumed after a coordinator restart are the same object.
    In-memory state (the shadow database, the copy plan, the durable
    progress cursor) rebuilds lazily on the first :meth:`step`.
    """

    def __init__(self, coordinator, record):
        self._co = coordinator
        self.mid = record["mid"]
        self.op = record["op"]              # 'split' | 'merge' | 'move'
        self.source = record["source"]
        self.target = record["target"]
        self.fresh = record["fresh"]        # target is a brand-new node
        self.buckets = set(record["buckets"])
        self.n_buckets = record["n_buckets"]
        self.wal_from = record["wal_from"]
        self.chunk_rows = record["chunk_rows"]
        self.record = record
        self.phase = "copy"
        self.stats = ReshardingStats()
        self._shadow = None      # source mirror for delta translation
        self._shadow_pos = 0     # source WAL bytes the shadow replayed
        self._units = None       # [(table, rows)] snapshot chunks
        self._units_done = 0
        self._stage = {}         # table -> migrated rows, pre-install
        self._installed = False  # cutover materialized the stage
        faults = coordinator.faults
        self.link_out = SimulatedLink(
            RESHARD_SHIP, faults=faults,
            name="reshard->s{0}".format(self.target))
        self.link_in = SimulatedLink(
            RESHARD_ACK, faults=faults,
            name="s{0}->reshard".format(self.target))

    # -- derived state ---------------------------------------------------------

    @property
    def finished(self):
        return self.phase in ("done", "aborted")

    def _source_db(self):
        return self._co.shards[self.source].db

    def _target_db(self):
        return self._co.shards[self.target].db

    def _moving(self, value):
        return partition_hash(value) % self.n_buckets in self.buckets

    def lag_bytes(self):
        """Source-WAL bytes the tail has not consumed yet."""
        return self._source_db().wal.size_bytes - self._shadow_pos

    def cut_link(self):
        """Partition the migration's own snapshot/delta channel."""
        self.link_out.cut()
        self.link_in.cut()

    def heal_link(self):
        self.link_out.heal()
        self.link_in.heal()

    def progress(self):
        """Migration progress snapshot (also stamped on tracer spans)."""
        loaded = self._shadow is not None
        return {
            "mid": self.mid, "op": self.op, "phase": self.phase,
            "source": self.source, "target": self.target,
            "buckets": sorted(self.buckets),
            "units_done": self._units_done,
            "units_total": len(self._units) if self._units is not None
            else None,
            "rows_copied": self.stats.rows_copied,
            "deltas_applied": self.stats.deltas_applied,
            "lag_bytes": self.lag_bytes() if loaded else None,
            "new_epoch": self.record["new_epoch"],
        }

    # -- bootstrap / resume ----------------------------------------------------

    def bootstrap(self):
        """Create the target's tables (fresh node only).  Idempotent:
        a crash mid-bootstrap re-runs it and only the missing tables
        are created, so the target WAL never holds a duplicate DDL
        record."""
        if not self.fresh:
            return
        db = self._target_db()
        for name in sorted(self._co.schema.tables):
            if name in db.catalog:
                continue
            info = self._co.schema.tables[name]
            db.execute(CreateTable(name, [list(c) for c in info.columns],
                                   partition_by=info.partition_by))
        # Materialized views install after their base tables (empty, so
        # the initial materialization is empty); the install commit and
        # every later write maintain them through the target's own
        # _apply_ops.  Idempotent like the tables above.
        for name in sorted(self._co.views):
            if db.views.is_view(name):
                continue
            db.execute(CreateMaterializedView(
                name, self._co.views[name].select))

    def _scan_target_progress(self):
        """Durable progress from the target WAL: (units applied, max
        source-WAL position covered by an applied delta).  Also rebuilds
        the staged row multiset — the net of every ``stage`` record —
        and notices a durable install commit (so a cutover retried
        after a crash never materializes the stage twice)."""
        units_done, delta_pos = 0, self.wal_from
        self._stage = {}
        self._installed = False
        for record in self._target_db().wal.records():
            stamp = record.get("reshard")
            if not stamp or stamp.get("mid") != self.mid:
                continue
            if stamp["kind"] == "copy":
                units_done = max(units_done, stamp["unit"] + 1)
                self._stage_ops(record["ops"])
            elif stamp["kind"] == "delta":
                delta_pos = max(delta_pos, stamp["pos"])
                self._stage_ops(record["ops"])
            elif stamp["kind"] == "install":
                self._installed = True
        return units_done, delta_pos

    def _stage_ops(self, ops):
        """Net one staged record into the staged multiset: append rows,
        then remove one matching copy per content-addressed delete."""
        for op in ops:
            rows = self._stage.setdefault(op["table"], [])
            rows.extend([list(r) for r in op.get("appends", ())])
            for doomed in op.get("delete_rows", ()):
                want = _row_key(doomed)
                for index, row in enumerate(rows):
                    if _row_key(row) == want:
                        del rows[index]
                        break
                else:
                    raise ReshardingError(
                        "delta delete of {0!r} found no staged row in "
                        "{1!r}".format(doomed, op["table"]))

    def _ensure_loaded(self):
        """Rebuild the in-memory machinery from durable state: replay
        the source WAL into the shadow up to the durable delta cursor,
        and (while still copying) recompute the deterministic chunk
        plan, skipping units the target already holds."""
        if self._shadow is not None:
            return
        units_done, delta_pos = self._scan_target_progress()
        shadow = Database()
        pos = 0
        for record, end in self._source_db().wal.records_from(0):
            if end > delta_pos:
                break
            shadow._replay_record(record)
            pos = end
        self._shadow = shadow
        self._shadow_pos = pos
        if delta_pos > self.wal_from:
            # Deltas already flowed: the snapshot copy is complete.
            self._units = []
            self._units_done = 0
            if self.phase == "copy":
                self.phase = "catchup"
            return
        self._units = self._copy_plan()
        self._units_done = units_done
        if self._units_done >= len(self._units) and self.phase == "copy":
            self.phase = "catchup"

    def _copy_plan(self):
        """The snapshot chunks, a pure function of the shadow at
        ``wal_from`` (so a restarted coordinator recomputes the exact
        same plan and unit numbering)."""
        units = []
        for name in sorted(self._shadow.catalog.tables):
            if self._shadow.views.is_view(name):
                # View backing tables are derived state: the target
                # maintains its own from the copied base rows; shipping
                # them too would double the view.
                continue
            table = self._shadow.catalog.get(name)
            partitioned = table.partition_by is not None
            if not partitioned and not self.fresh:
                continue   # established targets already hold references
            key_index = table.column_names.index(table.partition_by) \
                if partitioned else None
            rows = []
            for oid in table.tid().decoded():
                row = table.row(oid)
                if partitioned and not self._moving(row[key_index]):
                    continue
                rows.append(list(row))
            for start in range(0, len(rows), self.chunk_rows):
                units.append((name, rows[start:start + self.chunk_rows]))
        return units

    # -- the target apply path -------------------------------------------------

    def _apply_to_target(self, ops, stamp):
        """Durably *stage* translated ops on the target: one link round
        trip, one stamped ``stage`` WAL record.  Staged rows are
        invisible to the target's catalog (and so to scatter reads —
        the source stays the one authority for the moving buckets until
        cutover); the install commit at cutover materializes the net of
        every staged record in one publish.  The append is the
        durability point — a crash before it leaves nothing, a crash
        after it is caught by the progress scan — so a unit/delta is
        staged exactly once."""
        from repro.sharding.coordinator import (
            ShardUnavailableError, _payload_size,
        )
        co = self._co
        db = self._target_db()
        staged = [{"table": op["table"],
                   "appends": op.get("appends", []),
                   "delete_rows": op.get("delete_rows", [])}
                  for op in ops]
        record = {"kind": "stage", "ops": staged, "reshard": stamp}
        co._send(self.link_out, ("reshard", stamp), _payload_size(record))
        db.wal.append(record)
        self._stage_ops(staged)
        try:
            co._send(self.link_in, ("reshard-ack", stamp), 16)
        except ShardUnavailableError:
            # The delta is durable on the target; only the ack is lost.
            self.stats.ack_failures += 1

    def _install_staged(self):
        """Materialize the staged multiset as one target commit.  The
        record carries an ``install`` stamp, so a cutover retried after
        a crash sees it during the progress scan and skips straight to
        the already-visible rows (exactly-once install)."""
        if self._installed:
            return
        db = self._target_db()
        ops = [{"table": name, "appends": rows, "deletes": []}
               for name, rows in sorted(self._stage.items()) if rows]
        record = {"kind": "commit", "ops": ops,
                  "reshard": {"mid": self.mid, "kind": "install"}}
        db.wal.append(record)
        db._apply_ops(ops)
        db._bump_commit()
        self._installed = True

    # -- delta translation -----------------------------------------------------

    @staticmethod
    def _shadow_rows(table, oids):
        """Shadow row contents for a delete's oids, skipping oids no
        longer visible (``delete_oids`` dedups those on the source, so
        they carry no effect to mirror)."""
        rows = []
        for oid in oids:
            try:
                rows.append(table.row(oid))
            except KeyError:
                pass
        return rows

    def _translate(self, record):
        """One tailed source record -> target ops (None when the record
        has no effect on the moving buckets)."""
        if record.get("reshard") is not None:
            return None   # our own purge record, never a delta
        kind = record.get("kind")
        if kind == "commit":
            ops = record.get("ops", [])
        elif kind == "decide" and record.get("outcome") == "commit":
            ops = self._shadow._pending_prepares.get(record["xid"])
            if ops is None:
                return None
        else:
            return None   # prepare / decide-abort; DDL is blocked
        out = []
        for op in ops:
            name = op["table"]
            table = self._shadow.catalog.get(name)
            if table.partition_by is None:
                if not self.fresh:
                    continue   # established target gets broadcasts live
                appends = [list(r) for r in op["appends"]]
                delete_rows = [list(row) for row
                               in self._shadow_rows(table, op["deletes"])]
            else:
                ki = table.column_names.index(table.partition_by)
                appends = [list(r) for r in op["appends"]
                           if self._moving(r[ki])]
                delete_rows = [list(row) for row
                               in self._shadow_rows(table, op["deletes"])
                               if self._moving(row[ki])]
            if appends or delete_rows:
                out.append({"table": name, "appends": appends,
                            "delete_rows": delete_rows})
        return out or None

    def pump(self, max_records=None):
        """Drain the source-WAL tail into the target (all of it, or at
        most ``max_records``).  Returns the records consumed."""
        self._ensure_loaded()
        co = self._co
        consumed = 0
        for record, end in self._source_db().wal.records_from(
                self._shadow_pos):
            ops = self._translate(record)
            if ops is not None:
                self._apply_to_target(
                    ops, {"mid": self.mid, "kind": "delta", "pos": end})
                self.stats.deltas_applied += 1
                rows = sum(len(op["appends"]) + len(op["delete_rows"])
                           for op in ops)
                self.stats.delta_rows += rows
                if co.tracer.enabled:
                    co.tracer.add("reshard_deltas_applied", 1)
                    co.tracer.add("reshard_delta_rows", rows)
            self._shadow._replay_record(record)
            self._shadow_pos = end
            consumed += 1
            if max_records is not None and consumed >= max_records:
                break
        return consumed

    # -- the state machine -----------------------------------------------------

    def step(self):
        """Advance the migration one bounded increment; returns the
        phase after the step.  Each phase boundary passes through its
        own fault site, so crash plans and the chaos sweep can strike
        anywhere in the lifecycle."""
        if self.finished:
            return self.phase
        co = self._co
        if co.tracer.enabled:
            with co.tracer.span("reshard.step", kind="resharding",
                                mid=self.mid, op=self.op,
                                phase=self.phase):
                self._step()
        else:
            self._step()
        return self.phase

    def run(self, max_steps=100000):
        """Step to completion (fault-free convenience)."""
        while not self.finished:
            self.step()
            max_steps -= 1
            if max_steps <= 0:
                raise ReshardingError("migration did not converge")
        return self.phase

    def _step(self):
        self._ensure_loaded()
        if self.phase == "copy":
            if self._units_done < len(self._units):
                self._step_copy()
            else:
                self.phase = "catchup"
        elif self.phase == "catchup":
            self._step_catchup()
        elif self.phase == "dual":
            self._cutover()

    def _step_copy(self):
        co = self._co
        co.faults.inject("reshard.copy")
        name, rows = self._units[self._units_done]
        self._apply_to_target(
            [{"table": name, "appends": rows, "deletes": []}],
            {"mid": self.mid, "kind": "copy", "unit": self._units_done})
        self._units_done += 1
        self.stats.units_shipped += 1
        self.stats.rows_copied += len(rows)
        if co.tracer.enabled:
            co.tracer.add("reshard_rows_copied", len(rows))
        if self._units_done >= len(self._units):
            self.phase = "catchup"

    def _step_catchup(self, max_records=16):
        self._co.faults.inject("reshard.catchup")
        self.pump(max_records)
        if self.lag_bytes() == 0:
            self.phase = "dual"

    def on_write(self):
        """Dual-routing hook: called by the coordinator after every
        committed write while the migration is in ``dual``.  A failed
        pump demotes to ``catchup`` — the source commit is already
        durable and the tail will re-converge — but a crash still
        propagates (the caller's fate is unknown until recovery)."""
        from repro.sharding.coordinator import ShardUnavailableError
        if self.phase != "dual":
            return
        try:
            self.pump()
        except (ShardUnavailableError, TransientFault):
            self.phase = "catchup"
            self.stats.pump_failures += 1
            self._co.stats.reshard_pump_failures += 1
        except CrashError:
            self.phase = "catchup"
            self.stats.pump_failures += 1
            self._co.stats.reshard_pump_failures += 1
            raise

    # -- cutover ---------------------------------------------------------------

    def _cutover(self):
        """The fenced cutover.  Everything before the decision append
        is abortable (a crash resumes the migration under the old map);
        the decision record is the commit point; everything after it is
        completed by recovery if interrupted."""
        from repro.sharding.coordinator import _payload_size
        co = self._co
        self.stats.cutover_attempts += 1
        co.faults.inject("reshard.cutover")
        if co.tracer.enabled:
            span = co.tracer.span("reshard.cutover", kind="resharding",
                                  mid=self.mid)
        else:
            span = None
        try:
            if span is not None:
                span.__enter__()
            # Fence prepare: the target must answer over the migration
            # links before we commit to the new map.
            fence = ("reshard-fence", self.mid)
            co._send(self.link_out, fence, _payload_size(fence))
            co._send(self.link_in, ("reshard-fence-ack", self.mid), 16)
            self.pump()   # final drain inside the fenced window
            if self.lag_bytes():
                raise ReshardingError("tail not drained at cutover")
            co.reshard_log.append({"kind": "reshard", "phase": "decision",
                                   "mid": self.mid})
            self.complete_cutover()
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def complete_cutover(self):
        """Phase 2 of the cutover: materialize the staged rows on the
        target, purge moved rows from the source, install the new map
        epoch, settle node roles, log ``done``.
        Idempotent — :meth:`ShardedDatabase.recover` re-runs it when a
        crash struck after the decision."""
        co = self._co
        self.phase = "cutover"
        self._ensure_loaded()
        self._install_staged()
        self._purge_source()
        rec = self.record
        co.shard_map = ShardMap(rec["new_n_shards"], rec["n_buckets"],
                                rec["new_assignment"], rec["new_epoch"])
        co.shards[self.target].joining = False
        if self.op == "merge":
            co.shards[self.source].retired = True
        for node in co.shards:
            if not node.retired:
                node.epoch = rec["new_epoch"]
        co.reshard_log.append({"kind": "reshard", "phase": "done",
                               "mid": self.mid})
        self.phase = "done"
        if co.migration is self:
            co.migration = None

    def _purge_source(self):
        """Delete the moved rows from the source, as one logged,
        idempotent commit.  Without the purge the rows would exist on
        both sides and double-count in scatter reads; with it, a second
        run finds nothing visible to delete."""
        co = self._co
        db = self._source_db()
        ops = []
        purged = 0
        for name in sorted(db.catalog.tables):
            table = db.catalog.get(name)
            if table.partition_by is None:
                continue   # reference rows stay (a merge retires whole)
            key_index = table.column_names.index(table.partition_by)
            doomed = [oid for oid in table.tid().decoded()
                      if self._moving(table.row(oid)[key_index])]
            if doomed:
                ops.append({"table": name, "appends": [],
                            "deletes": doomed})
                purged += len(doomed)
        if not ops:
            return
        co.faults.inject("reshard.purge")
        db.wal.append({"kind": "commit", "ops": ops,
                       "reshard": {"mid": self.mid, "kind": "purge"}})
        db._apply_ops(ops)
        db._bump_commit()
        self.stats.purged_rows += purged

    def __repr__(self):
        return "Resharding({0}: {1} s{2}->s{3}, {4})".format(
            self.mid, self.op, self.source, self.target, self.phase)


# -- starting a migration ------------------------------------------------------

def _check_clear(co, *shard_ids):
    if co.replicas:
        raise ReshardingError(
            "online resharding needs plain shards (replicas=0)")
    if co.migration is not None and not co.migration.finished:
        raise MigrationInProgressError(
            "migration {0} is still {1}".format(co.migration.mid,
                                                co.migration.phase))
    for shard_id in shard_ids:
        if not 0 <= shard_id < len(co.shards):
            raise ReshardingError("no shard {0}".format(shard_id))
        node = co.shards[shard_id]
        if node.retired or node.joining:
            raise ReshardingError(
                "shard {0} is {1}".format(
                    shard_id, "retired" if node.retired else "joining"))


def _begin(co, op, source, target, fresh, buckets, pre_map,
           chunk_rows):
    """Durably begin a migration and hand back the live object."""
    new_map = pre_map.reassigned(buckets, target)
    co._mid_counter += 1
    record = {
        "kind": "reshard", "phase": "begin",
        "mid": "m{0:04d}".format(co._mid_counter),
        "op": op, "source": source, "target": target, "fresh": fresh,
        "buckets": sorted(buckets),
        "n_buckets": pre_map.n_buckets,
        "pre_n_shards": pre_map.n_shards,
        "pre_assignment": list(pre_map.assignment),
        "pre_epoch": pre_map.epoch,
        "new_n_shards": new_map.n_shards,
        "new_assignment": list(new_map.assignment),
        "new_epoch": new_map.epoch,
        "wal_from": co.shards[source].db.wal.size_bytes,
        "chunk_rows": chunk_rows,
    }
    co.faults.inject("reshard.begin")
    co.reshard_log.append(record)
    # Durable from here: everything below is replayed by recover().
    if fresh:
        if target != len(co.shards):
            raise ReshardingError(
                "fresh target must be the next shard id")
        co._add_node(joining=True)
    co.shard_map = pre_map
    migration = Resharding(co, record)
    co.migration = migration
    migration.bootstrap()
    return migration


def start_split(co, source, chunk_rows=64):
    """Split ``source``: a fresh node joins and takes half the
    source's buckets (the map refines until there are two to halve)."""
    _check_clear(co, source)
    pre = co.shard_map
    while len(pre.buckets_of(source)) < 2:
        pre = pre.refined(2)
    owned = pre.buckets_of(source)
    moving = owned[1::2]   # every other bucket: a stable half
    return _begin(co, "split", source, len(co.shards), True, moving,
                  pre, chunk_rows)


def start_merge(co, source, target, chunk_rows=64):
    """Merge ``source`` into ``target`` and retire the source (node
    removal under live traffic)."""
    _check_clear(co, source, target)
    if source == target:
        raise ReshardingError("cannot merge a shard into itself")
    pre = co.shard_map
    moving = pre.buckets_of(source)
    if not moving:
        raise ReshardingError(
            "shard {0} owns no buckets".format(source))
    return _begin(co, "merge", source, target, False, moving, pre,
                  chunk_rows)


def start_move(co, source, target, buckets, chunk_rows=64):
    """Move an explicit bucket set between two established shards."""
    _check_clear(co, source, target)
    if source == target:
        raise ReshardingError("source and target are the same shard")
    pre = co.shard_map
    owned = set(pre.buckets_of(source))
    buckets = sorted(set(buckets))
    if not buckets:
        raise ReshardingError("no buckets to move")
    stray = [b for b in buckets if b not in owned]
    if stray:
        raise ReshardingError(
            "buckets {0} are not owned by shard {1}".format(
                stray, source))
    return _begin(co, "move", source, target, False, buckets, pre,
                  chunk_rows)


# -- crash recovery ------------------------------------------------------------

def replay_log(co):
    """Reconstruct the map evolution, node roles and any in-flight
    migration from the durable reshard log.  Called by
    :meth:`ShardedDatabase.recover` *before* the shard WALs replay (so
    nodes created by a split exist to be recovered).  Returns
    ``(begin record, decided)`` for an unfinished migration, else
    ``None``."""
    co.migration = None
    pending = None
    count = 0
    for record in co.reshard_log.recover():
        if record.get("kind") != "reshard":
            continue
        phase = record["phase"]
        if phase == "begin":
            count += 1
            pending = (record, False)
            while len(co.shards) <= record["target"]:
                co._add_node(joining=False)
            if record["fresh"]:
                co.shards[record["target"]].joining = True
            co.shard_map = ShardMap(
                record["pre_n_shards"], record["n_buckets"],
                record["pre_assignment"], record["pre_epoch"])
        elif phase == "decision":
            pending = (pending[0], True)
        elif phase == "done":
            rec = pending[0]
            co.shard_map = ShardMap(
                rec["new_n_shards"], rec["n_buckets"],
                rec["new_assignment"], rec["new_epoch"])
            co.shards[rec["target"]].joining = False
            if rec["op"] == "merge":
                co.shards[rec["source"]].retired = True
            pending = None
    co._mid_counter = count
    return pending


def resume(co, pending):
    """Re-arm (or finish) the unfinished migration ``replay_log``
    found.  A decided migration completes its cutover now — the tail
    was provably drained before the decision, so only the purge /
    install / ``done`` steps remain."""
    if pending is None:
        return None
    record, decided = pending
    migration = Resharding(co, record)
    co.migration = migration
    if decided:
        migration.complete_cutover()
        return None
    migration.bootstrap()
    return migration
