"""Cross-shard transactions: two-phase commit over per-shard WALs.

A :class:`ShardedTransaction` holds one lazy snapshot-isolation
:class:`~repro.sql.transactions.Transaction` per shard it touches;
reads scatter through the coordinator's planner against those
transaction views, writes buffer into the per-shard transactions with
the same key routing as autocommit DML.

Commit reuses the single-node commit phases
(:meth:`Transaction._validate` / :meth:`_distill_ops` /
:meth:`_publish`) under the classic presumed-abort protocol:

* **Fast path** — at most one shard wrote: that shard runs its plain
  local commit; 2PC costs nothing when the partitioning key routes a
  transaction to one shard.
* **Phase 1 (prepare)** — each participant validates and force-logs a
  ``prepare`` record (its distilled ops) through its own WAL and fault
  sites (``commit.validate`` / ``wal.append``).  Any conflict or crash
  here aborts the whole transaction; a crashed participant's
  in-doubt prepare resolves to abort later, because no decision was
  logged.
* **Decision** — the coordinator force-logs ``decision: commit`` to
  its own log.  This single append is the commit point.
* **Phase 2 (decide)** — each participant logs ``decide`` and
  publishes its ops (``commit.publish`` / ``commit.apply`` sites).  A
  crash here cannot un-commit: the decision is durable, and
  :meth:`ShardedDatabase.recover` resolves the survivor's in-doubt
  prepare from the coordinator's decision log.
"""

from repro.faults import CrashError
from repro.governance.context import CHECK_PREPARE
from repro.governance.errors import GovernanceError
from repro.sharding.planner import _prune_value
from repro.sharding.resharding import StaleEpochError
from repro.sql.ast import (
    CreateTable, Delete, Insert, Select, Update,
)
from repro.sql.parser import parse_sql
from repro.sql.transactions import ConflictError, TransactionClosedError


class ShardedTransaction:
    """One distributed transaction over a :class:`ShardedDatabase`."""

    def __init__(self, coordinator, context=None):
        self._co = coordinator
        self._txns = {}          # shard id -> local Transaction
        self.closed = False
        self.outcome = None
        self.xid = None          # assigned when 2PC actually runs
        # Optional repro.governance.QueryContext: governs this
        # transaction's statements and its prepare phase.  Checkpoints
        # fire before each participant prepares — never after the
        # decision record, the commit's point of no return.
        self.context = context
        # The shard-map epoch this transaction's routing decisions are
        # valid against; a resharding cutover mid-transaction fences it
        # (see _check_fenced).
        self.epoch = coordinator.shard_map.epoch

    # -- plumbing -------------------------------------------------------------

    def _check_open(self):
        if self.closed:
            raise TransactionClosedError(
                "transaction already {0}".format(self.outcome))

    def _check_fenced(self):
        """Depose this transaction if a cutover installed a newer map:
        its reads and buffered routing predate the epoch, so letting it
        commit could write buckets the source no longer owns.  Raises
        :class:`~repro.sharding.resharding.StaleEpochError` (a
        ConflictError — sessions retry it like any conflict)."""
        current = self._co.shard_map.epoch
        if current != self.epoch:
            self._co.stats.stale_epoch_rejections += 1
            raise StaleEpochError(
                "transaction began at shard-map epoch {0}; epoch {1} "
                "is installed — retry against the new map".format(
                    self.epoch, current))

    def _txn(self, shard_id):
        txn = self._txns.get(shard_id)
        if txn is None:
            txn = self._co.shards[shard_id].database.begin()
            self._txns[shard_id] = txn
        return txn

    def _runner(self):
        """Scatter runner executing shard selects on this transaction's
        per-shard snapshot views (through the simulated links)."""
        co = self._co
        return lambda shard_id, ast: co._rpc(
            shard_id, ("txn-select", repr(ast)),
            lambda: co.shards[shard_id].database._run_select(
                ast, view=self._txn(shard_id)))

    # -- statement execution ---------------------------------------------------

    def execute(self, sql, context=None):
        """Execute a statement inside the transaction: SELECT returns a
        ResultSet, DML returns the (buffered) affected row count.
        ``context`` overrides the transaction's governance context for
        this one statement (the session layer passes per-statement
        contexts)."""
        self._check_open()
        self._check_fenced()
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, CreateTable):
            raise NotImplementedError("DDL inside a transaction")
        if isinstance(statement, Select):
            return self._co._select(
                statement, runner=self._runner(),
                context=context if context is not None else self.context)
        if isinstance(statement, Insert):
            return self._buffer_insert(statement)
        if isinstance(statement, (Delete, Update)):
            return self._buffer_write(statement)
        raise TypeError("unsupported statement {0!r}".format(statement))

    def query(self, sql):
        return self.execute(sql).rows()

    def _buffer_insert(self, statement):
        info = self._co.schema.get(statement.table)
        if info.partition_by is None:
            counts = [self._txn(s)._buffer_insert(statement)
                      for s in self._co.broadcast_shards()]
            return counts[0]
        order = statement.columns or info.column_names
        if info.partition_by not in order:
            raise ValueError(
                "INSERT into {0!r} must provide the partition key "
                "{1!r}".format(statement.table, info.partition_by))
        key_pos = order.index(info.partition_by)
        split = self._co.shard_map.split_rows(statement.rows, key_pos)
        total = 0
        for shard_id in sorted(split):
            sub = Insert(statement.table, split[shard_id],
                         columns=statement.columns)
            total += self._txn(shard_id)._buffer_insert(sub)
        return total

    def _buffer_write(self, statement):
        info = self._co.schema.get(statement.table)
        if info.partition_by is None:
            # Reference table: the same write buffers on every shard.
            counts = [self._apply_local(s, statement)
                      for s in self._co.broadcast_shards()]
            return counts[0]
        pruned, value = _prune_value(statement.where,
                                     [(statement.table, info)])
        targets = [self._co.shard_map.shard_of(value)] if pruned \
            else list(self._co.shard_map.active)
        if isinstance(statement, Update) and \
                info.partition_by in {c for c, _ in statement.assignments}:
            return self._moving_update(statement, info, targets)
        return sum(self._apply_local(s, statement) for s in targets)

    def _apply_local(self, shard_id, statement):
        txn = self._txn(shard_id)
        if isinstance(statement, Delete):
            return txn._buffer_delete(statement)
        return txn._buffer_update(statement)

    def _moving_update(self, statement, info, targets):
        """UPDATE that rewrites the partition key: delete the matched
        rows where they live, then route each rewritten row to the
        shard its *new* key hashes to.  Destination appends are held
        back until every source shard has evaluated its matches, so a
        row never moves twice within one statement."""
        key_index = info.key_index
        moved = []     # (destination shard, full row tuple)
        count = 0
        for shard_id in targets:
            txn = self._txn(shard_id)
            table = txn.get(statement.table)
            db = self._co.shards[shard_id].database
            new_rows = db._eval_update_rows(table, statement, view=txn)
            oids = txn._matched_oids(statement.table, statement.where)
            dead = txn._deleted.setdefault(statement.table, set())
            dead.update(oids)
            for row in new_rows:
                moved.append((self._co.shard_map.shard_of(row[key_index]),
                              tuple(row)))
            count += len(oids)
        for shard_id, row in moved:
            txn = self._txn(shard_id)
            txn.get(statement.table)   # pin the snapshot
            txn._appends.setdefault(statement.table, []).append(row)
            txn._bind_cache = {k: v for k, v in txn._bind_cache.items()
                               if k[0] != statement.table}
        return count

    # -- commit / abort ---------------------------------------------------------

    def _open_txns(self):
        return [t for t in self._txns.values() if not t.closed]

    def _close(self, outcome):
        self.closed = True
        self.outcome = outcome

    def _abort_open(self):
        for txn in self._open_txns():
            txn.abort()

    def abort(self):
        self._check_open()
        self._abort_open()
        self._close("aborted")

    rollback = abort

    def commit(self):
        """Commit across every written shard (see module docstring)."""
        self._check_open()
        co = self._co
        try:
            self._check_fenced()
        except StaleEpochError:
            self._abort_open()
            self._close("aborted (stale epoch)")
            raise
        participants = [(shard_id, txn) for shard_id, txn
                        in sorted(self._txns.items())
                        if txn._appends or txn._deleted]
        if len(participants) <= 1:
            co.stats.twopc_fast_path += 1
            try:
                for _, txn in participants:
                    txn.commit()
            except ConflictError:
                self._abort_open()
                self._close("aborted (conflict)")
                raise
            except CrashError:
                self._abort_open()
                self._close("crashed")
                raise
            self._abort_open()   # read-only snapshots just close
            self._close("committed")
            if participants:
                co._after_write()
            return
        self.xid = co.next_xid()
        prepared = []            # [(shard id, txn, ops)]
        try:
            for shard_id, txn in participants:
                if self.context is not None and self.context.active:
                    # The per-participant cancellation point: fires
                    # before this shard validates or force-logs its
                    # prepare.  Already-prepared shards roll back with
                    # best-effort decide-abort records; a shard whose
                    # prepare record is durable but undecided resolves
                    # to abort at recovery (presumed abort) because
                    # the decision was never logged.
                    self.context.checkpoint(CHECK_PREPARE)
                db = txn._db
                db.faults.inject("commit.validate")
                txn._validate()
                ops = txn._distill_ops()
                db.wal.append({"kind": "prepare", "xid": self.xid,
                               "ops": ops})
                prepared.append((shard_id, txn, ops))
        except GovernanceError:
            self._rollback_prepared(prepared)
            self._abort_open()
            self._close("cancelled")
            co.stats.twopc_aborts += 1
            raise
        except ConflictError:
            self._rollback_prepared(prepared)
            self._abort_open()
            self._close("aborted (conflict)")
            co.stats.twopc_aborts += 1
            raise
        except CrashError:
            # The participant being prepared died; its in-doubt prepare
            # (if the record made it to the WAL) resolves to abort at
            # recovery because no decision was ever logged.
            txn.closed = True
            txn.outcome = "crashed"
            self._rollback_prepared(prepared)
            self._abort_open()
            self._close("crashed")
            co.stats.twopc_aborts += 1
            raise
        # The commit point: one durable append to the decision log.
        try:
            co.decision_log.append(
                {"kind": "decision", "xid": self.xid,
                 "outcome": "commit",
                 "shards": [shard_id for shard_id, _, _ in prepared]})
        except CrashError:
            # Coordinator died before deciding: presumed abort — every
            # prepared shard resolves to abort from the silent log.
            for _, txn, _ in prepared:
                txn.closed = True
                txn.outcome = "crashed"
            self._abort_open()
            self._close("crashed")
            co.stats.twopc_aborts += 1
            raise
        # The decision is durable but not yet shipped to any shard: a
        # crash here leaves every participant in doubt with the
        # *committed* outcome only in the coordinator's log — the case
        # recover()/resolve_in_doubt must converge to commit on every
        # shard (swept in the 2PC crash tests).
        try:
            co.faults.inject("twopc.decided")
        except CrashError:
            for _, txn, _ in prepared:
                txn.closed = True
                txn.outcome = "crashed"
            self._abort_open()
            self._close("crashed")
            raise
        failure = None
        for shard_id, txn, ops in prepared:
            try:
                txn._db.wal.append({"kind": "decide", "xid": self.xid,
                                    "outcome": "commit"})
                txn._publish(ops)
                txn.closed = True
                txn.outcome = "committed"
            except CrashError as crash:
                # Cannot un-commit: the decision is durable.  The shard
                # catches up when recover() replays its WAL and settles
                # the in-doubt prepare from the decision log.
                txn.closed = True
                txn.outcome = "crashed"
                if failure is None:
                    failure = crash
        self._abort_open()
        self._close("committed")
        co.stats.twopc_commits += 1
        if failure is not None:
            raise failure
        co._after_write()

    def _rollback_prepared(self, prepared):
        """Best-effort decide-abort records for already-prepared shards
        (presumed abort makes them optional, but they keep a later WAL
        replay from carrying in-doubt state)."""
        for _, txn, _ in prepared:
            try:
                txn._db.wal.append({"kind": "decide", "xid": self.xid,
                                    "outcome": "abort"})
            except CrashError:
                pass
            txn.closed = True
            txn.outcome = "aborted (conflict elsewhere)"

    # -- context manager --------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self.closed:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False
