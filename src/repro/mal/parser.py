"""Textual MAL parser.

Accepts the straight-line subset the engine executes::

    age := sql.bind("people", "age");
    cand := algebra.select(age, 1927);
    name := sql.bind("people", "name");
    res := algebra.leftfetchjoin(cand, name);
    return res;

Literals: integers, floats, double-quoted strings, ``true``/``false``,
``nil``.  Multi-result calls use ``(a, b) := op(...)``.  ``#`` starts a
comment.  This parser exists for tests, the examples, and EXPLAIN-style
round-tripping; front-ends build :class:`MALProgram` objects directly.
"""

import re

from repro.mal.ast import Const, MALInstruction, MALProgram, Var

_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"
_OPNAME = r"[A-Za-z_][A-Za-z_0-9]*(?:\.[^\s(]+)?"

_INSTR_RE = re.compile(
    r"^(?:\(\s*(?P<multi>{0}(?:\s*,\s*{0})*)\s*\)|(?P<single>{0}))\s*"
    r":=\s*(?P<op>{1})\s*\((?P<args>.*)\)$".format(_IDENT, _OPNAME))
_CALL_RE = re.compile(r"^(?P<op>{0})\s*\((?P<args>.*)\)$".format(_OPNAME))
_RETURN_RE = re.compile(r"^return\s+(?P<vars>{0}(?:\s*,\s*{0})*)$".format(_IDENT))


class MALSyntaxError(ValueError):
    """Raised on malformed MAL text."""


def _split_args(text):
    """Split a comma-separated argument list, honouring string quotes."""
    args = []
    depth = 0
    current = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "\\":
                if i + 1 < len(text):
                    current.append(text[i + 1])
                    i += 1
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
            current.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            if ch in "([":
                depth += 1
            elif ch in ")]":
                depth -= 1
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return args


def _parse_literal(token):
    if token == "nil":
        return Const(None)
    if token == "true":
        return Const(True)
    if token == "false":
        return Const(False)
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise MALSyntaxError("unterminated string: {0}".format(token))
        body = token[1:-1]
        return Const(body.replace('\\"', '"').replace("\\\\", "\\"))
    try:
        return Const(int(token))
    except ValueError:
        pass
    try:
        return Const(float(token))
    except ValueError:
        pass
    if re.fullmatch(_IDENT, token):
        return Var(token)
    raise MALSyntaxError("cannot parse argument {0!r}".format(token))


def parse_program(text, name="user.main"):
    """Parse MAL text into a validated :class:`MALProgram`."""
    program = MALProgram(name=name)
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(";"):
            line = line[:-1].rstrip()
        match = _RETURN_RE.match(line)
        if match:
            program.returns = tuple(
                v.strip() for v in match.group("vars").split(","))
            continue
        match = _INSTR_RE.match(line)
        if match:
            if match.group("multi"):
                results = tuple(v.strip()
                                for v in match.group("multi").split(","))
            else:
                results = (match.group("single"),)
        else:
            match = _CALL_RE.match(line)
            if not match:
                raise MALSyntaxError("cannot parse line: {0!r}".format(
                    raw_line))
            results = ()
        args_text = match.group("args").strip()
        args = tuple(_parse_literal(tok)
                     for tok in _split_args(args_text)) if args_text else ()
        program.instructions.append(
            MALInstruction(results, match.group("op"), args))
    return program.validate()
