"""The MAL interpreter — tier three of Section 3.1.

Executes a :class:`repro.mal.ast.MALProgram` instruction by instruction
against the BAT Algebra kernel.  Every instruction fully materializes its
result BATs (operator-at-a-time), which is exactly the hook Section 6.1
identifies for *recycling*: an optional recycler object is consulted
before, and offered results after, each cache-marked instruction.

Special (non-kernel) operations:

* ``sql.bind(table, column)`` — resolve a readable column BAT through the
  catalog object handed to the interpreter;
* ``sql.count(table)`` — visible row count of a table;
* ``sql.tid(table)`` — candidate list of visible row oids (excluding
  deleted positions, per the delta design of Section 3.2);
* ``language.pass(x)`` — identity (used by optimizers to keep alignment).
"""

import time
from dataclasses import dataclass, field

from repro.core.bat import BAT
from repro.core.kernel import lookup_op
from repro.governance.context import CHECK_INTERP, NO_GOVERNANCE
from repro.mal.ast import Const, MALProgram, Var
from repro.observability.tracer import NO_TRACE

#: Simulated CPU cost of one interpreted MAL instruction (function-call
#: and dispatch overhead — the operator-at-a-time interpretation tax
#: Section 5 contrasts with vectorized execution).
DISPATCH_CYCLES = 50

#: Simulated CPU cycles per tuple materialized by an instruction.
CPU_CYCLES_PER_TUPLE = 4


@dataclass
class ExecutionStats:
    """Counters accumulated over one or more program runs."""

    instructions_executed: int = 0
    instructions_recycled: int = 0
    tuples_materialized: int = 0
    bytes_materialized: int = 0
    elapsed_seconds: float = 0.0
    op_counts: dict = field(default_factory=dict)

    def record(self, op, results, elapsed):
        self.instructions_executed += 1
        self.elapsed_seconds += elapsed
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        for value in results:
            if isinstance(value, BAT):
                self.tuples_materialized += len(value)
                self.bytes_materialized += value.tail_nbytes


class Interpreter:
    """Executes MAL programs over a catalog, optionally recycling.

    Parameters
    ----------
    catalog:
        An object with ``bind(table, column) -> BAT`` and
        ``count(table) -> int`` (duck-typed; the SQL front-end's catalog
        and the DataCell basket registry both qualify).
    recycler:
        Optional recycler with ``lookup(key)``/``store(key, value, cost,
        nbytes)`` (see :mod:`repro.recycling`).  Only instructions whose
        ``recycle`` flag was set by the recycler optimizer module are
        considered, unless the recycler declares ``cache_all = True``.
    tracer:
        A :class:`~repro.observability.tracer.Tracer` (default: the
        disabled :data:`~repro.observability.tracer.NO_TRACE`).  When
        enabled, every instruction runs inside an ``operator`` span
        carrying ``tuples_out`` plus recycler/cracking counters.
    hierarchy:
        Optional :class:`~repro.hardware.MemoryHierarchy` to charge the
        interpreter's simulated memory traffic against: each executed
        instruction reads its input BATs and writes its result BATs
        sequentially (the operator-at-a-time full-materialization
        pattern of Section 3.1) plus per-instruction CPU dispatch cost.
    """

    def __init__(self, catalog=None, recycler=None, tracer=None,
                 hierarchy=None):
        self.catalog = catalog
        self.recycler = recycler
        self.tracer = tracer if tracer is not None else NO_TRACE
        self.hierarchy = hierarchy
        self.stats = ExecutionStats()
        #: Governance context of the statement currently running (the
        #: SQL layer sets and restores it around each run).  Checked at
        #: the per-instruction checkpoint — the interpreter's
        #: cancellation point, reached *before* each instruction
        #: dispatches, so a kill here leaves no partial result bound.
        self.governance = NO_GOVERNANCE

    # -- argument resolution -------------------------------------------------

    def _resolve(self, arg, env):
        if isinstance(arg, Const):
            return arg.value
        try:
            return env[arg.name]
        except KeyError:
            raise NameError("undefined MAL variable {0!r}".format(arg.name)) \
                from None

    def _recycle_key(self, instr, values):
        """Value-identity cache key: op + per-argument identity.

        BAT arguments are identified by (bat_id, version) so in-place
        updates (delta merges, cracking) invalidate stale entries.
        """
        parts = [instr.op]
        for value in values:
            if isinstance(value, BAT):
                parts.append(("bat", value.bat_id, value.version))
            else:
                parts.append(("const", repr(value)))
        if instr.op.startswith("sql.") and values and \
                hasattr(self.catalog, "table_version"):
            # Catalog reads depend on table state, not argument identity.
            parts.append(self.catalog.table_version(values[0]))
        return tuple(parts)

    # -- execution ------------------------------------------------------------

    def run(self, program, bindings=None):
        """Execute a program; return {return-variable: value}."""
        if not isinstance(program, MALProgram):
            raise TypeError("expected a MALProgram")
        env = dict(bindings or {})
        for instr in program.instructions:
            self._execute(instr, env)
        return {name: env[name] for name in program.returns}

    def run_single(self, program, bindings=None):
        """Execute a program that returns exactly one value."""
        out = self.run(program, bindings=bindings)
        if len(out) != 1:
            raise ValueError("program returns {0} values".format(len(out)))
        return next(iter(out.values()))

    def _execute(self, instr, env):
        if not self.tracer.enabled and self.hierarchy is None:
            self._execute_plain(instr, env)
            return
        with self.tracer.span(instr.op, kind="operator") as span:
            self._execute_instrumented(instr, env, span)

    def _execute_plain(self, instr, env):
        gov = self.governance
        if gov.active:
            gov.checkpoint(CHECK_INTERP)
        values = [self._resolve(a, env) for a in instr.args]
        recycler = self.recycler
        use_recycler = recycler is not None and (
            instr.recycle or getattr(recycler, "cache_all", False))
        key = None
        if use_recycler:
            key = self._recycle_key(instr, values)
            hit, cached = recycler.lookup(key)
            if hit:
                self.stats.instructions_recycled += 1
                self._bind_results(instr, cached, env)
                return
        start = time.perf_counter()
        results = self._dispatch(instr, values)
        elapsed = time.perf_counter() - start
        self.stats.record(instr.op, results, elapsed)
        if gov.active:
            self._charge_governance(gov, results)
        if use_recycler:
            nbytes = sum(v.tail_nbytes for v in results if isinstance(v, BAT))
            recycler.store(key, results, cost=elapsed, nbytes=nbytes)
        self._bind_results(instr, results, env)

    def _execute_instrumented(self, instr, env, span):
        """One instruction under an operator span and/or simulated
        memory charging.  ``span`` is None when only a hierarchy is
        attached (tracing disabled)."""
        gov = self.governance
        if gov.active:
            gov.checkpoint(CHECK_INTERP)
        values = [self._resolve(a, env) for a in instr.args]
        recycler = self.recycler
        use_recycler = recycler is not None and (
            instr.recycle or getattr(recycler, "cache_all", False))
        key = None
        if use_recycler:
            key = self._recycle_key(instr, values)
            hit, cached = recycler.lookup(key)
            if hit:
                self.stats.instructions_recycled += 1
                if span is not None:
                    span.add("recycler_hits")
                    span.add("tuples_out",
                             sum(len(v) for v in cached
                                 if isinstance(v, BAT)))
                self._bind_results(instr, cached, env)
                return
        crack_stats = self._cracker_stats_before(instr, values)
        start = time.perf_counter()
        results = self._dispatch(instr, values)
        elapsed = time.perf_counter() - start
        self.stats.record(instr.op, results, elapsed)
        if gov.active:
            self._charge_governance(gov, results)
        self._charge_memory(values, results)
        if span is not None:
            span.add("tuples_out", sum(len(v) for v in results
                                       if isinstance(v, BAT)))
            if crack_stats is not None:
                touched, pieces = self._cracker_stats_delta(
                    instr, values, crack_stats)
                span.add("cracking_tuples_touched", touched)
                span.add("cracking_pieces", pieces)
        if use_recycler:
            nbytes = sum(v.tail_nbytes for v in results if isinstance(v, BAT))
            recycler.store(key, results, cost=elapsed, nbytes=nbytes)
        self._bind_results(instr, results, env)

    def _charge_governance(self, gov, results):
        """Charge every result BAT's tail bytes against the statement's
        memory budget — the operator-at-a-time materialization site."""
        nbytes = sum(v.tail_nbytes for v in results if isinstance(v, BAT))
        if nbytes:
            gov.charge(nbytes, CHECK_INTERP)

    def _charge_memory(self, values, results):
        """Charge the instruction's simulated memory traffic: read every
        input BAT sequentially, write every result BAT sequentially,
        plus CPU dispatch and per-tuple work."""
        hierarchy = self.hierarchy
        if hierarchy is None:
            return
        from repro.hardware import trace as trace_mod
        tuples = 0
        for value in values:
            if isinstance(value, BAT) and len(value):
                hierarchy.access(trace_mod.sequential(
                    value.tail_base, len(value), value.atom.width))
        for result in results:
            if isinstance(result, BAT) and len(result):
                hierarchy.access(trace_mod.sequential(
                    result.tail_base, len(result), result.atom.width))
                tuples += len(result)
        hierarchy.add_cpu_cycles(DISPATCH_CYCLES
                                 + CPU_CYCLES_PER_TUPLE * tuples)

    def _cracker_stats_before(self, instr, values):
        """(tuples touched, pieces) of the target cracker before a
        cracked select, or None when not applicable."""
        if instr.op != "sql.crackedselect" or len(values) < 2 or \
                not hasattr(self.catalog, "get"):
            return None
        try:
            return self.catalog.get(values[0]).cracker_stats(values[1])
        except (KeyError, AttributeError):
            return None

    def _cracker_stats_delta(self, instr, values, before):
        after = self._cracker_stats_before(instr, values)
        if after is None:
            return (0, 0)
        return (after[0] - before[0], after[1] - before[1])

    def _dispatch(self, instr, values):
        op = instr.op
        if op == "sql.bind":
            self._require_catalog(op)
            return (self.catalog.bind(*values),)
        if op == "sql.count":
            self._require_catalog(op)
            return (self.catalog.count(*values),)
        if op == "sql.tid":
            self._require_catalog(op)
            return (self.catalog.tid(*values),)
        if op == "sql.crackedselect":
            self._require_catalog(op)
            return (self.catalog.cracked_select(*values),)
        if op == "sql.joinindex":
            self._require_catalog(op)
            return (self.catalog.join_index(*values),)
        if op == "language.pass":
            return (values[0],)
        kernel_fn = lookup_op(op)
        out = kernel_fn(*values)
        if kernel_fn.n_results == 1:
            return (out,)
        return tuple(out)

    def _require_catalog(self, op):
        if self.catalog is None:
            raise RuntimeError(
                "{0} requires an interpreter with a catalog".format(op))

    def _bind_results(self, instr, results, env):
        if len(results) != len(instr.results):
            raise ValueError(
                "{0} produced {1} values for {2} result variables".format(
                    instr.op, len(results), len(instr.results)))
        for name, value in zip(instr.results, results):
            env[name] = value
