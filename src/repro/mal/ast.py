"""MAL program representation.

A MAL program is a flat list of instructions of the form::

    (r1, r2, ...) := module.operation(arg, arg, ...);

Each instruction maps onto exactly one kernel operation with zero degrees
of freedom (Section 3): arguments are variables or literal constants,
never expressions.  The final ``return`` statement names the program's
result variables.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Var:
    """Reference to a MAL variable."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal constant argument."""

    value: object

    def __str__(self):
        if isinstance(self.value, str):
            return '"{0}"'.format(self.value.replace('"', '\\"'))
        if self.value is None:
            return "nil"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


@dataclass
class MALInstruction:
    """One MAL statement: results := op(args).

    ``recycle`` is set by the recycler optimizer module on instructions
    whose results are worth caching (Section 6.1).
    """

    results: tuple
    op: str
    args: tuple
    recycle: bool = False

    def __post_init__(self):
        self.results = tuple(self.results)
        self.args = tuple(self.args)
        for arg in self.args:
            if not isinstance(arg, (Var, Const)):
                raise TypeError(
                    "MAL arguments must be Var or Const, got {0!r}".format(arg))

    @property
    def arg_vars(self):
        return tuple(a.name for a in self.args if isinstance(a, Var))

    def signature(self):
        """Structural identity used by CSE and the recycler."""
        return (self.op,) + tuple(
            ("v", a.name) if isinstance(a, Var) else ("c", repr(a.value))
            for a in self.args)

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        call = "{0}({1})".format(self.op, args)
        if not self.results:
            return call + ";"
        if len(self.results) == 1:
            lhs = self.results[0]
        else:
            lhs = "(" + ", ".join(self.results) + ")"
        marker = "  # <recycle>" if self.recycle else ""
        return "{0} := {1};{2}".format(lhs, call, marker)


@dataclass
class MALProgram:
    """A straight-line MAL program plus its return variables."""

    instructions: list = field(default_factory=list)
    returns: tuple = ()
    name: str = "user.main"

    def append(self, results, op, args):
        """Convenience builder used by front-end compilers."""
        instr = MALInstruction(tuple(results), op, tuple(args))
        self.instructions.append(instr)
        return instr

    def copy(self):
        return MALProgram(
            instructions=[MALInstruction(i.results, i.op, i.args, i.recycle)
                          for i in self.instructions],
            returns=tuple(self.returns),
            name=self.name)

    def defined_variables(self):
        names = set()
        for instr in self.instructions:
            names.update(instr.results)
        return names

    def validate(self):
        """Check def-before-use and that returns are defined."""
        defined = set()
        for instr in self.instructions:
            for name in instr.arg_vars:
                if name not in defined:
                    raise ValueError(
                        "variable {0!r} used before definition in: {1}".format(
                            name, instr))
            defined.update(instr.results)
        for name in self.returns:
            if name not in defined:
                raise ValueError("return of undefined variable "
                                 "{0!r}".format(name))
        return self

    def __str__(self):
        lines = ["function {0}():".format(self.name)]
        lines.extend("    " + str(i) for i in self.instructions)
        if self.returns:
            lines.append("    return {0};".format(", ".join(self.returns)))
        lines.append("end {0};".format(self.name))
        return "\n".join(lines)

    def __len__(self):
        return len(self.instructions)
