"""MAL — the MonetDB Assembler Language layer (Section 3.1).

MonetDB's query processing is organized in three tiers: front-ends compile
queries into *MAL programs* (this package's :class:`MALProgram`); a
pipeline of independent *optimizer modules* rewrites the program
(:mod:`repro.mal.optimizer`); and the *MAL interpreter*
(:class:`Interpreter`) executes it against the BAT Algebra kernel.
"""

from repro.mal.ast import Const, MALInstruction, MALProgram, Var
from repro.mal.parser import parse_program
from repro.mal.interpreter import ExecutionStats, Interpreter
from repro.mal.optimizer import (
    OptimizerModule,
    Pipeline,
    DEFAULT_PIPELINE,
    common_subexpression_elimination,
    constant_folding,
    dead_code_elimination,
)

__all__ = [
    "Var",
    "Const",
    "MALInstruction",
    "MALProgram",
    "parse_program",
    "Interpreter",
    "ExecutionStats",
    "OptimizerModule",
    "Pipeline",
    "DEFAULT_PIPELINE",
    "constant_folding",
    "common_subexpression_elimination",
    "dead_code_elimination",
]
