"""The optimizer pipeline — tier two of Section 3.1.

"The second tier consists of a collection of optimizer modules, which are
assembled into optimization pipelines."  Each module here is an
independent program-to-program rewrite; a :class:`Pipeline` runs them in
order.  The approach deliberately breaks with monolithic cost-based
optimization: every module makes one kind of decision.
"""

from repro.mal.optimizer.base import (
    IMPURE_OPS,
    OptimizerModule,
    Pipeline,
    is_pure,
)
from repro.mal.optimizer.constant_fold import constant_folding
from repro.mal.optimizer.cracking_rewrite import cracking_rewrite
from repro.mal.optimizer.cse import common_subexpression_elimination
from repro.mal.optimizer.deadcode import dead_code_elimination
from repro.mal.optimizer.recycle_mark import recycler_marking

DEFAULT_PIPELINE = Pipeline([
    constant_folding,
    common_subexpression_elimination,
    dead_code_elimination,
])

RECYCLING_PIPELINE = Pipeline([
    constant_folding,
    common_subexpression_elimination,
    dead_code_elimination,
    recycler_marking,
])

CRACKING_PIPELINE = Pipeline([
    constant_folding,
    common_subexpression_elimination,
    dead_code_elimination,
    cracking_rewrite,
])

__all__ = [
    "OptimizerModule",
    "Pipeline",
    "IMPURE_OPS",
    "is_pure",
    "constant_folding",
    "common_subexpression_elimination",
    "dead_code_elimination",
    "recycler_marking",
    "cracking_rewrite",
    "DEFAULT_PIPELINE",
    "RECYCLING_PIPELINE",
    "CRACKING_PIPELINE",
]
