"""Dead-code elimination: drop pure instructions whose results are unused."""

from repro.mal.ast import MALProgram
from repro.mal.optimizer.base import is_pure, optimizer


@optimizer("dead_code_elimination")
def dead_code_elimination(program):
    live = set(program.returns)
    kept_reversed = []
    for instr in reversed(program.instructions):
        used = any(name in live for name in instr.results)
        if used or not is_pure(instr.op):
            kept_reversed.append(instr)
            live.update(instr.arg_vars)
    return MALProgram(list(reversed(kept_reversed)), program.returns,
                      program.name)
