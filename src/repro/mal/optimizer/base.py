"""Optimizer-module plumbing: purity rules, module wrapper, pipeline."""

from dataclasses import dataclass

from repro.mal.ast import MALProgram

# Operations whose execution has side effects or depends on hidden state;
# they may never be eliminated, folded, or deduplicated.  Subsystems
# register their own (e.g. the DataCell adds its basket operations).
IMPURE_OPS = set()


def register_impure(op_name):
    IMPURE_OPS.add(op_name)


def is_pure(op_name):
    return op_name not in IMPURE_OPS


@dataclass(frozen=True)
class OptimizerModule:
    """A named program-to-program rewrite."""

    name: str
    rewrite: callable

    def __call__(self, program):
        out = self.rewrite(program.copy())
        if not isinstance(out, MALProgram):
            raise TypeError("optimizer {0!r} must return a MALProgram".format(
                self.name))
        return out.validate()


def optimizer(name):
    """Decorator turning a rewrite function into an OptimizerModule."""
    def wrap(fn):
        return OptimizerModule(name, fn)
    return wrap


class Pipeline:
    """An ordered sequence of optimizer modules."""

    def __init__(self, modules):
        self.modules = list(modules)

    def optimize(self, program):
        for module in self.modules:
            program = module(program)
        return program

    def __call__(self, program):
        return self.optimize(program)

    def with_module(self, module):
        """A new pipeline with one more module appended."""
        return Pipeline(self.modules + [module])

    def __repr__(self):
        return "Pipeline([{0}])".format(
            ", ".join(m.name for m in self.modules))
