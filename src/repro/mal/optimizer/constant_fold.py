"""Constant folding: evaluate scalar ``calc.*`` calls on literals.

Front-ends emit scalar expressions (``calc.+``, ``calc.<`` ...) for the
constant parts of predicates; folding them at optimization time removes
them from the interpreted critical path.
"""

from repro.core.kernel import KERNEL
from repro.mal.ast import Const, MALInstruction, MALProgram
from repro.mal.optimizer.base import is_pure, optimizer


def _fold_value(instr):
    fn = KERNEL[instr.op]
    return fn(*[a.value for a in instr.args])


@optimizer("constant_folding")
def constant_folding(program):
    folded = {}  # var name -> Const
    kept = []
    for instr in program.instructions:
        # Substitute previously folded variables into the arguments.
        args = tuple(folded.get(a.name, a) if not isinstance(a, Const) else a
                     for a in instr.args)
        instr = MALInstruction(instr.results, instr.op, args, instr.recycle)
        can_fold = (instr.op.startswith("calc.")
                    and instr.op in KERNEL
                    and is_pure(instr.op)
                    and len(instr.results) == 1
                    and all(isinstance(a, Const) for a in instr.args))
        if can_fold:
            folded[instr.results[0]] = Const(_fold_value(instr))
        else:
            kept.append(instr)
    # Returned variables must stay materialized: re-emit a folded constant
    # through an identity instruction if it is returned.
    for name in program.returns:
        if name in folded:
            kept.append(MALInstruction((name,), "language.pass",
                                       (folded[name],)))
    return MALProgram(kept, program.returns, program.name)
