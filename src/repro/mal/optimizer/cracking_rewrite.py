"""Cracking as an optimizer module (§6.1).

MonetDB deploys cracking by swapping the selection operators inside the
optimizer pipeline; this module does the same: a range (or equality)
select over a freshly bound column restricted to the table's visible
tids is rewritten into ``sql.crackedselect``, whose kernel
implementation reorganizes the column inside the query's critical path.

The rewrite is *unconditionally safe*: the kernel side falls back to a
plain select for column types the cracker does not support.
"""

from repro.mal.ast import Const, MALInstruction, MALProgram, Var
from repro.mal.optimizer.base import optimizer


@optimizer("cracking_rewrite")
def cracking_rewrite(program):
    binds = {}  # var -> (table, column) from sql.bind with const args
    tids = {}   # var -> table from sql.tid with const arg
    out = []
    for instr in program.instructions:
        if instr.op == "sql.bind" and len(instr.args) == 2 and \
                all(isinstance(a, Const) for a in instr.args) and \
                len(instr.results) == 1:
            binds[instr.results[0]] = (instr.args[0].value,
                                       instr.args[1].value)
            out.append(instr)
            continue
        if instr.op == "sql.tid" and len(instr.args) == 1 and \
                isinstance(instr.args[0], Const) and \
                len(instr.results) == 1:
            tids[instr.results[0]] = instr.args[0].value
            out.append(instr)
            continue
        rewritten = _rewrite_select(instr, binds, tids)
        out.append(rewritten if rewritten is not None else instr)
    return MALProgram(out, program.returns, program.name)


def _rewrite_select(instr, binds, tids):
    """selectrange/select over (bind, tid) of one table -> crackedselect."""
    if instr.op == "algebra.selectrange" and len(instr.args) == 6:
        col, lo, hi, lo_incl, hi_incl, cand = instr.args
        if not (isinstance(col, Var) and isinstance(cand, Var)):
            return None
        if not all(isinstance(a, Const)
                   for a in (lo, hi, lo_incl, hi_incl)):
            return None
        bound = binds.get(col.name)
        table = tids.get(cand.name)
        if bound is None or table is None or bound[0] != table:
            return None
        return MALInstruction(
            instr.results, "sql.crackedselect",
            (Const(bound[0]), Const(bound[1]), lo, hi, lo_incl, hi_incl),
            instr.recycle)
    if instr.op == "algebra.select" and len(instr.args) == 3:
        col, value, cand = instr.args
        if not (isinstance(col, Var) and isinstance(value, Const)
                and isinstance(cand, Var)):
            return None
        if not isinstance(value.value, int) or \
                isinstance(value.value, bool):
            return None
        bound = binds.get(col.name)
        table = tids.get(cand.name)
        if bound is None or table is None or bound[0] != table:
            return None
        return MALInstruction(
            instr.results, "sql.crackedselect",
            (Const(bound[0]), Const(bound[1]), value, value,
             Const(True), Const(True)),
            instr.recycle)
    return None
