"""Recycler instrumentation (Section 6.1).

Marks the instructions whose materialized results are worth keeping in
the recycler cache.  Cheap positional plumbing (``bat.mirror``,
``language.pass``) is left unmarked: caching it would pollute the cache
for no saved work.
"""

from repro.mal.ast import MALProgram
from repro.mal.optimizer.base import optimizer

RECYCLABLE_PREFIXES = ("algebra.", "aggr.", "group.", "batcalc.",
                       "candidates.")

#: Catalog reads: cacheable because the interpreter folds the table
#: version into their keys (stale entries miss automatically).
RECYCLABLE_OPS = ("sql.bind", "sql.tid", "sql.count")


@optimizer("recycler_marking")
def recycler_marking(program):
    for instr in program.instructions:
        if instr.op.startswith(RECYCLABLE_PREFIXES) or \
                instr.op in RECYCLABLE_OPS:
            instr.recycle = True
    return MALProgram(program.instructions, program.returns, program.name)
