"""Common-subexpression elimination.

The operator-at-a-time paradigm materializes every intermediate, so two
textually identical instructions compute the same BAT twice; CSE keeps
the first and renames away the second.  This is the *static* half of the
double-work avoidance story — the recycler (Section 6.1) is the dynamic,
cross-query half.
"""

from repro.mal.ast import Const, MALInstruction, MALProgram, Var
from repro.mal.optimizer.base import is_pure, optimizer


@optimizer("common_subexpression_elimination")
def common_subexpression_elimination(program):
    seen = {}     # signature -> result names of the first occurrence
    aliases = {}  # duplicate var name -> canonical var name
    kept = []
    for instr in program.instructions:
        args = tuple(Var(aliases.get(a.name, a.name))
                     if isinstance(a, Var) else a for a in instr.args)
        instr = MALInstruction(instr.results, instr.op, args, instr.recycle)
        if not is_pure(instr.op):
            kept.append(instr)
            continue
        sig = instr.signature()
        prior = seen.get(sig)
        if prior is not None and len(prior) == len(instr.results):
            for dup, canonical in zip(instr.results, prior):
                aliases[dup] = canonical
            continue
        seen[sig] = instr.results
        kept.append(instr)
    returns = tuple(aliases.get(name, name) for name in program.returns)
    return MALProgram(kept, returns, program.name)
