"""Cost-model validation: predicted cycles vs traced actuals.

The Section 4.4 cost model earns its keep only if its predictions
track what the trace simulator actually charges.  This harness replays
the basic access patterns underlying experiments E01-E05 — sequential
traversal (E03/E05 streaming), random traversal and repeated random
access (E02 probes, E08 positional lookup), the interleaved
multi-cursor scatter in both its in-cache and thrashing zones (E01),
and the composed radix-cluster and hash-join algorithms themselves
(E01/E02/E04) — through a fresh simulated hierarchy, and reports the
relative error of the model's prediction per pattern.

Bench E19 prints the resulting table; the tier-1 error-band test
asserts every pattern stays within :data:`ERROR_BAND`.
"""

from dataclasses import dataclass

import numpy as np

from repro.costmodel.model import (
    predict_radix_cluster,
    predict_simple_hash_join,
    total_cycles,
)
from repro.costmodel.patterns import (
    DataRegion,
    interleaved_multi_cursor,
    random_traversal,
    repeated_random_access,
    sequential_traversal,
)
from repro.hardware import trace as trace_mod
from repro.hardware.profiles import SCALED_DEFAULT
from repro.observability.tracer import NO_TRACE

#: Default item width: an 8-byte value, the BAT tail convention.
ITEM_SIZE = 8

#: Per-pattern relative-error band the tier-1 test asserts.  The basic
#: patterns are modelled directly and stay tight; the composed
#: algorithms inherit the model's factor-of-two accuracy claim (E04).
ERROR_BAND = {
    "sequential_traversal": 0.10,
    "random_traversal": 0.35,
    "repeated_random_access": 0.35,
    "multi_cursor_resident": 0.35,
    # The thrash zone deliberately charges *every* touch at full random
    # cost (a worst-case bound); the simulator still enjoys partial
    # residency, so this pattern only holds to the paper's factor-2.
    "multi_cursor_thrashing": 1.0,
    "radix_cluster": 1.0,
    "hash_join": 1.0,
}


@dataclass
class PatternReport:
    """Predicted vs traced cycles for one access pattern."""

    pattern: str
    predicted: float
    actual: int

    @property
    def relative_error(self):
        if self.actual == 0:
            return 0.0 if self.predicted == 0 else float("inf")
        return abs(self.predicted - self.actual) / self.actual

    @property
    def ratio(self):
        return self.predicted / self.actual if self.actual else float("inf")


def _multi_cursor_addresses(base, count, cursors, item_size, rng):
    """The radix-scatter write stream: each item goes to a uniformly
    random cursor (as uniform key values do), the chosen cursor then
    advancing sequentially through its own region.  A round-robin
    cursor choice would produce ascending — prefetchable — misses the
    real scatter never sees."""
    cursor_ids = rng.integers(0, cursors, size=count)
    order = np.argsort(cursor_ids, kind="stable")
    sorted_ids = cursor_ids[order]
    starts = np.searchsorted(sorted_ids, np.arange(cursors))
    positions = np.empty(count, dtype=np.int64)
    positions[order] = np.arange(count, dtype=np.int64) \
        - starts[sorted_ids]
    per_cursor = -(-count // cursors)
    slots = cursor_ids * per_cursor + positions
    return base + slots * item_size


def _basic_cases(n, seed):
    """(name, predict(profile) -> cycles, replay(hierarchy)) triples."""
    region = DataRegion(n, ITEM_SIZE)
    base = 1 << 26  # fixed notional base: runs are reproducible
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n)
    uniform = rng.integers(0, n, size=n)
    resident_cursors = 8
    thrash_cursors = 1 << 12

    def replay_sequential(h):
        h.access(trace_mod.sequential(base, n, ITEM_SIZE))

    def replay_random(h):
        h.access(trace_mod.gather(base, permutation, ITEM_SIZE))

    def replay_repeated(h):
        h.access(trace_mod.gather(base, uniform, ITEM_SIZE))

    resident_trace = _multi_cursor_addresses(base, n, resident_cursors,
                                             ITEM_SIZE, rng)
    thrash_trace = _multi_cursor_addresses(base, n, thrash_cursors,
                                           ITEM_SIZE, rng)

    def replay_resident(h):
        h.access(resident_trace)

    def replay_thrashing(h):
        h.access(thrash_trace)

    return [
        ("sequential_traversal",
         lambda p: sequential_traversal(region, p).cycles(p),
         replay_sequential),
        ("random_traversal",
         lambda p: random_traversal(region, p).cycles(p),
         replay_random),
        ("repeated_random_access",
         lambda p: repeated_random_access(region, n, p).cycles(p),
         replay_repeated),
        ("multi_cursor_resident",
         lambda p: interleaved_multi_cursor(region, resident_cursors,
                                            p).cycles(p),
         replay_resident),
        ("multi_cursor_thrashing",
         lambda p: interleaved_multi_cursor(region, thrash_cursors,
                                            p).cycles(p),
         replay_thrashing),
    ]


def _algorithm_cases(n, seed):
    from repro.joins import radix_cluster, simple_hash_join
    from repro.joins.radix_cluster import split_bits
    from repro.workloads import dense_keys, uniform_ints

    bits, passes = 6, 2
    pass_bits = split_bits(bits, passes)
    values = uniform_ints(n, seed=seed)
    left = dense_keys(n, seed=seed + 1)
    right = dense_keys(n, seed=seed + 2)

    def replay_cluster(h):
        radix_cluster(values, bits, passes, hierarchy=h)

    def replay_join(h):
        simple_hash_join(left, right, hierarchy=h)

    return [
        ("radix_cluster",
         lambda p: total_cycles(
             predict_radix_cluster(n, bits, pass_bits, p), p),
         replay_cluster),
        ("hash_join",
         lambda p: total_cycles(predict_simple_hash_join(n, n, p), p),
         replay_join),
    ]


def validate_cost_model(profile=SCALED_DEFAULT, n=1 << 14, seed=7,
                        tracer=NO_TRACE):
    """Replay every pattern; return a list of :class:`PatternReport`.

    Each replay runs against a fresh hierarchy built from ``profile``.
    When a tracer is given, every replay is wrapped in a span carrying
    the traced hardware counters plus ``predicted_cycles`` /
    ``relative_error`` attributes.
    """
    reports = []
    for name, predict, replay in _basic_cases(n, seed) \
            + _algorithm_cases(n, seed):
        predicted = float(predict(profile))
        hierarchy = profile.make_hierarchy()
        if tracer.enabled:
            tracer.watch(hierarchy)
            with tracer.span(name, kind="pattern", n=n) as span:
                replay(hierarchy)
            span.attrs["predicted_cycles"] = predicted
        else:
            replay(hierarchy)
        report = PatternReport(name, predicted, hierarchy.total_cycles)
        if tracer.enabled:
            span.attrs["relative_error"] = report.relative_error
        reports.append(report)
    return reports


def check_error_band(reports, band=None):
    """Reports violating the error band; empty means the model holds."""
    band = ERROR_BAND if band is None else band
    violations = []
    for report in reports:
        limit = band.get(report.pattern)
        if limit is not None and report.relative_error > limit:
            violations.append(report)
    return violations
