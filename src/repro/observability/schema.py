"""Span-tree schema validation (no external dependency).

The exported span tree (``Span.to_dict``) is plain JSON with a fixed
shape; :func:`validate_span_tree` checks it recursively and raises
:class:`SpanSchemaError` naming the offending path.  The differential
oracle validates every profiled query's tree through this, so a
malformed exporter cannot ship silently.
"""

_SCALAR_TYPES = (str, int, float, bool, type(None))


class SpanSchemaError(ValueError):
    """A span-tree dict violates the exported schema."""


def _fail(path, message):
    raise SpanSchemaError("{0}: {1}".format(path or "<root>", message))


def validate_span_tree(node, path="", max_depth=64):
    """Validate one span dict (and its subtree); returns the span count.

    Required keys: ``name`` (non-empty str), ``kind`` (non-empty str),
    ``attrs`` (dict of str -> JSON scalar), ``counters`` (dict of
    str -> finite int/float), ``children`` (list of span dicts).  No
    extra keys are allowed.
    """
    if max_depth <= 0:
        _fail(path, "span tree deeper than the schema bound")
    if not isinstance(node, dict):
        _fail(path, "span must be a dict, got {0}".format(
            type(node).__name__))
    expected = {"name", "kind", "attrs", "counters", "children"}
    extra = set(node) - expected
    if extra:
        _fail(path, "unexpected keys {0}".format(sorted(extra)))
    missing = expected - set(node)
    if missing:
        _fail(path, "missing keys {0}".format(sorted(missing)))
    for key in ("name", "kind"):
        if not isinstance(node[key], str) or not node[key]:
            _fail(path, "{0} must be a non-empty string".format(key))
    here = (path + "/" if path else "") + node["name"]
    if not isinstance(node["attrs"], dict):
        _fail(here, "attrs must be a dict")
    for key, value in node["attrs"].items():
        if not isinstance(key, str):
            _fail(here, "attr keys must be strings")
        if not isinstance(value, _SCALAR_TYPES):
            _fail(here, "attr {0!r} must be a JSON scalar, got {1}".format(
                key, type(value).__name__))
    if not isinstance(node["counters"], dict):
        _fail(here, "counters must be a dict")
    for key, value in node["counters"].items():
        if not isinstance(key, str) or not key:
            _fail(here, "counter names must be non-empty strings")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(here, "counter {0!r} must be a number, got {1}".format(
                key, type(value).__name__))
        if value != value or value in (float("inf"), float("-inf")):
            _fail(here, "counter {0!r} must be finite".format(key))
    if not isinstance(node["children"], list):
        _fail(here, "children must be a list")
    count = 1
    for i, child in enumerate(node["children"]):
        count += validate_span_tree(
            child, "{0}[{1}]".format(here, i), max_depth - 1)
    return count
