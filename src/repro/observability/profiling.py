"""The object ``Database.profile`` returns: span tree + result + views."""

from repro.observability.tracer import render_text


class QueryProfile:
    """One profiled query: the result plus its full trace.

    Attributes
    ----------
    root:
        The query's root :class:`~repro.observability.tracer.Span`.
    result:
        The query's :class:`~repro.sql.database.ResultSet`.
    hierarchy:
        The :class:`~repro.hardware.hierarchy.MemoryHierarchy` the
        profiled (serial) run was charged against, or None for
        parallel runs (each worker then owns a private hierarchy; see
        ``worker_set``).
    worker_set:
        The :class:`~repro.parallel.context.WorkerSet` of a parallel
        profile run, or None.
    """

    def __init__(self, root, result, hierarchy=None, worker_set=None):
        self.root = root
        self.result = result
        self.hierarchy = hierarchy
        self.worker_set = worker_set

    @property
    def cycles(self):
        """Total simulated cycles attributed across the span tree."""
        return self.root.inclusive("cycles")

    def counter(self, name):
        """A named counter summed over the whole tree."""
        return self.root.inclusive(name)

    def text(self):
        """The EXPLAIN ANALYZE text tree."""
        return render_text(self.root)

    def to_dict(self):
        return self.root.to_dict()

    def to_json(self, indent=None):
        return self.root.to_json(indent=indent)

    def __str__(self):
        return self.text()

    def __repr__(self):
        return "QueryProfile({0!r}, {1} spans, {2} cycles)".format(
            self.root.name, sum(1 for _ in self.root.walk()), self.cycles)
