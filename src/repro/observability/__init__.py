"""Query-level observability: tracing spans, counters, and validation.

The subsystem has three layers:

* :mod:`repro.observability.tracer` — zero-dependency hierarchical
  spans (query -> pipeline -> operator -> morsel) with named counters
  and optional per-span snapshots of simulated hardware counters;
* :mod:`repro.observability.profiling` — the :class:`QueryProfile`
  returned by ``Database.profile`` (span tree + result + renderings);
* :mod:`repro.observability.validate` — the cost-model validation
  harness replaying the E01-E05 access patterns against the trace
  simulator (imported lazily; it pulls in the join algorithms).

Tracing is *off by default*: every instrumented code path checks a
single ``tracer.enabled`` boolean, and the shared :data:`NO_TRACE`
null tracer makes the disabled path allocation-free.
"""

from repro.observability.profiling import QueryProfile
from repro.observability.schema import validate_span_tree
from repro.observability.tracer import NO_TRACE, Span, Tracer, render_text

__all__ = [
    "NO_TRACE",
    "QueryProfile",
    "Span",
    "Tracer",
    "render_text",
    "validate_span_tree",
]
