"""Hierarchical tracing spans and named counters.

A :class:`Span` is one timed region of query execution (a query, a
pipeline, one operator, one morsel); spans nest, forming a tree per
traced query.  Counters are plain named numbers attached to the span
they occurred under: ``tuples_out``, ``vectors``, ``wal_bytes``,
``recycler_hits``, ``cracking_tuples_touched`` and the hardware
counters below.

Hardware accounting: a tracer can *watch* one or more simulated
:class:`~repro.hardware.hierarchy.MemoryHierarchy` objects.  Watched
counters (``cycles``, ``cpu_cycles``, per-level ``<L>_misses``,
``TLB_misses``, ``accesses``) are snapshotted when a span opens and
closes; the delta is attributed *exclusively* — a span's own counters
cover only work not already attributed to its children — so summing
any counter over every span of a tree reproduces the hierarchy's
global counters exactly, and :meth:`Span.inclusive` reconstructs the
usual subtree totals.

Overhead discipline: instrumented code guards every span/counter call
with ``tracer.enabled``; :data:`NO_TRACE` (the default tracer
everywhere) answers ``enabled = False`` and turns all methods into
no-ops, so a database that never profiles pays one attribute test per
instrumented site.
"""

import json


class Span:
    """One node of a trace tree: name, kind, attributes, counters.

    ``counters`` holds this span's *own* (exclusive) values; use
    :meth:`inclusive` for subtree totals.  ``attrs`` carries static
    JSON-able context (SQL text, worker id, morsel range, ...).
    """

    __slots__ = ("name", "kind", "attrs", "counters", "children",
                 "_hw_enter", "_hw_children")

    def __init__(self, name, kind="span", attrs=None):
        self.name = name
        self.kind = kind
        self.attrs = dict(attrs) if attrs else {}
        self.counters = {}
        self.children = []
        self._hw_enter = None     # watched-hierarchy totals at open
        self._hw_children = None  # counters already attributed below

    def add(self, counter, value=1):
        """Accumulate a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def counter(self, name, default=0):
        return self.counters.get(name, default)

    def inclusive(self, name):
        """This span's counter plus the whole subtree's."""
        total = self.counters.get(name, 0)
        for child in self.children:
            total += child.inclusive(name)
        return total

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """First span named ``name`` in the subtree, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name=None, kind=None):
        """Every subtree span matching the given name and/or kind."""
        return [span for span in self.walk()
                if (name is None or span.name == name)
                and (kind is None or span.kind == kind)]

    def to_dict(self):
        """JSON-able dict form (the exported span-tree schema)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self):
        return "Span({0!r}, kind={1!r}, {2} children)".format(
            self.name, self.kind, len(self.children))


class _NullContext:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name, kind="span", **attrs):
        return _NULL_CONTEXT

    def begin(self, name, kind="span", **attrs):
        return None

    def end(self):
        return None

    def end_all(self):
        return None

    def add(self, counter, value=1):
        return None

    def watch(self, hierarchy):
        return None

    def adopt(self, spans):
        return None


NO_TRACE = NullTracer()


class _SpanContext:
    """Context manager pairing one begin/end on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects span trees; one instance per traced query (or worker).

    Spans open with :meth:`span` (a context manager) or the explicit
    :meth:`begin`/:meth:`end` pair — the latter exists for spans whose
    lifetime does not match a Python block (per-morsel spans inside a
    pull-based operator).  Completed top-level spans accumulate in
    ``roots``.
    """

    enabled = True

    def __init__(self):
        self.roots = []
        self._stack = []
        self._hierarchies = []

    # -- hardware watching -------------------------------------------------

    def watch(self, hierarchy):
        """Snapshot this hierarchy's counters around every span."""
        if hierarchy is not None and hierarchy not in self._hierarchies:
            self._hierarchies.append(hierarchy)

    def _hw_totals(self):
        totals = {}
        for h in self._hierarchies:
            totals["cycles"] = totals.get("cycles", 0) + h.total_cycles
            totals["cpu_cycles"] = totals.get("cpu_cycles", 0) \
                + h.cpu_cycles
            totals["accesses"] = totals.get("accesses", 0) + h.accesses
            for cache in h.caches:
                key = cache.name + "_misses"
                totals[key] = totals.get(key, 0) + cache.stats.misses
            if h.tlb is not None:
                totals["TLB_misses"] = totals.get("TLB_misses", 0) \
                    + h.tlb.stats.misses
        return totals

    # -- span lifecycle ----------------------------------------------------

    def span(self, name, kind="span", **attrs):
        """Open a span as a context manager."""
        return _SpanContext(self, self.begin(name, kind=kind, **attrs))

    def begin(self, name, kind="span", **attrs):
        """Open a span explicitly; pair with :meth:`end`."""
        span = Span(name, kind=kind, attrs=attrs)
        if self._hierarchies:
            span._hw_enter = self._hw_totals()
            span._hw_children = {}
        self._stack.append(span)
        return span

    def end(self):
        """Close the innermost open span."""
        if not self._stack:
            raise RuntimeError("no open span to end")
        self._close(self._stack[-1])

    def end_all(self):
        """Close every open span (cleanup after failures)."""
        while self._stack:
            self.end()

    def _close(self, span):
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError("span {0!r} is not the innermost open "
                               "span".format(span.name))
        self._stack.pop()
        if span._hw_enter is not None:
            exit_totals = self._hw_totals()
            attributed = span._hw_children
            for key, total in exit_totals.items():
                delta = total - span._hw_enter.get(key, 0)
                own = delta - attributed.get(key, 0)
                if own:
                    span.add(key, own)
            if self._stack:
                parent = self._stack[-1]
                if parent._hw_children is not None:
                    for key, total in exit_totals.items():
                        delta = total - span._hw_enter.get(key, 0)
                        parent._hw_children[key] = \
                            parent._hw_children.get(key, 0) + delta
        span._hw_enter = None
        span._hw_children = None
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- counters and merging ----------------------------------------------

    @property
    def current(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def add(self, counter, value=1):
        """Accumulate a counter on the innermost open span."""
        if self._stack:
            self._stack[-1].add(counter, value)

    def adopt(self, spans):
        """Graft completed span trees (e.g. a worker tracer's roots)
        under the innermost open span — the merge step of per-worker
        span streams."""
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(spans)

    def to_dict(self):
        return {"roots": [span.to_dict() for span in self.roots]}

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# -- rendering ----------------------------------------------------------------

_TREE_COUNTER_ORDER = ("tuples_out", "vectors", "cycles", "cpu_cycles",
                       "L1_misses", "L2_misses", "L3_misses", "LLC_misses",
                       "TLB_misses", "recycler_hits", "wal_bytes",
                       "cracking_tuples_touched", "cracking_pieces")


def _format_counters(span):
    shown = []
    cycles = span.inclusive("cycles")
    if cycles and "cycles" not in span.counters:
        shown.append("cycles~={0}".format(cycles))
    for name in _TREE_COUNTER_ORDER:
        if name in span.counters:
            shown.append("{0}={1}".format(name, span.counters[name]))
    for name in sorted(span.counters):
        if name not in _TREE_COUNTER_ORDER:
            shown.append("{0}={1}".format(name, span.counters[name]))
    return " ".join(shown)


def _span_label(span):
    label = span.name
    extras = []
    for key in ("worker", "index", "engine", "workers"):
        if key in span.attrs:
            extras.append("{0}={1}".format(key, span.attrs[key]))
    if extras:
        label += " [" + " ".join(extras) + "]"
    return label


def render_text(span, _prefix="", _is_last=True, _is_root=True):
    """Render a span tree as a compact EXPLAIN ANALYZE style text tree."""
    lines = []
    if _is_root:
        head = _span_label(span)
    else:
        head = _prefix + ("`- " if _is_last else "|- ") + _span_label(span)
    counters = _format_counters(span)
    if counters:
        head += "  (" + counters + ")"
    lines.append(head)
    child_prefix = "" if _is_root else _prefix + ("   " if _is_last
                                                  else "|  ")
    for i, child in enumerate(span.children):
        lines.extend(render_text(child, child_prefix,
                                 i == len(span.children) - 1, False))
    if _is_root:
        return "\n".join(lines)
    return lines
