"""Database cracking (Section 6.1, [22, 18]).

"The intuition is to focus on a non-ordered table organization,
extending a partial index with each query, i.e., the physical data
layout is reorganized within the critical path of query processing."

* :class:`CrackerColumn` — the self-organizing column: every range
  select partitions ("cracks") exactly the pieces the predicate
  touches, so the column converges towards sorted-ness where, and only
  where, queries look.  No knobs.
* :mod:`repro.cracking.updates` — cracking under updates: pending
  insert/delete deltas merged into the cracked layout without
  discarding the index ([18]).
* :mod:`repro.cracking.baselines` — the competitors of experiment E9:
  full scans and an upfront fully-sorted index.
"""

from repro.cracking.cracker_column import CrackerColumn, Piece
from repro.cracking.updates import CrackedStore
from repro.cracking.baselines import FullSortIndex, ScanSelect

__all__ = [
    "CrackerColumn",
    "Piece",
    "CrackedStore",
    "FullSortIndex",
    "ScanSelect",
]
