"""The cracker column: query-driven in-place partial sorting.

The column is held as a pair of aligned arrays (values, original oids)
plus the *cracker index*: boundary pivots partitioning the array into
pieces.  The invariant, for boundary ``(pivot, position)``: every value
before ``position`` is ``< pivot`` and every value from ``position`` on
is ``>= pivot``.  Pieces shrink as queries crack them; a range select
costs work proportional only to the pieces at the range's two edges —
which is why the first query costs about a scan and later queries
converge to index-lookup cost (experiment E9).
"""

import bisect
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Piece:
    """A maximal uncracked segment: positions [lo, hi)."""

    lo: int
    hi: int

    @property
    def size(self):
        return self.hi - self.lo


class CrackerColumn:
    """A self-organizing integer column.

    ``select_range(lo, hi)`` returns the *original oids* of qualifying
    tuples, cracking the touched pieces as a side effect.  The counter
    ``tuples_touched`` accumulates reorganization work for experiments.
    """

    def __init__(self, values, hierarchy=None, item_size=16):
        """``hierarchy``: optional memory-hierarchy simulator; each
        crack then feeds its access pattern (sequential read of the
        cracked piece, two partition write cursors) into it —
        cracking's cache behaviour is scan-like, never random."""
        values = np.asarray(values)
        self.values = values.copy()
        self.oids = np.arange(len(values), dtype=np.int64)
        # Parallel sorted lists: boundary pivots and their positions.
        self._pivots = []
        self._positions = []
        self.tuples_touched = 0
        self.cracks_performed = 0
        self.hierarchy = hierarchy
        self.item_size = item_size  # value + oid per tuple
        self._base = None
        if hierarchy is not None:
            from repro.core.bat import global_address_space
            self._base = global_address_space.allocate(
                max(len(values) * item_size, 1))

    def __len__(self):
        return len(self.values)

    # -- the cracker index --------------------------------------------------

    def pieces(self):
        """Current pieces, in position order."""
        cuts = [0] + self._positions + [len(self.values)]
        return [Piece(lo, hi) for lo, hi in zip(cuts, cuts[1:])
                if hi > lo]

    def n_pieces(self):
        return len(self.pieces())

    def _cut_for(self, pivot):
        """Position of an existing boundary for ``pivot``, or None."""
        i = bisect.bisect_left(self._pivots, pivot)
        if i < len(self._pivots) and self._pivots[i] == pivot:
            return self._positions[i]
        return None

    def _piece_containing(self, pivot):
        """The [lo, hi) slice that must be cracked for ``pivot``."""
        i = bisect.bisect_left(self._pivots, pivot)
        lo = self._positions[i - 1] if i > 0 else 0
        hi = self._positions[i] if i < len(self._positions) \
            else len(self.values)
        return lo, hi

    def _crack(self, pivot):
        """Ensure a boundary exists for ``pivot``; return its position.

        Partitions (in place) the single piece containing the pivot:
        values < pivot move to the front — one crack-in-two.
        """
        existing = self._cut_for(pivot)
        if existing is not None:
            return existing
        lo, hi = self._piece_containing(pivot)
        segment = self.values[lo:hi]
        mask = segment < pivot
        cut = lo + int(np.count_nonzero(mask))
        if 0 < len(segment):
            order = np.argsort(~mask, kind="stable")
            self.values[lo:hi] = segment[order]
            self.oids[lo:hi] = self.oids[lo:hi][order]
            self.tuples_touched += len(segment)
            self.cracks_performed += 1
            if self.hierarchy is not None:
                self._trace_crack(lo, hi, order)
        i = bisect.bisect_left(self._pivots, pivot)
        self._pivots.insert(i, pivot)
        self._positions.insert(i, cut)
        return cut

    def _trace_crack(self, lo, hi, order):
        """One crack's access pattern: sequential piece read, two
        sequential partition-write cursors — never a random scatter."""
        from repro.hardware import trace as trace_mod
        n = hi - lo
        reads = trace_mod.sequential(self._base + lo * self.item_size,
                                     n, self.item_size)
        dest = np.empty(n, dtype=np.int64)
        dest[order] = np.arange(n, dtype=np.int64)
        writes = self._base + (lo + dest) * self.item_size
        self.hierarchy.access(trace_mod.interleave(reads, writes))
        self.hierarchy.add_cpu_cycles(n * 4)

    # -- queries -------------------------------------------------------------

    def select_range(self, lo=None, hi=None, lo_incl=True, hi_incl=False):
        """Oids of tuples with lo (<|<=) value (<|<=) hi; cracks both edges.

        Bounds follow :func:`repro.core.algebra.select_range`
        conventions; None means open.
        """
        start = 0
        stop = len(self.values)
        if lo is not None:
            pivot = lo if lo_incl else lo + 1
            start = self._crack(pivot)
        if hi is not None:
            pivot = hi + 1 if hi_incl else hi
            stop = self._crack(pivot)
        if stop < start:
            # Possible only for empty predicates like lo > hi.
            return np.empty(0, dtype=np.int64)
        return np.sort(self.oids[start:stop])

    def count_range(self, lo=None, hi=None, lo_incl=True, hi_incl=False):
        """Like select_range, but returns only the qualifying count."""
        return len(self.select_range(lo, hi, lo_incl, hi_incl))

    # -- integrity (tests, debugging) ------------------------------------------

    def check_invariants(self):
        """Verify the cracker-index invariant over the whole column."""
        if list(self._pivots) != sorted(self._pivots):
            raise AssertionError("pivots out of order")
        if self._positions != sorted(self._positions):
            raise AssertionError("cut positions out of order")
        for pivot, position in zip(self._pivots, self._positions):
            if position and not (self.values[:position] < pivot).all():
                raise AssertionError(
                    "values before cut {0} not < {1}".format(position,
                                                             pivot))
            if position < len(self.values) and \
                    not (self.values[position:] >= pivot).all():
                raise AssertionError(
                    "values after cut {0} not >= {1}".format(position,
                                                             pivot))
        return True
