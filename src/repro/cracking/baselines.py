"""The competitors of experiment E9: plain scans and an upfront sort.

Work is counted in *tuples touched* so the cumulative-cost curves of
the paper's cracking story can be regenerated: the scan pays ``n``
every query forever; the sorted index pays ``n log n`` before the first
answer; cracking pays ~``n`` for the first query and converges to
index-like cost.
"""

import math

import numpy as np


class ScanSelect:
    """Predicate evaluation by full scan, every time."""

    def __init__(self, values):
        self.values = np.asarray(values)
        self.tuples_touched = 0

    def select_range(self, lo=None, hi=None, lo_incl=True, hi_incl=False):
        values = self.values
        self.tuples_touched += len(values)
        mask = np.ones(len(values), dtype=bool)
        if lo is not None:
            mask &= (values >= lo) if lo_incl else (values > lo)
        if hi is not None:
            mask &= (values <= hi) if hi_incl else (values < hi)
        return np.flatnonzero(mask).astype(np.int64)


class FullSortIndex:
    """Upfront complete sort, then binary-search selects.

    The build cost (``n log2 n`` touches) is paid before the first
    query — the investment cracking amortizes instead.
    """

    def __init__(self, values):
        values = np.asarray(values)
        self.order = np.argsort(values, kind="stable").astype(np.int64)
        self.sorted_values = values[self.order]
        n = max(len(values), 1)
        self.build_touched = int(n * math.ceil(math.log2(n))) if n > 1 \
            else len(values)
        self.tuples_touched = self.build_touched

    def select_range(self, lo=None, hi=None, lo_incl=True, hi_incl=False):
        start = 0
        stop = len(self.sorted_values)
        if lo is not None:
            side = "left" if lo_incl else "right"
            start = int(np.searchsorted(self.sorted_values, lo, side=side))
        if hi is not None:
            side = "right" if hi_incl else "left"
            stop = int(np.searchsorted(self.sorted_values, hi, side=side))
        n = max(len(self.sorted_values), 2)
        self.tuples_touched += 2 * math.ceil(math.log2(n)) \
            + max(stop - start, 0)
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        return np.sort(self.order[start:stop])
