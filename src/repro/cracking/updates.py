"""Cracking under updates ([18], Section 6.1).

"We have shown that this approach is competitive over upfront complete
table sorting and that its benefits can be maintained under high update
load."

Updates are collected as pending insert/delete deltas; selects stay
correct by consulting the deltas, and once the pending set crosses a
threshold it is *merged* into the cracked layout — inserting each value
directly into the piece that must hold it and shifting the boundary
positions, so the cracker index survives the merge intact.
"""

import bisect

import numpy as np

from repro.cracking.cracker_column import CrackerColumn


class CrackedStore:
    """A cracker column plus pending insert/delete deltas."""

    def __init__(self, values, merge_threshold=1024):
        self._column = CrackerColumn(values)
        self.merge_threshold = merge_threshold
        self._next_oid = len(self._column)
        self._pending_values = []
        self._pending_oids = []
        self._deleted = set()
        self.merges_performed = 0

    def __len__(self):
        return (len(self._column) + len(self._pending_values)
                - len(self._deleted))

    @property
    def tuples_touched(self):
        return self._column.tuples_touched

    @property
    def n_pieces(self):
        return self._column.n_pieces()

    # -- updates ------------------------------------------------------------

    def insert(self, values):
        """Insert values; returns their assigned oids."""
        oids = list(range(self._next_oid, self._next_oid + len(values)))
        self._next_oid += len(values)
        self._pending_values.extend(int(v) for v in values)
        self._pending_oids.extend(oids)
        self._maybe_merge()
        return oids

    def delete(self, oids):
        """Delete by oid (unknown oids are ignored)."""
        known = set(self._column.oids.tolist()) | set(self._pending_oids)
        self._deleted.update(o for o in oids if o in known)

    def _maybe_merge(self):
        if len(self._pending_values) >= self.merge_threshold:
            self.merge()

    def merge(self):
        """Fold the deltas into the cracked layout, keeping the index."""
        column = self._column
        if self._pending_values:
            new_values = np.asarray(self._pending_values, dtype=np.int64)
            new_oids = np.asarray(self._pending_oids, dtype=np.int64)
            # Destination index of each new value: just before the first
            # boundary whose pivot exceeds it (i.e., inside its piece).
            piece_idx = np.asarray(
                [bisect.bisect_right(column._pivots, v)
                 for v in new_values.tolist()], dtype=np.int64)
            inserts = np.asarray(
                [column._positions[i] if i < len(column._positions)
                 else len(column.values)
                 for i in piece_idx.tolist()], dtype=np.int64)
            # Ties on the insertion index are ordered by target piece:
            # several pieces can share a cut position (empty pieces),
            # and lower-piece values must land first.
            order = np.lexsort((piece_idx, inserts))
            inserts_sorted = inserts[order]
            column.values = np.insert(column.values, inserts_sorted,
                                      new_values[order])
            column.oids = np.insert(column.oids, inserts_sorted,
                                    new_oids[order])
            # A boundary (pivot, cut) moves right by the number of
            # inserted values that belong below it, i.e. values < pivot
            # (two boundaries can share a cut position, so the shift
            # must be decided by value, not by insertion index).
            sorted_new = np.sort(new_values)
            column._positions = [
                pos + int(np.searchsorted(sorted_new, pivot,
                                          side="left"))
                for pivot, pos in zip(column._pivots, column._positions)]
            column.tuples_touched += len(new_values)
            self._pending_values = []
            self._pending_oids = []
        if self._deleted:
            dead_mask = np.isin(column.oids,
                                np.fromiter(self._deleted, dtype=np.int64))
            if dead_mask.any():
                dead_positions = np.flatnonzero(dead_mask)
                column.values = column.values[~dead_mask]
                column.oids = column.oids[~dead_mask]
                column._positions = [
                    pos - int(np.searchsorted(dead_positions, pos))
                    for pos in column._positions]
            self._deleted = set()
        self.merges_performed += 1

    # -- queries --------------------------------------------------------------

    def select_range(self, lo=None, hi=None, lo_incl=True, hi_incl=False):
        """Oids matching the range, across base and pending deltas."""
        base = self._column.select_range(lo, hi, lo_incl, hi_incl)
        if self._deleted:
            base = base[~np.isin(base, np.fromiter(self._deleted,
                                                   dtype=np.int64))]
        extra = []
        for value, oid in zip(self._pending_values, self._pending_oids):
            if oid in self._deleted:
                continue
            if lo is not None and (value < lo or
                                   (value == lo and not lo_incl)):
                continue
            if hi is not None and (value > hi or
                                   (value == hi and not hi_incl)):
                continue
            extra.append(oid)
        if extra:
            return np.sort(np.concatenate(
                [base, np.asarray(extra, dtype=np.int64)]))
        return base

    def check_invariants(self):
        return self._column.check_invariants()
