"""A checksummed, framed write-ahead log for logical commit records.

The delta-BAT design (Section 3.2) makes a commit a pure function of
its logical content — rows appended and oids deleted per table — so
the WAL stores exactly that: one JSON payload per record, framed as::

    | length: 4 bytes LE | crc32: 4 bytes LE | payload bytes |

Records are appended *before* the catalog is touched (write-ahead
rule), so any crash point leaves the log in one of two states: the
record fully framed (the commit is durable and recovery replays it) or
cut off mid-frame (a *torn tail*: recovery verifies length and
checksum, discards the tail, and the commit never happened).  There is
no third state, which is what makes commit atomic under
crash-at-any-site (swept exhaustively in the tests).

The medium is an in-memory buffer by default, or a file when ``path``
is given; both go through the same ``wal.append`` injection site so
torn writes are simulated identically.
"""

import json
import struct
import zlib

from repro.faults import NO_FAULTS

_HEADER = struct.Struct("<II")


class WalCorruptionError(Exception):
    """A *complete* WAL frame failed its checksum mid-log.

    A torn tail (an append cut short by a crash) is always an
    incomplete final frame, because torn writes are prefixes of valid
    frames — recovery silently discards it.  A full-length frame whose
    payload fails CRC is something else entirely: media corruption of
    a record that was once durable.  Replay stops at the first such
    frame and surfaces this error rather than silently dropping the
    record (and everything after it, which may still be intact).

    Attributes
    ----------
    lsn:
        Byte offset of the corrupt frame (the LSN ``append`` returned
        for it).
    index:
        0-based ordinal of the corrupt record in the log.
    records:
        The intact record prefix before the corruption (populated by
        :meth:`WriteAheadLog.recover`; None from raw iteration).
    """

    def __init__(self, lsn, index, records=None):
        self.lsn = lsn
        self.index = index
        self.records = records
        super().__init__(
            "WAL corruption: record {0} (LSN {1}) failed its "
            "checksum".format(index, lsn))


class WriteAheadLog:
    """Append-only log of checksummed logical records.

    Parameters
    ----------
    path:
        File to persist frames to; None keeps the log in memory (the
        default — crash simulation only needs a medium that survives
        the simulated process, which the buffer does).
    faults:
        A :class:`~repro.faults.FaultInjector`; appends pass through
        the ``wal.append`` site, where a crash plan (optionally with
        ``torn=k``) cuts the write short.
    """

    def __init__(self, path=None, faults=None):
        from repro.observability.tracer import NO_TRACE
        self.path = path
        self.faults = faults if faults is not None else NO_FAULTS
        self.tracer = NO_TRACE  # session tracer (set by Database)
        self._buffer = bytearray()
        self.records_appended = 0
        self.torn_bytes_discarded = 0
        self.stall_units = 0
        if path is not None:
            try:
                with open(path, "rb") as handle:
                    self._buffer = bytearray(handle.read())
            except FileNotFoundError:
                pass

    # -- geometry -------------------------------------------------------------

    @property
    def size_bytes(self):
        return len(self._buffer)

    def __len__(self):
        return sum(1 for _ in self.records())

    # -- writes ---------------------------------------------------------------

    def append(self, record):
        """Frame, checksum and append one logical record (a JSON-able
        dict); returns the record's byte offset (its LSN).

        A crash injected at ``wal.append`` strikes *before* the frame
        is durable; with ``torn=k`` on the crash plan, the first ``k``
        bytes of the frame still reach the medium — the torn tail that
        recovery must discard.
        """
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        lsn = len(self._buffer)
        from repro.faults import CrashError
        try:
            self.stall_units += self.faults.inject("wal.append",
                                                   size=len(frame))
        except CrashError as crash:
            torn = crash.torn
            if torn:
                self._write(frame[:min(torn, len(frame))])
            raise
        self._write(frame)
        self.records_appended += 1
        if self.tracer.enabled:
            self.tracer.add("wal_bytes", len(frame))
        return lsn

    def _write(self, data):
        self._buffer.extend(data)
        if self.path is not None:
            with open(self.path, "ab") as handle:
                handle.write(data)

    # -- reads ----------------------------------------------------------------

    def _frames(self):
        """(record, end offset) for every complete frame, in order.

        Stops at the first *incomplete* frame — by the write-ahead
        framing, anything from that point on is the torn tail of an
        interrupted append.  A frame that is fully present but fails
        its checksum is not a torn tail (torn writes are prefixes of
        valid frames): that is mid-log corruption, and it raises
        :class:`WalCorruptionError` instead of silently fencing the
        record and everything behind it.
        """
        return self.records_from(0)

    def records_from(self, pos=0):
        """Yield ``(record, end offset)`` for every complete frame at
        or after byte offset ``pos``.

        ``pos`` must lie on a frame boundary — an LSN returned by
        :meth:`append`, an ``end`` from a prior scan, or 0.  This is
        the WAL-tailing primitive: a reader remembers the last ``end``
        it consumed and resumes there, paying only for the suffix.
        The ``index`` on a raised :class:`WalCorruptionError` counts
        records from ``pos``, not from the start of the log.
        """
        data = bytes(self._buffer)
        index = 0
        while pos + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, pos)
            start = pos + _HEADER.size
            end = start + length
            if end > len(data):
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                raise WalCorruptionError(pos, index)
            yield json.loads(payload.decode("utf-8")), end
            pos = end
            index += 1

    def records(self):
        """Yield every *complete* record in append order.  Raises
        :class:`WalCorruptionError` at a mid-log checksum failure."""
        for record, _ in self._frames():
            yield record

    def recover(self):
        """Complete records as a list, repairing the log in passing:
        the torn tail (if any) is truncated so later appends start on a
        clean frame boundary.

        A mid-log checksum failure stops replay at the corrupt frame
        and raises :class:`WalCorruptionError` with the record prefix
        recovered so far on its ``records`` attribute — the caller
        decides whether to fence the log there or refuse to start.
        """
        records = []
        pos = 0
        try:
            for record, end in self._frames():
                records.append(record)
                pos = end
        except WalCorruptionError as corruption:
            corruption.records = records
            raise
        torn = len(self._buffer) - pos
        if torn:
            self.torn_bytes_discarded += torn
            del self._buffer[pos:]
            if self.path is not None:
                with open(self.path, "wb") as handle:
                    handle.write(bytes(self._buffer))
        return records

    def truncate(self):
        """Drop every record (after a checkpoint merges them)."""
        self._buffer = bytearray()
        if self.path is not None:
            with open(self.path, "wb") as handle:
                handle.write(b"")

    def __repr__(self):
        return "WriteAheadLog({0} records, {1} bytes)".format(
            self.records_appended, self.size_bytes)
