"""Write-ahead logging: durable logical commit records + torn-tail
recovery.  See :mod:`repro.wal.log` and ``Database.recover()``.
"""

from repro.wal.log import WalCorruptionError, WriteAheadLog

__all__ = ["WriteAheadLog", "WalCorruptionError"]
