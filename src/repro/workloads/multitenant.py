"""Seeded open-loop multi-tenant workload driver (experiment E22).

Simulates a large user population hammering one database: tenants are
drawn from a zipf popularity distribution (a few hot tenants, a long
tail — "millions of users" collapse onto the tenant axis), arrivals are
open-loop Poisson with seeded *bursts* (the arrival rate multiplies
during burst windows, so the offered load exceeds capacity in waves),
and each arrival is a mixed transaction: mostly short OLTP
(point UPDATE/SELECT + COMMIT), occasionally a long OLAP scan.

Because the load is open-loop, arrivals do not slow down when the
server saturates — exactly the regime where admission control matters.
Service is processor sharing: the simulated server has ``capacity``
units of work per tick shared equally among in-service transactions,
so an uncontrolled overload stretches *everyone's* latency, while an
admission-controlled run keeps in-service counts bounded and sheds the
excess at arrival.

The driver executes *real* transactions through the session layer as
the simulation progresses — ``BEGIN`` and the transaction's statements
at admission, ``COMMIT`` at service completion — so genuinely
concurrent MVCC transactions (and their conflicts) arise, and the
recorded history feeds the snapshot-isolation oracle.  Works against a
single node, a replication group, or a sharded database.

Latency is measured arrival-to-completion in simulated ticks (queueing
included); *goodput* counts transactions that completed within
``deadline`` ticks.  Every random choice derives from one seed, so any
run reproduces exactly.
"""

import math
import random

from repro.sessions import (
    AdmissionController, AdmissionRejected, HistoryRecorder,
    SessionManager,
)
from repro.sql.transactions import ConflictError


class WorkloadReport:
    """Outcome of one driver run."""

    def __init__(self, seed, controlled):
        self.seed = seed
        self.controlled = controlled
        self.arrived = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.conflicts = 0
        self.oltp_commits = 0    # OLTP jobs whose COMMIT stuck
        self.good = 0            # completed within the deadline
        self.latencies = []      # arrival -> completion, ticks
        self.per_tenant = {}     # tenant -> completed count
        self.duration = 0
        self.violations = []
        self.history_events = 0
        self.max_in_service = 0

    def _quantile(self, q):
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    @property
    def p50(self):
        return self._quantile(0.50)

    @property
    def p99(self):
        return self._quantile(0.99)

    @property
    def goodput(self):
        """Deadline-met completions per tick."""
        return self.good / self.duration if self.duration else 0.0

    def summary(self):
        return ("seed={0} {1}: arrived={2} completed={3} shed={4} "
                "conflicts={5} p50={6:.1f} p99={7:.1f} goodput={8:.3f} "
                "violations={9}".format(
                    self.seed,
                    "controlled" if self.controlled else "uncontrolled",
                    self.arrived, self.completed, self.shed,
                    self.conflicts, self.p50, self.p99, self.goodput,
                    len(self.violations)))


class _Job:
    __slots__ = ("tenant", "arrival", "demand", "kind", "session",
                 "done", "statements")

    def __init__(self, tenant, arrival, demand, kind, statements):
        self.tenant = tenant
        self.arrival = arrival
        self.demand = demand
        self.kind = kind
        self.statements = statements
        self.session = None
        self.done = 0.0


def zipf_weights(n_tenants, skew):
    return [1.0 / (rank ** skew) for rank in range(1, n_tenants + 1)]


class MultiTenantWorkload:
    """One seeded open-loop run; see the module docstring.

    Parameters (all defaulted for a quick run; the bench scales them):

    ``backend``
        A ``Database``, ``ReplicationGroup`` or ``ShardedDatabase``;
        ``None`` creates a fresh single node.
    ``overload``
        Mean offered load as a multiple of service capacity (2.0 = the
        server is offered twice what it can finish).
    ``admission``
        ``True`` builds an :class:`AdmissionController` sized to the
        capacity; ``False`` runs uncontrolled; or pass a controller.
    ``on_tick``
        Optional hook called as ``on_tick(workload, tick)`` once per
        simulated tick, before that tick's arrivals — the seam
        experiments use to drive concurrent backend activity (E23
        steps an online shard split here) without perturbing the
        seeded arrival stream.
    """

    def __init__(self, seed, backend=None, n_tenants=8, zipf_skew=1.2,
                 duration=400, capacity=4.0, overload=1.0,
                 oltp_fraction=0.9, oltp_demand=4.0, olap_demand=24.0,
                 burst_every=97, burst_length=23, burst_factor=4.0,
                 deadline=40.0, admission=False, max_queue_depth=16,
                 rows_per_tenant=8, record_history=True,
                 tenant_weights=None, on_tick=None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.n_tenants = n_tenants
        self.tenants = ["t{0}".format(i) for i in range(n_tenants)]
        self.weights = zipf_weights(n_tenants, zipf_skew)
        self.duration = duration
        self.capacity = capacity
        self.oltp_fraction = oltp_fraction
        self.oltp_demand = oltp_demand
        self.olap_demand = olap_demand
        self.burst_every = burst_every
        self.burst_length = burst_length
        self.burst_factor = burst_factor
        self.deadline = deadline
        self.rows_per_tenant = rows_per_tenant
        self.on_tick = on_tick
        # Offered load: arrivals/tick such that mean demand * rate =
        # overload * capacity.
        mean_demand = (oltp_fraction * oltp_demand
                       + (1.0 - oltp_fraction) * olap_demand)
        burst_share = burst_length / float(burst_every)
        mean_factor = 1.0 + burst_share * (burst_factor - 1.0)
        self.base_rate = overload * capacity / (mean_demand * mean_factor)
        self.backend = backend if backend is not None else \
            self._default_backend()
        self.recorder = HistoryRecorder() if record_history else None
        if admission is True:
            admission = AdmissionController(
                max_inflight=max(1, int(capacity)),
                max_queue_depth=max_queue_depth,
                weights=tenant_weights)
        elif admission is False:
            admission = None
        self.admission = admission
        self.manager = SessionManager(self.backend,
                                      recorder=self.recorder)
        self._sessions = {t: self.manager.session(t)
                          for t in self.tenants}
        self._setup_schema()

    @staticmethod
    def _default_backend():
        from repro.sql.database import Database
        return Database()

    def _setup_schema(self):
        create = ("CREATE TABLE accounts "
                  "(tenant BIGINT, slot BIGINT, v BIGINT)")
        if self.manager.backend_kind == "sharded":
            create += " PARTITION BY (tenant)"
        self.backend.execute(create)
        values = []
        for i in range(self.n_tenants):
            for slot in range(self.rows_per_tenant):
                values.append("({0}, {1}, 0)".format(i, slot))
        self.backend.execute(
            "INSERT INTO accounts VALUES " + ", ".join(values))

    # -- seeded generators -----------------------------------------------------

    def _pick_tenant(self):
        return self.rng.choices(range(self.n_tenants),
                                weights=self.weights)[0]

    def _next_interarrival(self, now):
        in_burst = (int(now) % self.burst_every) < self.burst_length
        rate = self.base_rate * (self.burst_factor if in_burst else 1.0)
        return self.rng.expovariate(rate)

    def _gen_job(self, tenant_index, now):
        tenant = self.tenants[tenant_index]
        if self.rng.random() < self.oltp_fraction:
            slot = self.rng.randrange(self.rows_per_tenant)
            statements = [
                "UPDATE accounts SET v = v + 1 "
                "WHERE tenant = {0} AND slot = {1}".format(
                    tenant_index, slot),
                "SELECT v FROM accounts WHERE tenant = {0} "
                "AND slot = {1}".format(tenant_index, slot),
            ]
            demand = self.oltp_demand
            kind = "oltp"
        else:
            statements = [
                "SELECT count(*), sum(v) FROM accounts "
                "WHERE tenant = {0}".format(tenant_index),
                "SELECT count(*), sum(v), min(v), max(v) FROM accounts",
            ]
            demand = self.olap_demand
            kind = "olap"
        return _Job(tenant, now, demand, kind, statements)

    # -- execution against the engine ------------------------------------------

    def _start(self, job):
        """Admit: BEGIN and run the job's statements (reads/buffered
        writes) on its snapshot; COMMIT happens at completion."""
        session = self._sessions[job.tenant]
        if session.in_transaction:
            # One connection per tenant: a tenant with a transaction
            # already in service opens an extra session (connection
            # pool growing under load).
            session = self.manager.session(job.tenant)
            self._sessions[job.tenant] = session
        session.execute("BEGIN")
        for sql in job.statements:
            session.execute(sql)
        job.session = session

    def _complete(self, job, report):
        try:
            job.session.execute("COMMIT")
        except ConflictError:
            report.conflicts += 1
        else:
            if job.kind == "oltp":
                report.oltp_commits += 1

    # -- the open-loop simulation ----------------------------------------------

    def run(self):
        report = WorkloadReport(self.seed,
                                controlled=self.admission is not None)
        in_service = []
        now = 0.0
        next_arrival = self._next_interarrival(0.0)
        while now < self.duration:
            if self.on_tick is not None:
                self.on_tick(self, int(now))
            # Arrivals in [now, now+1).
            while next_arrival < now + 1.0:
                arrival_time = next_arrival
                next_arrival += self._next_interarrival(next_arrival)
                if arrival_time >= self.duration:
                    break
                report.arrived += 1
                job = self._gen_job(self._pick_tenant(), arrival_time)
                if self.admission is None:
                    self._start(job)
                    in_service.append(job)
                    report.admitted += 1
                else:
                    try:
                        self.admission.enqueue(job.tenant, job)
                    except AdmissionRejected:
                        report.shed += 1
            # Drain the admission queue into free slots.
            if self.admission is not None:
                while True:
                    admitted = self.admission.admit_next()
                    if admitted is None:
                        break
                    _, job = admitted
                    self._start(job)
                    in_service.append(job)
                    report.admitted += 1
            report.max_in_service = max(report.max_in_service,
                                        len(in_service))
            # Processor sharing: one tick of capacity split equally.
            if in_service:
                share = self.capacity / len(in_service)
                finished = []
                for job in in_service:
                    job.done += share
                    if job.done >= job.demand:
                        finished.append(job)
                for job in finished:
                    in_service.remove(job)
                    self._complete(job, report)
                    if self.admission is not None:
                        self.admission.release(job.tenant)
                    latency = (now + 1.0) - job.arrival
                    report.completed += 1
                    report.latencies.append(latency)
                    report.per_tenant[job.tenant] = \
                        report.per_tenant.get(job.tenant, 0) + 1
                    if latency <= self.deadline:
                        report.good += 1
            now += 1.0
        # Abort whatever is still in service at the horizon.
        for job in in_service:
            job.session.execute("ROLLBACK")
            if self.admission is not None:
                self.admission.release(job.tenant)
        report.duration = self.duration
        if self.recorder is not None:
            report.violations = self.recorder.check()
            report.history_events = len(self.recorder.events)
        return report


def run_workload(seed, **kwargs):
    """Convenience: build and run one seeded workload."""
    return MultiTenantWorkload(seed, **kwargs).run()
