"""Synthetic workloads for the experiments.

* :mod:`repro.workloads.generators` — column distributions (uniform,
  zipf, sorted, clustered, dense keys) used by the algorithm benches;
* :mod:`repro.workloads.skyserver` — a Skyserver-like observation table
  and query log with heavy template reuse and zipf-popular sky regions
  (the recycling workload of [19], experiment E10);
* :mod:`repro.workloads.starschema` — a small star schema for the BI
  examples and the bulk-vs-tuple experiment E13;
* :mod:`repro.workloads.multitenant` — the seeded open-loop
  multi-tenant transaction driver (zipf tenants, bursty arrivals,
  mixed OLTP/OLAP) behind experiment E22.
"""

from repro.workloads.multitenant import MultiTenantWorkload, run_workload

from repro.workloads.generators import (
    clustered_ints,
    dense_keys,
    sorted_ints,
    uniform_ints,
    zipf_ints,
)
from repro.workloads.skyserver import SkyserverWorkload
from repro.workloads.starschema import StarSchema

__all__ = [
    "uniform_ints",
    "zipf_ints",
    "sorted_ints",
    "clustered_ints",
    "dense_keys",
    "MultiTenantWorkload",
    "SkyserverWorkload",
    "StarSchema",
    "run_workload",
]
