"""A small star schema: sales fact with item and store dimensions."""

import numpy as np


class StarSchema:
    """Generator for a sales star schema at a given scale."""

    def __init__(self, n_sales=10_000, n_items=100, n_stores=20, seed=0):
        self.n_sales = n_sales
        self.n_items = n_items
        self.n_stores = n_stores
        rng = np.random.default_rng(seed)
        self.item_ids = np.arange(self.n_items, dtype=np.int64)
        self.item_categories = rng.integers(0, 10, self.n_items)
        self.item_prices = np.round(rng.uniform(1.0, 50.0, self.n_items),
                                    2)
        self.store_ids = np.arange(self.n_stores, dtype=np.int64)
        self.store_regions = rng.integers(0, 5, self.n_stores)
        self.sale_items = rng.integers(0, self.n_items, self.n_sales)
        self.sale_stores = rng.integers(0, self.n_stores, self.n_sales)
        self.sale_qtys = rng.integers(1, 20, self.n_sales)
        self.sale_days = rng.integers(0, 365, self.n_sales)

    # -- relational form -----------------------------------------------------

    def populate(self, db, batch=500):
        """Create and fill the three tables inside a Database."""
        db.execute("CREATE TABLE items (item_id INT, category INT, "
                   "price DOUBLE)")
        db.execute("CREATE TABLE stores (store_id INT, region INT)")
        db.execute("CREATE TABLE sales (item_id INT, store_id INT, "
                   "qty INT, day INT)")
        items = db.catalog.get("items")
        items.append_rows(list(zip(self.item_ids.tolist(),
                                   self.item_categories.tolist(),
                                   self.item_prices.tolist())))
        stores = db.catalog.get("stores")
        stores.append_rows(list(zip(self.store_ids.tolist(),
                                    self.store_regions.tolist())))
        sales = db.catalog.get("sales")
        sales.append_rows(list(zip(self.sale_items.tolist(),
                                   self.sale_stores.tolist(),
                                   self.sale_qtys.tolist(),
                                   self.sale_days.tolist())))
        return db

    # -- columnar / row forms for the engine comparisons -----------------------

    def sales_columns(self):
        return {
            "item_id": self.sale_items.copy(),
            "store_id": self.sale_stores.copy(),
            "qty": self.sale_qtys.copy(),
            "day": self.sale_days.copy(),
        }

    def item_columns(self):
        return {
            "item_id": self.item_ids.copy(),
            "category": self.item_categories.copy(),
            "price": self.item_prices.copy(),
        }

    def sales_rows(self):
        """(item_id, store_id, qty, day) tuples for the Volcano engine."""
        return list(zip(self.sale_items.tolist(),
                        self.sale_stores.tolist(),
                        self.sale_qtys.tolist(),
                        self.sale_days.tolist()))

    def item_rows(self):
        return list(zip(self.item_ids.tolist(),
                        self.item_categories.tolist(),
                        self.item_prices.tolist()))
