"""A synthetic Skyserver-like workload for the recycling experiment.

The real Skyserver query log (used in [19]) has two properties that
make recycling effective: queries instantiate a handful of *templates*,
and their range predicates concentrate on zipf-popular sky regions, so
consecutive queries recompute overlapping intermediates.  The generator
reproduces exactly those properties with synthetic data.
"""

import numpy as np


class SkyserverWorkload:
    """An observations table plus an overlapping analytic query log."""

    TEMPLATES = (
        "SELECT count(*) FROM obs WHERE region = {region}",
        "SELECT avg(mag) FROM obs WHERE region = {region}",
        "SELECT count(*) FROM obs WHERE region = {region} AND mag > {m}",
        "SELECT max(mag) FROM obs WHERE region = {region} AND mag > {m}",
        "SELECT region, count(*) FROM obs WHERE mag > {m} "
        "GROUP BY region ORDER BY region",
    )

    def __init__(self, n_rows=5000, n_regions=64, n_queries=200,
                 skew=1.3, seed=0):
        self.n_rows = n_rows
        self.n_regions = n_regions
        self.n_queries = n_queries
        self.skew = skew
        self.seed = seed

    def create_statements(self):
        """DDL + INSERTs building the observations table."""
        rng = np.random.default_rng(self.seed)
        regions = rng.integers(0, self.n_regions, self.n_rows)
        mags = np.round(rng.uniform(10.0, 25.0, self.n_rows), 2)
        statements = ["CREATE TABLE obs (region INT, mag DOUBLE)"]
        chunk = 500
        for start in range(0, self.n_rows, chunk):
            rows = ", ".join(
                "({0}, {1})".format(int(r), float(m))
                for r, m in zip(regions[start:start + chunk],
                                mags[start:start + chunk]))
            statements.append("INSERT INTO obs VALUES " + rows)
        return statements

    def query_log(self):
        """The analytic query log: template reuse + zipf-hot regions."""
        rng = np.random.default_rng(self.seed + 1)
        ranks = np.arange(1, self.n_regions + 1, dtype=np.float64)
        weights = ranks ** (-self.skew)
        weights /= weights.sum()
        queries = []
        # Magnitude cutoffs are drawn from a small popular set, again so
        # that the same sub-plans recur.
        cutoffs = [15.0, 18.0, 20.0, 22.0]
        for _ in range(self.n_queries):
            template = self.TEMPLATES[rng.integers(0, len(self.TEMPLATES))]
            region = int(rng.choice(self.n_regions, p=weights))
            cutoff = cutoffs[int(rng.integers(0, len(cutoffs)))]
            queries.append(template.format(region=region, m=cutoff))
        return queries

    def populate(self, db):
        """Build the table inside a Database; returns the query log."""
        for statement in self.create_statements():
            db.execute(statement)
        return self.query_log()
