"""Column value generators with controlled distributions."""

import numpy as np


def uniform_ints(n, lo=0, hi=1 << 30, seed=0):
    """n uniform integers in [lo, hi)."""
    rng = np.random.default_rng(seed)
    return rng.integers(lo, hi, n).astype(np.int64)


def zipf_ints(n, n_distinct=1000, skew=1.2, seed=0):
    """n integers over ``n_distinct`` values with zipfian popularity."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(n_distinct, size=n, p=weights).astype(np.int64)


def sorted_ints(n, lo=0, hi=1 << 30, seed=0):
    """n sorted uniform integers (an RLE/delta-friendly column)."""
    return np.sort(uniform_ints(n, lo, hi, seed))


def clustered_ints(n, run_length=64, lo=0, hi=1 << 30, seed=0):
    """Sorted values lightly shuffled within runs: near-sorted data."""
    rng = np.random.default_rng(seed)
    values = sorted_ints(n, lo, hi, seed)
    for start in range(0, n, run_length):
        stop = min(start + run_length, n)
        values[start:stop] = rng.permutation(values[start:stop])
    return values


def dense_keys(n, base=0, seed=0):
    """A shuffled dense key range: every value in [base, base+n) once."""
    rng = np.random.default_rng(seed)
    return base + rng.permutation(n).astype(np.int64)
