"""Primary/replica WAL-shipping replication with automatic failover.

A :class:`ReplicationGroup` runs one primary :class:`~repro.sql.Database`
plus N replicas, each over its own :class:`~repro.replication.log.ReplicatedLog`.
The primary's commits append term/LSN-stamped records; the group ships
them to every replica over simulated FIFO links
(:class:`~repro.datacyclotron.link.SimulatedLink`, fault sites
``repl.ship`` for leader traffic and ``repl.ack`` for responses),
replicas append-and-apply and acknowledge cumulatively, and the primary
advances the group commit LSN when a quorum holds an entry.

Everything advances on a simulated clock: one :meth:`ReplicationGroup.tick`
broadcasts from the leader (entries for lagging followers, heartbeats
otherwise), delivers due messages, and runs the failure detector.  A
message takes at least one tick, so a commit round trip costs two.

Durability modes
----------------
``sync``
    ``execute`` returns only once a quorum (majority of all member
    nodes, the primary included) holds the commit's last entry; it
    ticks the clock while waiting and raises :class:`QuorumTimeout`
    if the quorum is unreachable — the transaction's fate is then
    *unknown* (it may still commit once links heal, or be fenced by a
    failover).  Every transaction acknowledged in sync mode survives
    any single failover.
``async``
    ``execute`` returns as soon as the primary's own WAL append is
    durable; replicas catch up on subsequent ticks and the group's
    replication lag is observable via :meth:`ReplicationGroup.lag`.

Failure model
-------------
Node crashes (:meth:`kill`, or an injected ``CrashError`` anywhere in
the primary's commit path) and link partitions (:meth:`partition`, or
crash plans on the link sites).  The failure detector is heartbeat
driven: a dead primary is deposed once any live replica has not heard
from it for ``election_timeout`` ticks; a live-but-partitioned primary
is deposed only when a *majority* of the cluster's replicas are
starved (the split-brain guard).  Election promotes the most-caught-up
live replica — max ``(last log term, last LSN)`` — under a fresh term.
Followers reconcile against the new leader by per-LSN checksum: a
divergent suffix (the deposed primary's unacked tail) is truncated and
replaced, so after catch-up :meth:`divergence_report` is empty.

With zero replicas the group degrades to exactly the single-node
``Database``: quorum is 1, sync commits return immediately, reads hit
the primary, and failover never triggers.
"""

from dataclasses import dataclass, field

from repro.datacyclotron.link import SimulatedLink
from repro.faults import NO_FAULTS, CrashError, FaultInjector
from repro.governance.context import CHECK_ROUTE
from repro.observability.tracer import NO_TRACE
from repro.replication.log import (
    LogEntry, NotPrimaryError, ReplicatedLog, entry_checksum, record_size,
)
from repro.sql.ast import Select
from repro.sql.database import Database
from repro.sql.parser import parse_sql

SHIP_SITE = "repl.ship"
ACK_SITE = "repl.ack"


class ReplicationError(RuntimeError):
    """Base class of replication-level failures."""


class NoPrimaryError(ReplicationError):
    """No live primary is currently serving writes (tick to fail over)."""


class QuorumTimeout(ReplicationError):
    """A sync-mode commit could not reach quorum within the deadline.

    The transaction's fate is unknown: its entry is in the primary's
    log and may commit later (links heal) or be fenced (failover)."""


@dataclass
class FailoverEvent:
    """One completed election, for auditing the chaos invariants."""

    term: int
    winner: int
    reason: str
    tick: int
    candidates: dict = field(default_factory=dict)  # id -> (term, lsn)

    def winner_was_most_caught_up(self):
        best = max(self.candidates.values())
        return self.candidates[self.winner] == best


@dataclass
class ReplicationStats:
    shipped_entries: int = 0
    shipped_bytes: int = 0
    heartbeats: int = 0
    acks: int = 0
    failovers: int = 0
    fenced_entries: int = 0
    quorum_timeouts: int = 0
    reads_primary: int = 0
    reads_replica: int = 0


class SimClock:
    """The group's deterministic tick counter."""

    def __init__(self):
        self.now = 0

    def advance(self, ticks=1):
        self.now += ticks
        return self.now


class Node:
    """One cluster member: a Database over a ReplicatedLog.

    ``role`` is one of ``primary`` / ``replica`` / ``deposed`` (a
    fenced ex-primary awaiting rejoin).  ``alive`` models the process:
    a dead node neither sends nor processes messages until
    :meth:`ReplicationGroup.restart` revives it.
    """

    def __init__(self, node_id, faults=None, **db_kwargs):
        self.node_id = node_id
        self.faults = faults if faults is not None else FaultInjector()
        self.log = ReplicatedLog(faults=self.faults)
        self.db = Database(wal=self.log, faults=self.faults, **db_kwargs)
        self.role = "replica"
        self.alive = True
        self.term = 0          # highest term this node has seen
        self.last_heard = 0    # tick of last leader contact

    @property
    def last_lsn(self):
        return self.log.last_lsn

    @property
    def last_term(self):
        return self.log.last_term

    def position(self):
        """Election key: how caught-up this node's log is."""
        return (self.log.last_term, self.log.last_lsn)

    def fence_to(self, lsn):
        """Truncate the local log from ``lsn`` and rebuild the catalog
        from the surviving prefix (recover() is idempotent, so this is
        safe even when nothing was applied past the fence)."""
        dropped = self.log.truncate_from(lsn)
        if dropped:
            self.db.recover()
        return dropped

    def __repr__(self):
        return "Node({0}, {1}, term={2}, lsn={3})".format(
            self.node_id, self.role if self.alive else "dead",
            self.term, self.last_lsn)


class Session:
    """A client session with read-your-writes routing.

    Reads through the session only land on nodes that have applied the
    session's last write, so a client never observes its own write
    vanish — even while replicas are still catching up."""

    def __init__(self, group, read_your_writes=True):
        self.group = group
        self.read_your_writes = read_your_writes
        self.last_write_lsn = -1

    def execute(self, sql, **kwargs):
        return self.group.execute(sql, session=self, **kwargs)

    def query(self, sql, **kwargs):
        return self.execute(sql, **kwargs).rows()


class ReplicatedTransaction:
    """A transaction on the primary whose commit honours the group's
    durability mode (sync commits wait for quorum ack)."""

    def __init__(self, group, pin=False):
        self._group = group
        self._node = group.require_primary()
        self._txn = self._node.db.begin(pin=pin)
        # Replication-level stamps for the session layer: the snapshot
        # is as-of the quorum-durable LSN at begin; ``commit_lsn`` is
        # assigned once the commit is durable per the group's mode.
        self.snapshot_lsn = group.commit_lsn
        self.commit_lsn = None

    def execute(self, sql, context=None):
        return self._txn.execute(sql, context=context)

    def commit(self):
        group, node = self._group, self._node
        before = node.last_lsn
        try:
            self._txn.commit()
        except CrashError:
            group.mark_dead(node)
            raise
        group._finish_write(node, before)
        self.commit_lsn = group.commit_lsn if node.last_lsn > before \
            else self.snapshot_lsn

    def abort(self):
        self._txn.abort()

    rollback = abort

    @property
    def closed(self):
        return self._txn.closed

    @property
    def outcome(self):
        return self._txn.outcome

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if not self._txn.closed:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class ReplicationGroup:
    """One primary plus ``n_replicas`` replicas behind a single facade.

    Parameters
    ----------
    n_replicas:
        Replica count; 0 degrades to single-node Database behaviour.
    mode:
        ``"sync"`` (commit waits for quorum ack) or ``"async"``
        (commit returns on local durability).
    faults:
        Injector armed against the *link* sites (``repl.ship`` /
        ``repl.ack``).  Each node carries its own injector for its
        commit-path sites, reachable as ``group.nodes[i].faults``.
    heartbeat_every / election_timeout / sync_timeout:
        Protocol timing, in ticks of the simulated clock.
    batch_per_tick:
        Max entries shipped to one follower per tick (catch-up rate).
    """

    def __init__(self, n_replicas=2, mode="sync", faults=None,
                 heartbeat_every=1, election_timeout=5, sync_timeout=60,
                 batch_per_tick=8, tracer=None, db_kwargs=None):
        if mode not in ("sync", "async"):
            raise ValueError("mode must be 'sync' or 'async'")
        if n_replicas < 0:
            raise ValueError("n_replicas must be >= 0")
        self.mode = mode
        self.clock = SimClock()
        self.faults = faults if faults is not None else NO_FAULTS
        self.tracer = tracer if tracer is not None else NO_TRACE
        self.heartbeat_every = heartbeat_every
        self.election_timeout = election_timeout
        self.sync_timeout = sync_timeout
        self.batch_per_tick = batch_per_tick
        self.stats = ReplicationStats()
        self.failovers = []            # [FailoverEvent]
        kwargs = dict(db_kwargs or {})
        self.nodes = [Node(i, **kwargs) for i in range(n_replicas + 1)]
        self.primary = self.nodes[0]
        self._install_primary(self.primary, term=1)
        self.commit_lsn = -1           # highest quorum-durable LSN
        self.acked = {}                # follower id -> last acked LSN
        self._links = {}               # (src, dst) -> SimulatedLink
        self._read_rr = 0              # read round-robin cursor

    # -- membership ------------------------------------------------------------

    @property
    def quorum(self):
        """Majority of all member nodes (the primary included)."""
        return len(self.nodes) // 2 + 1

    def replicas(self):
        return [n for n in self.nodes if n.role == "replica"]

    def require_primary(self):
        node = self.primary
        if node is None or not node.alive:
            raise NoPrimaryError(
                "no live primary (tick() until failover completes)")
        return node

    def _install_primary(self, node, term):
        node.role = "primary"
        node.term = term
        node.log.stamp = lambda n=node: (n.term, n.log.last_lsn + 1)

    def _link(self, src, dst):
        link = self._links.get((src, dst))
        if link is None:
            link = SimulatedLink(SHIP_SITE, faults=self.faults,
                                 name="{0}->{1}".format(src, dst))
            self._links[(src, dst)] = link
        return link

    def partition(self, a, b):
        """Cut both directions of the link between nodes ``a`` and ``b``."""
        self._link(a, b).cut()
        self._link(b, a).cut()

    def heal(self, a, b):
        self._link(a, b).heal()
        self._link(b, a).heal()

    def heal_all(self):
        for link in self._links.values():
            link.heal()

    def kill(self, node_id):
        """Crash a node: it stops sending and processing immediately."""
        self.mark_dead(self.nodes[node_id])

    def mark_dead(self, node):
        node.alive = False

    def restart(self, node_id):
        """Revive a dead node as a replica: replay its own WAL (recover
        is idempotent, so a clean node is unharmed), then rejoin — the
        current leader's catch-up stream fences any divergent tail."""
        node = self.nodes[node_id]
        node.alive = True
        node.db.recover()
        if self.primary is node and node.role == "primary":
            return node  # died and came back before anyone noticed
        node.role = "replica"
        node.log.stamp = None
        node.last_heard = self.clock.now
        return node

    # -- the clock -------------------------------------------------------------

    def tick(self, ticks=1):
        """Advance the simulated clock: broadcast, deliver, detect."""
        for _ in range(ticks):
            now = self.clock.advance()
            self._broadcast(now)
            self._deliver(now)
            self._detect_failure(now)
        return self.clock.now

    def drain(self, max_ticks=500):
        """Tick until every live replica has caught up with the
        primary (or the budget runs out); returns ticks spent."""
        start = self.clock.now
        for _ in range(max_ticks):
            primary = self.primary
            if primary is None or not primary.alive:
                break
            followers = [n for n in self.nodes
                         if n.alive and n is not primary]
            # != rather than <: a deposed primary's longer stale tail
            # still needs heartbeats to fence it down to the leader.
            if all(n.last_lsn == primary.last_lsn and
                   self.acked.get(n.node_id, -1) >= primary.last_lsn
                   for n in followers):
                break
            self.tick()
        return self.clock.now - start

    # -- shipping protocol -----------------------------------------------------

    def _broadcast(self, now):
        primary = self.primary
        if primary is None or not primary.alive:
            return
        if now % self.heartbeat_every:
            return
        for peer in self.nodes:
            if peer is primary or not peer.alive:
                continue
            link = self._link(primary.node_id, peer.node_id)
            start = self.acked.get(peer.node_id, -1) + 1
            entries = primary.log.entries[start:start +
                                          self.batch_per_tick]
            if entries:
                prev = primary.log.entry_at(start - 1)
                message = ("entries", primary.term,
                           [e.record for e in entries],
                           start - 1,
                           prev.checksum if prev is not None else None)
                size = sum(record_size(e.record) for e in entries)
                if link.send(message, now, size=size):
                    self.stats.shipped_entries += len(entries)
                    self.stats.shipped_bytes += size
                    if self.tracer.enabled:
                        self.tracer.add("repl_shipped_bytes", size)
            else:
                message = ("heartbeat", primary.term, primary.last_lsn,
                           primary.log.checksum_at(primary.last_lsn))
                if link.send(message, now, size=24):
                    self.stats.heartbeats += 1

    def _deliver(self, now):
        for (src, dst) in sorted(self._links):
            link = self._links[(src, dst)]
            for message in link.deliver(now):
                receiver = self.nodes[dst]
                if not receiver.alive:
                    continue
                self._receive(receiver, src, message, now)

    def _receive(self, node, src, message, now):
        kind = message[0]
        if kind == "ack":
            self._receive_ack(node, message)
        elif kind in ("entries", "heartbeat"):
            self._receive_from_leader(node, src, message, now)

    def _receive_from_leader(self, node, src, message, now):
        term = message[1]
        if term < node.term:
            return  # a deposed primary's straggler traffic: fenced
        node.term = term
        if node.role in ("primary", "deposed") and \
                self.nodes[src].role == "primary":
            # A higher-term leader exists: step down to follower.
            node.role = "replica"
            node.log.stamp = None
        node.last_heard = now
        if message[0] == "entries":
            _, _, records, prev_lsn, prev_crc = message
            self._append_entries(node, records, prev_lsn, prev_crc)
            verified = prev_lsn + len(records)
        else:
            _, _, leader_last, leader_crc = message
            self._reconcile_tail(node, leader_last, leader_crc)
            verified = leader_last
        # Ack only the position verified against this leader's log —
        # never a stale tail beyond it (which would let the leader
        # advance the commit LSN over history it does not hold).
        ack = ("ack", node.term, min(node.last_lsn, verified),
               node.node_id)
        self._link(node.node_id, src).send(ack, now, size=16,
                                           site=ACK_SITE)

    def _reconcile_tail(self, node, leader_last, leader_crc):
        """Fence a follower log that extends past the leader's head.

        Entries beyond the leader's log cannot be quorum-durable
        (elections require a majority of candidates, so every elected
        leader holds all quorum-acked entries) — they are a deposed
        primary's unacked tail and lose to the new history."""
        if node.last_lsn <= leader_last:
            return
        if leader_last < 0:
            keep = 0
        elif node.log.checksum_at(leader_last) == leader_crc:
            keep = leader_last + 1  # prefix agrees: drop only the tail
        else:
            keep = leader_last      # head disagrees too: back up further
        self.stats.fenced_entries += node.fence_to(keep)

    def _append_entries(self, node, records, prev_lsn, prev_crc):
        """Raft-style log reconciliation by per-LSN checksum."""
        if prev_lsn >= 0:
            prev = node.log.entry_at(prev_lsn)
            if prev is None:
                return  # gap: ack reports our true position; leader backs up
            if prev.checksum != prev_crc:
                # Divergent history at the attach point: fence it.
                self.stats.fenced_entries += node.fence_to(prev_lsn)
                return
        for record in records:
            lsn = record["lsn"]
            if lsn <= node.last_lsn:
                own = node.log.entry_at(lsn)
                if own is not None and \
                        own.checksum == entry_checksum(record):
                    continue  # duplicate of what we already hold
                # Same LSN, different content: the old leader's unacked
                # tail — truncate it and take the new history.
                self.stats.fenced_entries += node.fence_to(lsn)
            if lsn != node.last_lsn + 1:
                break  # out-of-order remainder; await retransmission
            try:
                node.log.append(record)
            except CrashError:
                self.mark_dead(node)
                return
            node.db._replay_record(record)

    def _receive_ack(self, node, message):
        _, term, lsn, src_id = message
        if node.role != "primary" or term < node.term:
            return
        self.acked[src_id] = lsn
        self.stats.acks += 1
        self._advance_commit(node)

    def _advance_commit(self, primary):
        """Raft commit rule: the highest LSN a quorum holds."""
        positions = [primary.last_lsn]
        positions += [self.acked.get(r.node_id, -1)
                      for r in self.replicas()]
        positions.sort(reverse=True)
        durable = positions[self.quorum - 1]
        if durable > self.commit_lsn:
            self.commit_lsn = durable

    # -- failure detection and election ----------------------------------------

    def _detect_failure(self, now):
        primary = self.primary
        live = [r for r in self.replicas() if r.alive]
        if not live:
            return
        starving = [r for r in live
                    if now - r.last_heard > self.election_timeout]
        if primary is None or not primary.alive:
            if starving:
                self._failover(now, reason="primary dead")
        elif len(starving) >= self.quorum:
            # A live primary partitioned away from a majority.
            self._failover(now, reason="primary partitioned")

    def _failover(self, now, reason):
        candidates = [r for r in self.replicas() if r.alive]
        if len(candidates) < min(self.quorum, len(self.nodes) - 1):
            # Raft's safety rule: electing without a majority could
            # promote a node missing quorum-acked entries.  (With a
            # single replica a majority is unreachable once the
            # primary is gone, so that degenerate cluster allows the
            # lone survivor — it holds every sync-acked entry anyway.)
            return None
        winner = max(candidates,
                     key=lambda r: (r.last_term, r.last_lsn, -r.node_id))
        event = FailoverEvent(
            term=max(n.term for n in self.nodes) + 1,
            winner=winner.node_id, reason=reason, tick=now,
            candidates={r.node_id: r.position() for r in candidates})
        old = self.primary
        if old is not None and old is not winner:
            old.log.stamp = None  # fence the deposed leader's log
            old.role = "deposed"
        self._install_primary(winner, term=event.term)
        self.primary = winner
        self.acked = {}
        for replica in self.replicas():
            replica.last_heard = now  # grace period under the new term
        self.failovers.append(event)
        self.stats.failovers += 1
        if self.tracer.enabled:
            self.tracer.add("repl_failovers", 1)
        return event

    def await_failover(self, max_ticks=50):
        """Tick until a new primary is serving (used after a crash);
        returns the new primary node or raises :class:`NoPrimaryError`."""
        for _ in range(max_ticks):
            node = self.primary
            if node is not None and node.alive:
                return node
            self.tick()
        return self.require_primary()

    # -- statement routing -----------------------------------------------------

    def execute(self, sql, session=None, workers=None, min_lsn=None,
                context=None):
        """Execute one statement against the cluster.

        DML/DDL routes to the primary (commit semantics per ``mode``);
        SELECT load-balances round-robin across caught-up live
        replicas, falling back to the primary when none qualifies.  A
        ``session`` adds read-your-writes routing; ``min_lsn`` raises
        the routing floor further (the session layer passes its
        snapshot LSN so a replica read is never older than the
        snapshot point).  ``context`` is an optional
        :class:`~repro.governance.QueryContext`: reads checkpoint at
        the routing decision and the chosen node runs the statement
        under the context."""
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, Select):
            return self._execute_read(sql, session, workers,
                                      min_lsn=min_lsn, context=context)
        return self._execute_write(sql, session, workers,
                                   context=context)

    def query(self, sql, session=None, workers=None, min_lsn=None):
        return self.execute(sql, session=session, workers=workers,
                            min_lsn=min_lsn).rows()

    def begin(self, pin=False):
        """A replicated transaction on the primary (commit waits for
        quorum in sync mode, like autocommit writes).  ``pin=True``
        snapshots every table at begin (see ``Database.begin``)."""
        return ReplicatedTransaction(self, pin=pin)

    def session(self, read_your_writes=True):
        return Session(self, read_your_writes=read_your_writes)

    def _execute_write(self, sql, session, workers, context=None):
        node = self.require_primary()
        before = node.last_lsn
        if self.tracer.enabled:
            with self.tracer.span("repl.write", kind="replication",
                                  node=node.node_id, mode=self.mode):
                return self._write_and_wait(node, sql, before, session,
                                            workers, context=context)
        return self._write_and_wait(node, sql, before, session, workers,
                                    context=context)

    def _write_and_wait(self, node, sql, before, session, workers,
                        context=None):
        try:
            result = node.db.execute(sql, workers=workers,
                                     context=context)
        except CrashError:
            self.mark_dead(node)  # the primary process died mid-commit
            raise
        self._finish_write(node, before)
        if session is not None:
            session.last_write_lsn = node.last_lsn
        return result

    def _finish_write(self, node, before):
        target = node.last_lsn
        if target == before:
            return  # no log growth (e.g. a no-op delete)
        if self.mode == "sync" and self.quorum > 1:
            self._await_quorum(target)
        else:
            self.commit_lsn = max(self.commit_lsn, target)
        if self.tracer.enabled:
            span = self.tracer.current
            if span is not None:
                span.counters["repl_acked_lsn"] = self.commit_lsn
                span.counters["repl_lag"] = self.max_lag()

    def _await_quorum(self, target):
        deadline = self.clock.now + self.sync_timeout
        while self.commit_lsn < target:
            if self.clock.now >= deadline:
                self.stats.quorum_timeouts += 1
                raise QuorumTimeout(
                    "LSN {0} not quorum-acked within {1} ticks".format(
                        target, self.sync_timeout))
            self.tick()

    def _execute_read(self, sql, session, workers, min_lsn=None,
                      context=None):
        if context is not None and context.active:
            # The routing cancellation point: fires before a node is
            # chosen, so a killed read never touches any replica.
            context.checkpoint(CHECK_ROUTE)
        floor = self.commit_lsn
        if session is not None and session.read_your_writes:
            floor = max(floor, session.last_write_lsn)
        if min_lsn is not None:
            floor = max(floor, min_lsn)
        candidates = [r for r in self.replicas()
                      if r.alive and r.last_lsn >= floor]
        if candidates:
            node = candidates[self._read_rr % len(candidates)]
            self._read_rr += 1
            self.stats.reads_replica += 1
        else:
            node = self.require_primary()
            self.stats.reads_primary += 1
        if self.tracer.enabled:
            with self.tracer.span("repl.read", kind="replication",
                                  node=node.node_id):
                return node.db.execute(sql, workers=workers,
                                       context=context)
        return node.db.execute(sql, workers=workers, context=context)

    # -- observability ---------------------------------------------------------

    def lag(self):
        """Per-replica entry lag behind the primary's log."""
        primary = self.primary
        head = primary.last_lsn if primary is not None else -1
        return {r.node_id: head - r.last_lsn for r in self.replicas()}

    def max_lag(self):
        lags = self.lag()
        return max(lags.values()) if lags else 0

    def divergence_report(self, include_dead=False):
        """Per-LSN checksum comparison across the cluster.

        Returns ``[(lsn, {node_id: checksum})]`` for every LSN in the
        nodes' common prefix where at least two nodes disagree — after
        failover plus catch-up this must be empty (the chaos-sweep
        acceptance invariant).  Dead nodes are skipped by default:
        their logs are reconciled on restart."""
        nodes = [n for n in self.nodes if n.alive or include_dead]
        if len(nodes) < 2:
            return []
        common = min(n.last_lsn for n in nodes)
        mismatched = []
        for lsn in range(common + 1):
            sums = {n.node_id: n.log.checksum_at(lsn) for n in nodes}
            if len(set(sums.values())) > 1:
                mismatched.append((lsn, sums))
        return mismatched

    def __repr__(self):
        primary = self.primary.node_id if self.primary else None
        return ("ReplicationGroup({0} nodes, primary={1}, mode={2}, "
                "commit_lsn={3})".format(len(self.nodes), primary,
                                         self.mode, self.commit_lsn))
