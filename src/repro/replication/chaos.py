"""The chaos-sweep harness: seeded crash/partition schedules against a
:class:`~repro.replication.group.ReplicationGroup`, with the safety
invariants checked at the end of every schedule.

One :func:`run_chaos_schedule` call drives a cluster through a seeded
sequence of transactions while injecting, at random but reproducible
points: primary crashes *mid-commit* (a crash plan armed on the
primary's own commit-path sites), clean primary kills, link partitions
(healed a few transactions later), and probabilistic message drops and
delays on the ``repl.ship`` / ``repl.ack`` sites.  Afterwards the
harness heals every link, restarts every dead node, drains replication
and verifies:

1. **No acked write lost** — every transaction the cluster
   acknowledged (in sync mode: quorum-acked) is present on *every*
   serving node.  Crash- or timeout-interrupted transactions are
   *unknown*, not lost: they may legitimately appear or be fenced.
2. **No divergence** — :meth:`divergence_report` is empty: all nodes
   agree, per-LSN checksum for checksum, on the surviving history.
3. **Sane elections** — every recorded failover promoted the most
   caught-up candidate (max ``(last term, last LSN)``).

:func:`chaos_sweep` runs a batch of schedules across consecutive seeds
and aggregates the verdicts; the CI chaos job fans the seed base out
via the ``FAULT_SWEEP_SEED`` environment variable.
"""

import random
from dataclasses import dataclass, field

from repro.faults import CrashError, FaultInjector
from repro.replication.group import (
    NoPrimaryError, QuorumTimeout, ReplicationGroup,
)

# The primary's commit path, in write-ahead order: a crash at any of
# these models the primary process dying mid-commit.
CRASH_SITES = ("commit.validate", "wal.append", "commit.publish",
               "commit.apply")


@dataclass
class ChaosReport:
    """What one seeded schedule did and whether the invariants held."""

    seed: int
    mode: str
    txns_attempted: int = 0
    txns_acked: int = 0
    txns_unknown: int = 0      # crash/timeout mid-commit: fate unknown
    crashes: int = 0           # primaries killed mid-commit
    kills: int = 0             # clean node kills
    partitions: int = 0
    failovers: int = 0
    fenced_entries: int = 0
    ticks: int = 0
    lost_acked: list = field(default_factory=list)   # [(k, node_id)]
    divergent: list = field(default_factory=list)    # [(lsn, {id: crc})]
    bad_elections: list = field(default_factory=list)

    @property
    def ok(self):
        return not (self.lost_acked or self.divergent or
                    self.bad_elections)

    def summary(self):
        return ("seed={0} mode={1}: {2} acked / {3} unknown of {4} "
                "txns, {5} crashes, {6} partitions, {7} failovers, "
                "{8} fenced, {9} ticks -> {10}".format(
                    self.seed, self.mode, self.txns_acked,
                    self.txns_unknown, self.txns_attempted,
                    self.crashes, self.partitions, self.failovers,
                    self.fenced_entries, self.ticks,
                    "OK" if self.ok else "FAILED"))


def run_chaos_schedule(seed, n_replicas=2, n_txns=30, mode="sync",
                       crash_rate=0.15, kill_rate=0.05,
                       partition_rate=0.1, drop_rate=0.05,
                       delay_rate=0.1, sync_timeout=200):
    """Run one seeded chaos schedule; returns a :class:`ChaosReport`.

    The link layer runs on a :meth:`FaultInjector.seeded` injector
    (drops and 1-3 tick delays on ``repl.ship``/``repl.ack``); node
    crashes and partitions are scheduled per transaction from the same
    seed.  All sources of randomness derive from ``seed``, so a failing
    schedule replays exactly.
    """
    rng = random.Random(seed)
    # The seeded injector takes one fault kind per site; alternate
    # which traffic class drops vs. stalls so the sweep covers both.
    if seed % 2:
        rates = {"repl.ship": ("transient", drop_rate),
                 "repl.ack": ("latency", delay_rate,
                              1 + rng.randrange(3))}
    else:
        rates = {"repl.ship": ("latency", delay_rate,
                               1 + rng.randrange(3)),
                 "repl.ack": ("transient", drop_rate)}
    link_faults = FaultInjector.seeded(seed * 7919 + 13, rates)
    group = ReplicationGroup(n_replicas=n_replicas, mode=mode,
                             faults=link_faults,
                             sync_timeout=sync_timeout)
    group.execute("CREATE TABLE chaos (k INT, v INT)")
    group.drain()

    report = ChaosReport(seed=seed, mode=mode)
    acked = []                 # k values the cluster acknowledged
    open_partitions = []       # [(heal_at_txn, a, b)]

    for i in range(n_txns):
        report.txns_attempted += 1
        # Heal partitions whose lease expired.
        for due, a, b in [p for p in open_partitions if p[0] <= i]:
            group.heal(a, b)
            open_partitions.remove((due, a, b))
        # Schedule this transaction's chaos.
        roll = rng.random()
        crash_armed = False
        if roll < crash_rate and group.primary is not None \
                and group.primary.alive:
            primary = group.primary
            site = rng.choice(CRASH_SITES)
            torn = rng.randrange(12) if site == "wal.append" \
                and rng.random() < 0.5 else None
            primary.faults.crash_at(
                site, hit=primary.faults.hits[site] + 1, torn=torn)
            crash_armed = True
        elif roll < crash_rate + kill_rate:
            victims = [n for n in group.nodes if n.alive]
            if len(victims) > group.quorum:
                group.kill(rng.choice(victims).node_id)
                report.kills += 1
        elif roll < crash_rate + kill_rate + partition_rate \
                and len(group.nodes) > 1:
            a, b = rng.sample(range(len(group.nodes)), 2)
            group.partition(a, b)
            open_partitions.append((i + 1 + rng.randrange(4), a, b))
            report.partitions += 1

        sql = "INSERT INTO chaos VALUES ({0}, {1})".format(
            i, rng.randrange(1000))
        try:
            try:
                group.execute(sql)
            except NoPrimaryError:
                # The kill above took the primary before the statement
                # started; retry once on the new leader (nothing was
                # appended, so the retry cannot double-apply).
                _revive_if_headless(group, rng)
                group.execute(sql)
        except CrashError:
            report.crashes += 1
            report.txns_unknown += 1
            _revive_if_headless(group, rng)
            continue
        except QuorumTimeout:
            report.txns_unknown += 1
            _revive_if_headless(group, rng)
            continue
        else:
            acked.append(i)
            report.txns_acked += 1
        _revive_if_headless(group, rng)
        group.tick(rng.randrange(3))

    # Let the cluster settle: heal everything, restart the dead,
    # replicate to the end of the surviving history.
    group.heal_all()
    for _, a, b in open_partitions:
        group.heal(a, b)
    for node in group.nodes:
        if not node.alive:
            group.restart(node.node_id)
    if group.primary is None or not group.primary.alive:
        group.await_failover()
    group.drain(max_ticks=2000)

    # -- invariants ----------------------------------------------------------
    serving = [n for n in group.nodes if n.alive]
    contents = {n.node_id: sorted(n.db.query("SELECT k, v FROM chaos"))
                for n in serving}
    if mode == "sync":
        # Sync ack = quorum-durable: no acked transaction may be lost.
        # (Async acks are local-durability only; a primary crash before
        # shipping legitimately fences them — checked instead by the
        # convergence and divergence invariants below.)
        for node in serving:
            present = {row[0] for row in contents[node.node_id]}
            for k in acked:
                if k not in present:
                    report.lost_acked.append((k, node.node_id))
    if len({tuple(rows) for rows in contents.values()}) > 1:
        # After heal + drain every serving node must expose the same
        # table — a stale unfenced tail would surface here.
        report.divergent.append(("contents", contents))
    report.divergent += group.divergence_report()
    for event in group.failovers:
        if not event.winner_was_most_caught_up():
            report.bad_elections.append(event)

    report.failovers = group.stats.failovers
    report.fenced_entries = group.stats.fenced_entries
    report.ticks = group.clock.now
    return report


def _revive_if_headless(group, rng):
    """After chaos, make sure the cluster can make progress again:
    restart enough dead nodes for an election quorum (elections need a
    majority of candidates — the Raft safety rule) and tick until a
    new primary is serving."""
    if group.primary is None or not group.primary.alive:
        candidates = [n for n in group.nodes
                      if n.alive and n.role == "replica"]
        if len(candidates) < group.quorum:
            for node in group.nodes:
                if not node.alive:
                    group.restart(node.node_id)
        group.await_failover()
    alive = sum(1 for n in group.nodes if n.alive)
    if alive < group.quorum:
        dead = [n for n in group.nodes if not n.alive]
        group.restart(rng.choice(dead).node_id)
        group.drain(max_ticks=200)


def chaos_sweep(seed_base, n_schedules=20, **kwargs):
    """Run ``n_schedules`` consecutive seeded schedules; returns the
    list of :class:`ChaosReport` (callers assert ``all(r.ok ...)``)."""
    return [run_chaos_schedule(seed_base + i, **kwargs)
            for i in range(n_schedules)]
