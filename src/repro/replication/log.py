"""The replicated log: term/LSN-stamped WAL records with per-LSN
checksums.

Replication ships the same logical commit records the single-node WAL
already frames (:mod:`repro.wal`), with two extra keys stamped into
each record before it is framed:

* ``lsn`` — the record's 0-based sequence number in the replicated
  stream (dense: entry *i* of the log has LSN *i*);
* ``term`` — the election epoch of the primary that appended it.

Because the stamp is part of the framed payload, the frame's CRC *is*
the per-LSN checksum: two nodes agree on an LSN exactly when the
crc32 of the canonical JSON matches.  Divergence detection and the
fencing protocol (truncate a deposed primary's unacked tail) are both
checksum comparisons over these entries.
"""

import json
import zlib

from repro.faults import NO_FAULTS
from repro.wal import WriteAheadLog


def entry_checksum(record):
    """The per-LSN checksum: crc32 over the canonical framed payload."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return zlib.crc32(payload)


def record_size(record):
    """Framed payload size in bytes (what shipping the record costs)."""
    return len(json.dumps(record, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")) + 8


class LogEntry:
    """One replicated record: (lsn, term, checksum, record)."""

    __slots__ = ("lsn", "term", "checksum", "record")

    def __init__(self, lsn, term, checksum, record):
        self.lsn = lsn
        self.term = term
        self.checksum = checksum
        self.record = record

    def __repr__(self):
        return "LogEntry(lsn={0}, term={1}, crc={2:#010x})".format(
            self.lsn, self.term, self.checksum)


class NotPrimaryError(RuntimeError):
    """A write reached a log whose node is not the current primary.

    This is the fencing backstop: a deposed primary's log is sealed
    (its stamp is revoked at failover), so any straggler write raises
    here instead of silently appending to a divergent tail.
    """


class ReplicatedLog(WriteAheadLog):
    """A :class:`~repro.wal.WriteAheadLog` that stamps and indexes
    replication metadata.

    On the primary, ``stamp`` is a callable returning the next
    ``(term, lsn)`` pair and every appended record is stamped before
    framing.  On replicas ``stamp`` is None and records arrive
    pre-stamped from the leader; an *unstamped* append on a stampless
    log raises :class:`NotPrimaryError` — the log is fenced.

    ``entries[i]`` always holds LSN ``i`` (the list is dense), and an
    entry is registered only after its frame is durable, so a crash
    torn mid-append never leaves a phantom entry to ship.
    """

    def __init__(self, path=None, faults=None):
        super().__init__(path, faults)
        self.entries = []
        self.stamp = None     # callable -> (term, lsn); None = fenced

    # -- appends ---------------------------------------------------------------

    def append(self, record):
        if "lsn" not in record:
            if self.stamp is None:
                raise NotPrimaryError(
                    "log is fenced: this node is not the primary")
            term, lsn = self.stamp()
            record = dict(record, term=term, lsn=lsn)
        lsn = record["lsn"]
        if lsn != len(self.entries):
            raise ValueError(
                "non-contiguous append: LSN {0} onto a log of "
                "{1} entries".format(lsn, len(self.entries)))
        offset = super().append(record)  # crash here -> no entry
        self.entries.append(LogEntry(lsn, record["term"],
                                     entry_checksum(record), record))
        return offset

    # -- geometry --------------------------------------------------------------

    @property
    def last_lsn(self):
        """LSN of the newest entry (-1 on an empty log)."""
        return len(self.entries) - 1

    @property
    def last_term(self):
        return self.entries[-1].term if self.entries else 0

    def entry_at(self, lsn):
        """The entry with the given LSN, or None when out of range."""
        if 0 <= lsn < len(self.entries):
            return self.entries[lsn]
        return None

    def checksum_at(self, lsn):
        entry = self.entry_at(lsn)
        return entry.checksum if entry is not None else None

    # -- fencing ---------------------------------------------------------------

    def truncate_from(self, lsn):
        """Fence the log at ``lsn``: drop every entry with LSN >= lsn
        and rewrite the framed medium to the surviving prefix.

        This is the rejoin path of a deposed primary — its unacked
        tail loses to the new leader's log.  Returns the number of
        entries dropped.  The rewrite bypasses fault injection (it is
        local recovery, not a new commit) and never re-ships.
        """
        if lsn > len(self.entries):
            return 0
        kept = self.entries[:max(lsn, 0)]
        dropped = len(self.entries) - len(kept)
        if not dropped:
            return 0
        self.entries = []
        saved_faults, self.faults = self.faults, NO_FAULTS
        saved_stamp, self.stamp = self.stamp, None
        try:
            self.truncate()
            for entry in kept:
                self.append(entry.record)
        finally:
            self.faults = saved_faults
            self.stamp = saved_stamp
        return dropped

    def __repr__(self):
        return "ReplicatedLog({0} entries, last term {1})".format(
            len(self.entries), self.last_term)
