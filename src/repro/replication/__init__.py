"""WAL-shipping replication: primary/replica clusters with automatic
failover, fencing, divergence detection and a chaos-sweep harness.

See :mod:`repro.replication.group` for the protocol and
:mod:`repro.replication.chaos` for the seeded sweep harness.
"""

from repro.replication.chaos import (
    ChaosReport, chaos_sweep, run_chaos_schedule,
)
from repro.replication.group import (
    FailoverEvent, Node, NoPrimaryError, QuorumTimeout, ReplicationError,
    ReplicationGroup, Session,
)
from repro.replication.log import (
    LogEntry, NotPrimaryError, ReplicatedLog, entry_checksum,
)

__all__ = [
    "ReplicationGroup", "Session", "Node", "FailoverEvent",
    "ReplicationError", "NoPrimaryError", "QuorumTimeout",
    "ReplicatedLog", "LogEntry", "NotPrimaryError", "entry_checksum",
    "ChaosReport", "chaos_sweep", "run_chaos_schedule",
]
