"""N-ary Storage Model: fixed-width records in slotted pages.

The traditional row layout every tuple-at-a-time engine assumes.  A page
holds a slot directory (record offsets, tombstoned on delete) and packed
records.  Trace generators expose the layout's cache behaviour: scanning
one column still drags every record's full width through the cache — the
I/O and bandwidth waste column stores eliminate.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.atoms import atom_by_name
from repro.core.bat import global_address_space
from repro.hardware import trace as trace_mod

DEFAULT_PAGE_SIZE = 8192
SLOT_BYTES = 2
PAGE_HEADER_BYTES = 8


@dataclass(frozen=True)
class RecordSchema:
    """Fixed-width record layout: ordered (name, type-name) fields."""

    fields: tuple

    def __post_init__(self):
        object.__setattr__(self, "fields", tuple(
            (name, atom_by_name(type_name).name)
            for name, type_name in self.fields))

    @property
    def names(self):
        return [name for name, _ in self.fields]

    def atom(self, name):
        for field_name, type_name in self.fields:
            if field_name == name:
                return atom_by_name(type_name)
        raise KeyError("no field {0!r}".format(name))

    def field_offset(self, name):
        """Byte offset of a field within the record."""
        offset = 0
        for field_name, type_name in self.fields:
            if field_name == name:
                return offset
            offset += atom_by_name(type_name).width
        raise KeyError("no field {0!r}".format(name))

    @property
    def record_width(self):
        return sum(atom_by_name(t).width for _, t in self.fields)


class _Page:
    """One slotted page of fixed-width records."""

    def __init__(self, page_size, record_width):
        self.page_size = page_size
        self.record_width = record_width
        self.capacity = (page_size - PAGE_HEADER_BYTES) // \
            (record_width + SLOT_BYTES)
        self.records = []
        self.live = []
        self.base = global_address_space.allocate(page_size,
                                                  align=page_size)

    @property
    def full(self):
        return len(self.records) >= self.capacity

    def insert(self, record):
        self.records.append(tuple(record))
        self.live.append(True)
        return len(self.records) - 1

    def record_address(self, slot):
        return self.base + PAGE_HEADER_BYTES + slot * self.record_width


class NSMTable:
    """A row-store table of fixed-width records.

    Records are addressed by rid ``(page_no, slot)``.  Deletion
    tombstones the slot.
    """

    def __init__(self, schema, page_size=DEFAULT_PAGE_SIZE):
        if isinstance(schema, (list, tuple)):
            schema = RecordSchema(tuple(schema))
        self.schema = schema
        self.page_size = page_size
        if schema.record_width + SLOT_BYTES > page_size - PAGE_HEADER_BYTES:
            raise ValueError("record wider than a page")
        self.pages = [_Page(page_size, schema.record_width)]

    def insert(self, record):
        """Insert one record; returns its rid."""
        if len(record) != len(self.schema.fields):
            raise ValueError("record arity mismatch")
        page = self.pages[-1]
        if page.full:
            page = _Page(self.page_size, self.schema.record_width)
            self.pages.append(page)
        slot = page.insert(record)
        return (len(self.pages) - 1, slot)

    def insert_many(self, records):
        return [self.insert(r) for r in records]

    def fetch(self, rid):
        """The record at ``rid`` (KeyError when deleted/absent)."""
        page_no, slot = rid
        try:
            page = self.pages[page_no]
            if not page.live[slot]:
                raise KeyError(rid)
            return page.records[slot]
        except IndexError:
            raise KeyError(rid) from None

    def delete(self, rid):
        page_no, slot = rid
        self.pages[page_no].live[slot] = False

    def scan(self):
        """Iterate (rid, record) over live records in storage order."""
        for page_no, page in enumerate(self.pages):
            for slot, record in enumerate(page.records):
                if page.live[slot]:
                    yield (page_no, slot), record

    def rows(self):
        return [record for _, record in self.scan()]

    def __len__(self):
        return sum(sum(page.live) for page in self.pages)

    # -- trace generators ------------------------------------------------------

    def record_address(self, rid):
        page_no, slot = rid
        return self.pages[page_no].record_address(slot)

    def scan_trace(self, field_names):
        """Addresses touched when scanning only ``field_names``.

        Even a single-column scan strides through full-width records —
        the NSM bandwidth waste the paper contrasts with DSM.
        """
        offsets = np.asarray(
            [self.schema.field_offset(n) for n in field_names],
            dtype=np.int64)
        parts = []
        for page in self.pages:
            n = len(page.records)
            if n == 0:
                continue
            record_addrs = (page.base + PAGE_HEADER_BYTES
                            + np.arange(n, dtype=np.int64)
                            * self.schema.record_width)
            parts.append((record_addrs[:, None]
                          + offsets[None, :]).reshape(-1))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def fetch_trace(self, rids, field_names=None):
        """Addresses touched fetching ``rids`` (slot read + fields)."""
        if field_names is None:
            field_names = self.schema.names
        offsets = np.asarray(
            [self.schema.field_offset(n) for n in field_names],
            dtype=np.int64)
        addrs = []
        for rid in rids:
            base = self.record_address(rid)
            addrs.extend((base + offsets).tolist())
        return np.asarray(addrs, dtype=np.int64)
