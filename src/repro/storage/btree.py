"""A B+-tree — the traditional "fast record lookup" baseline.

Section 3 argues that MonetDB's memory-array positional lookup
"compares favorably to B-tree lookup into slotted pages".  This module
provides that B-tree: sorted keys in inner nodes, values in leaves, a
linked leaf level for range scans, and address-trace generation so
experiment E8 can count the cache behaviour of root-to-leaf descents.

Deletes are tombstoning (no rebalancing): lookup correctness is
unaffected and the experiments never shrink trees.
"""

import bisect

import numpy as np

from repro.core.bat import global_address_space


class _Node:
    __slots__ = ("keys", "base")

    def allocate(self, node_bytes):
        self.base = global_address_space.allocate(node_bytes)


class _Leaf(_Node):
    __slots__ = ("values", "next_leaf", "dead")

    def __init__(self, node_bytes):
        self.keys = []
        self.values = []
        self.dead = set()
        self.next_leaf = None
        self.allocate(node_bytes)

    @property
    def is_leaf(self):
        return True


class _Inner(_Node):
    __slots__ = ("children",)

    def __init__(self, node_bytes):
        self.keys = []       # separator keys
        self.children = []   # len(keys) + 1
        self.allocate(node_bytes)

    @property
    def is_leaf(self):
        return False


class BPlusTree:
    """B+-tree mapping integer keys to values.

    Parameters
    ----------
    order:
        Maximum number of keys per node (fan-out - 1).
    key_bytes:
        Bytes per key entry, used for node sizing and access traces.
    """

    def __init__(self, order=64, key_bytes=8):
        if order < 3:
            raise ValueError("order must be at least 3")
        self.order = order
        self.key_bytes = key_bytes
        self.node_bytes = order * key_bytes * 2  # keys + pointers/values
        self.root = _Leaf(self.node_bytes)
        self.height = 1
        self._count = 0

    def __len__(self):
        return self._count

    # -- mutation ------------------------------------------------------------

    def insert(self, key, value):
        """Insert (duplicate keys overwrite, like a unique index)."""
        split = self._insert(self.root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Inner(self.node_bytes)
            new_root.keys = [sep]
            new_root.children = [self.root, right]
            self.root = new_root
            self.height += 1

    def _insert(self, node, key, value):
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                node.dead.discard(key)
                return None
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._count += 1
            if len(node.keys) <= self.order:
                return None
            # Split leaf.
            mid = len(node.keys) // 2
            right = _Leaf(self.node_bytes)
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            right.dead = {k for k in node.dead if k >= right.keys[0]}
            node.dead -= right.dead
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            right.next_leaf = node.next_leaf
            node.next_leaf = right
            return (right.keys[0], right)
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) <= self.order:
            return None
        mid = len(node.keys) // 2
        new_right = _Inner(self.node_bytes)
        new_sep = node.keys[mid]
        new_right.keys = node.keys[mid + 1:]
        new_right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return (new_sep, new_right)

    def insert_many(self, pairs):
        for key, value in pairs:
            self.insert(key, value)

    def delete(self, key):
        """Tombstone a key (lazy deletion)."""
        leaf, i = self._descend(key)
        if i < len(leaf.keys) and leaf.keys[i] == key \
                and key not in leaf.dead:
            leaf.dead.add(key)
            self._count -= 1
            return True
        return False

    # -- lookup ---------------------------------------------------------------

    def _descend(self, key):
        node = self.root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node, bisect.bisect_left(node.keys, key)

    def search(self, key):
        """The value for ``key``, or None."""
        leaf, i = self._descend(key)
        if i < len(leaf.keys) and leaf.keys[i] == key \
                and key not in leaf.dead:
            return leaf.values[i]
        return None

    def range_scan(self, lo, hi):
        """All (key, value) with lo <= key < hi, via the leaf chain."""
        leaf, i = self._descend(lo)
        out = []
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if key >= hi:
                    return out
                if key not in leaf.dead:
                    out.append((key, leaf.values[i]))
                i += 1
            leaf = leaf.next_leaf
            i = 0
        return out

    # -- trace generation --------------------------------------------------------

    def lookup_trace(self, key):
        """Addresses touched by one root-to-leaf probe.

        Per node: the binary-search touch sequence over its key array
        (log2 probes, each a potentially distinct cache line), plus the
        child-pointer read.
        """
        addrs = []
        node = self.root
        while True:
            addrs.extend(self._binary_search_addresses(node, key))
            if node.is_leaf:
                break
            i = bisect.bisect_right(node.keys, key)
            # Child pointer read: stored after the key array.
            addrs.append(node.base + self.order * self.key_bytes
                         + i * self.key_bytes)
            node = node.children[i]
        return np.asarray(addrs, dtype=np.int64)

    def _binary_search_addresses(self, node, key):
        addrs = []
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            addrs.append(node.base + mid * self.key_bytes)
            if node.keys[mid] < key if node.is_leaf else \
                    node.keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        if not addrs:
            addrs.append(node.base)
        return addrs

    # -- inspection ----------------------------------------------------------------

    def node_count(self):
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return total
