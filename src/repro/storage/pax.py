"""PAX: Partition Attributes Across (Section 7, Ailamaki et al. [5]).

A hybrid layout: NSM-like paged storage, but inside every page the
records are decomposed into per-attribute *minipages*.  Scanning one
column touches only that column's minipages — DSM-like cache behaviour —
while a full-record fetch stays within one page — NSM-like I/O
behaviour.
"""

import numpy as np

from repro.core.bat import global_address_space
from repro.storage.nsm import PAGE_HEADER_BYTES, RecordSchema

DEFAULT_PAGE_SIZE = 8192


class _PAXPage:
    def __init__(self, schema, page_size):
        self.schema = schema
        self.page_size = page_size
        usable = page_size - PAGE_HEADER_BYTES
        self.capacity = usable // schema.record_width
        self.base = global_address_space.allocate(page_size,
                                                  align=page_size)
        # Minipage byte offsets within the page, one per field.
        self.minipage_offsets = {}
        offset = PAGE_HEADER_BYTES
        for name, type_name in schema.fields:
            self.minipage_offsets[name] = offset
            offset += self.capacity * schema.atom(name).width
        self.columns = {name: [] for name in schema.names}
        self.live = []

    @property
    def n_records(self):
        return len(self.live)

    @property
    def full(self):
        return self.n_records >= self.capacity

    def insert(self, record):
        for (name, _), value in zip(self.schema.fields, record):
            self.columns[name].append(value)
        self.live.append(True)
        return self.n_records - 1

    def field_address(self, name, slot):
        return (self.base + self.minipage_offsets[name]
                + slot * self.schema.atom(name).width)


class PAXTable:
    """A PAX-paged table with the same API as :class:`NSMTable`."""

    def __init__(self, schema, page_size=DEFAULT_PAGE_SIZE):
        if isinstance(schema, (list, tuple)):
            schema = RecordSchema(tuple(schema))
        self.schema = schema
        self.page_size = page_size
        if schema.record_width > page_size - PAGE_HEADER_BYTES:
            raise ValueError("record wider than a page")
        self.pages = [_PAXPage(schema, page_size)]

    def insert(self, record):
        if len(record) != len(self.schema.fields):
            raise ValueError("record arity mismatch")
        page = self.pages[-1]
        if page.full:
            page = _PAXPage(self.schema, self.page_size)
            self.pages.append(page)
        slot = page.insert(record)
        return (len(self.pages) - 1, slot)

    def insert_many(self, records):
        return [self.insert(r) for r in records]

    def fetch(self, rid):
        page_no, slot = rid
        try:
            page = self.pages[page_no]
            if not page.live[slot]:
                raise KeyError(rid)
            return tuple(page.columns[name][slot]
                         for name in self.schema.names)
        except IndexError:
            raise KeyError(rid) from None

    def delete(self, rid):
        page_no, slot = rid
        self.pages[page_no].live[slot] = False

    def scan(self):
        for page_no, page in enumerate(self.pages):
            for slot in range(page.n_records):
                if page.live[slot]:
                    yield (page_no, slot), tuple(
                        page.columns[name][slot]
                        for name in self.schema.names)

    def rows(self):
        return [record for _, record in self.scan()]

    def __len__(self):
        return sum(sum(page.live) for page in self.pages)

    # -- trace generators ------------------------------------------------------

    def scan_trace(self, field_names):
        """Column-scan addresses: sequential within each minipage.

        Unlike NSM, unrequested attributes are never touched.
        """
        parts = []
        for page in self.pages:
            n = page.n_records
            if n == 0:
                continue
            for name in field_names:
                width = self.schema.atom(name).width
                start = page.base + page.minipage_offsets[name]
                parts.append(start + np.arange(n, dtype=np.int64) * width)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def fetch_trace(self, rids, field_names=None):
        """Record-fetch addresses: one minipage access per field."""
        if field_names is None:
            field_names = self.schema.names
        addrs = []
        for page_no, slot in rids:
            page = self.pages[page_no]
            for name in field_names:
                addrs.append(page.field_address(name, slot))
        return np.asarray(addrs, dtype=np.int64)
