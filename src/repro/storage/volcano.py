"""A tuple-at-a-time Volcano iterator engine — the execution dinosaur.

"Traditional database systems implement each relational algebra operator
as an iterator class with a next() method that returns the next tuple
... As a recursive series of method calls is performed to produce a
single tuple, computational interpretation overhead is significant."
(Section 3.)

Every operator below follows the open/next/close protocol and produces
one Python tuple per ``next()`` call; predicates and projections are
callables evaluated per tuple — the expression-interpreter-in-the-inner-
loop the BAT Algebra removes.  Experiments E5 and E13 measure this
engine against vectorized and bulk execution on identical plans.
"""


class Operator:
    """Base iterator operator (open/next/close)."""

    def open(self):
        raise NotImplementedError

    def next(self):
        """The next tuple, or None when exhausted."""
        raise NotImplementedError

    def close(self):
        pass

    def __iter__(self):
        self.open()
        try:
            while True:
                row = self.next()
                if row is None:
                    return
                yield row
        finally:
            self.close()


class TableScan(Operator):
    """Scan over a list of tuples (or any re-iterable of rows)."""

    def __init__(self, rows):
        self.rows = rows
        self._iter = None

    def open(self):
        self._iter = iter(self.rows)

    def next(self):
        return next(self._iter, None)


class SelectOp(Operator):
    """Filter: per-tuple predicate call."""

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate

    def open(self):
        self.child.open()

    def next(self):
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self.predicate(row):
                return row

    def close(self):
        self.child.close()


class ProjectOp(Operator):
    """Map: per-tuple projection call."""

    def __init__(self, child, projector):
        self.child = child
        self.projector = projector

    def open(self):
        self.child.open()

    def next(self):
        row = self.child.next()
        if row is None:
            return None
        return self.projector(row)

    def close(self):
        self.child.close()


class HashJoinOp(Operator):
    """Blocking-build, streaming-probe equi-join."""

    def __init__(self, build_child, probe_child, build_key, probe_key):
        self.build_child = build_child
        self.probe_child = probe_child
        self.build_key = build_key
        self.probe_key = probe_key
        self._table = None
        self._pending = None

    def open(self):
        self.build_child.open()
        self._table = {}
        while True:
            row = self.build_child.next()
            if row is None:
                break
            self._table.setdefault(self.build_key(row), []).append(row)
        self.build_child.close()
        self.probe_child.open()
        self._pending = iter(())

    def next(self):
        while True:
            joined = next(self._pending, None)
            if joined is not None:
                return joined
            probe_row = self.probe_child.next()
            if probe_row is None:
                return None
            matches = self._table.get(self.probe_key(probe_row), ())
            self._pending = (probe_row + build_row
                             for build_row in matches)

    def close(self):
        self.probe_child.close()


class GroupAggregate(Operator):
    """Blocking hash group-by with per-tuple accumulator calls.

    ``aggregates`` is a list of (initial value, step function); step is
    called as ``step(accumulator, row) -> accumulator``.
    """

    def __init__(self, child, key_fn, aggregates):
        self.child = child
        self.key_fn = key_fn
        self.aggregates = aggregates
        self._result_iter = None

    def open(self):
        self.child.open()
        groups = {}
        while True:
            row = self.child.next()
            if row is None:
                break
            key = self.key_fn(row)
            state = groups.get(key)
            if state is None:
                state = [init for init, _ in self.aggregates]
                groups[key] = state
            for i, (_, step) in enumerate(self.aggregates):
                state[i] = step(state[i], row)
        self.child.close()
        self._result_iter = iter(
            [(key if isinstance(key, tuple) else (key,)) + tuple(state)
             for key, state in groups.items()])

    def next(self):
        return next(self._result_iter, None)


class ScalarAggregate(Operator):
    """Aggregate the whole input to a single row."""

    def __init__(self, child, aggregates):
        self.child = child
        self.aggregates = aggregates
        self._done = False

    def open(self):
        self.child.open()
        self._done = False

    def next(self):
        if self._done:
            return None
        state = [init for init, _ in self.aggregates]
        while True:
            row = self.child.next()
            if row is None:
                break
            for i, (_, step) in enumerate(self.aggregates):
                state[i] = step(state[i], row)
        self.child.close()
        self._done = True
        return tuple(state)


class LimitOp(Operator):
    def __init__(self, child, limit):
        self.child = child
        self.limit = limit
        self._emitted = 0

    def open(self):
        self.child.open()
        self._emitted = 0

    def next(self):
        if self._emitted >= self.limit:
            return None
        row = self.child.next()
        if row is not None:
            self._emitted += 1
        return row

    def close(self):
        self.child.close()


def run_plan(root):
    """Drain a plan into a list of tuples."""
    return list(root)
