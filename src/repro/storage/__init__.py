"""Traditional storage and execution baselines.

The paper's comparisons need the species it argues against: NSM slotted
pages (:mod:`repro.storage.nsm`), the PAX hybrid layout
(:mod:`repro.storage.pax`), B+-tree indexed lookup
(:mod:`repro.storage.btree`), and the tuple-at-a-time Volcano iterator
engine (:mod:`repro.storage.volcano`).
"""

from repro.storage.nsm import NSMTable, RecordSchema
from repro.storage.pax import PAXTable
from repro.storage.btree import BPlusTree
from repro.storage.volcano import (
    GroupAggregate,
    HashJoinOp,
    LimitOp,
    Operator,
    ProjectOp,
    ScalarAggregate,
    SelectOp,
    TableScan,
    run_plan,
)

__all__ = [
    "RecordSchema",
    "NSMTable",
    "PAXTable",
    "BPlusTree",
    "Operator",
    "TableScan",
    "SelectOp",
    "ProjectOp",
    "HashJoinOp",
    "GroupAggregate",
    "ScalarAggregate",
    "LimitOp",
    "run_plan",
]
