"""Per-worker execution contexts over a shared last-level cache.

Each simulated worker owns a private cache hierarchy (the inner levels
of an SMP :class:`~repro.hardware.profiles.HardwareProfile`) but all
workers' hierarchies end in the *same* last-level :class:`Cache`
instance.  Misses out of a worker's private levels therefore land in a
cache whose contents all workers fight over — the paper-era reality
that intra-query parallel speedup is bounded by shared-cache capacity:
once the workers' aggregate vector working set exceeds the LLC they
evict each other's lines and every worker's per-batch cost jumps to
memory latency (experiment E17 shows the knee).

LLC cycles are *attributed* to the worker whose pull caused them (the
exchange snapshots the shared counters around each pull), so the
simulated elapsed time of a parallel plan is the critical path::

    elapsed = max over workers of (private cycles + attributed LLC cycles)
"""

from repro.hardware.hierarchy import MemoryHierarchy
from repro.hardware.profiles import SCALED_SMP
from repro.vectorized.operators import DEFAULT_VECTOR_SIZE, ExecutionContext


class WorkerContext(ExecutionContext):
    """One simulated worker's execution state (id + private hierarchy)."""

    def __init__(self, worker_id, vector_size=DEFAULT_VECTOR_SIZE,
                 hierarchy=None):
        super().__init__(vector_size, hierarchy)
        self.worker_id = worker_id


class WorkerSet:
    """N worker contexts whose hierarchies share one last-level cache.

    Parameters
    ----------
    workers:
        Number of simulated workers.
    profile:
        An SMP :class:`HardwareProfile`; its last cache level becomes the
        shared LLC, the inner levels are built privately per worker.
        Pass ``profile=None`` for pure result-parallelism with no cache
        simulation at all (fast unit tests).
    vector_size:
        Vector size of every worker's pipelines.
    """

    def __init__(self, workers, profile=SCALED_SMP,
                 vector_size=DEFAULT_VECTOR_SIZE):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.profile = profile
        self.shared_llc = None
        self.contexts = []
        self.llc_cycles = [0] * workers
        self.llc_misses = [0] * workers
        if profile is None:
            self.contexts = [WorkerContext(w, vector_size)
                             for w in range(workers)]
            return
        if len(profile.caches) < 2:
            raise ValueError("an SMP profile needs private levels plus "
                             "a shared last level")
        self.shared_llc = profile.caches[-1].build()
        for w in range(workers):
            privates = [spec.build() for spec in profile.caches[:-1]]
            tlb = profile.tlb.build() if profile.tlb is not None else None
            hierarchy = MemoryHierarchy(privates + [self.shared_llc],
                                        tlb=tlb,
                                        name="worker-{0}".format(w))
            self.contexts.append(WorkerContext(w, vector_size, hierarchy))

    def __len__(self):
        return len(self.contexts)

    # -- attribution (called by the exchange around each pull) ---------------

    def charge_llc(self, worker, cycles_before, misses_before):
        if self.shared_llc is None:
            return
        self.llc_cycles[worker] += self.shared_llc.miss_cycles() \
            - cycles_before
        self.llc_misses[worker] += self.shared_llc.stats.misses \
            - misses_before

    def llc_snapshot(self):
        if self.shared_llc is None:
            return (0, 0)
        return (self.shared_llc.miss_cycles(), self.shared_llc.stats.misses)

    # -- reporting -----------------------------------------------------------

    def private_cycles(self, worker):
        """Cycles of one worker excluding the shared LLC."""
        ctx = self.contexts[worker]
        if ctx.hierarchy is None:
            return 0
        h = ctx.hierarchy
        private = sum(c.miss_cycles() for c in h.caches
                      if c is not self.shared_llc)
        return private + h.tlb_cycles + h.cpu_cycles

    def worker_cycles(self, worker):
        """Simulated cycles attributable to one worker."""
        return self.private_cycles(worker) + self.llc_cycles[worker]

    def critical_path_cycles(self):
        """Simulated elapsed cycles: the slowest worker bounds the query."""
        return max(self.worker_cycles(w) for w in range(len(self)))

    def total_cycles(self):
        """Aggregate work (the sum a serial run would have paid)."""
        return sum(self.worker_cycles(w) for w in range(len(self)))

    def profile_report(self):
        """Per-worker profiles in the ``ExecutionContext.profile`` shape.

        ``{"worker-0": {operator: [batches, rows]}, ...}`` plus a
        ``"cycles"`` map and the shared-LLC counters, so callers see
        where both rows and simulated time went.
        """
        report = {}
        cycles = {}
        for w, ctx in enumerate(self.contexts):
            name = "worker-{0}".format(w)
            report[name] = {op: list(entry)
                            for op, entry in ctx.profile.items()}
            cycles[name] = self.worker_cycles(w)
        report["cycles"] = cycles
        if self.shared_llc is not None:
            stats = self.shared_llc.stats
            report["shared_llc"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "miss_cycles": self.shared_llc.miss_cycles(),
            }
        return report

    def tracer_view(self, worker):
        """What worker ``worker``'s tracer should watch.

        The worker's hierarchy *object* ends in the shared LLC, whose
        counters move whenever ANY worker runs — watching it directly
        would attribute every peer's traffic to this worker's open
        spans.  The view exposes only the private levels plus this
        worker's *attributed* share of the LLC (``llc_cycles`` /
        ``llc_misses``, charged per pull by the exchange), so summing
        any counter over all workers' span trees reproduces the global
        accounting exactly.
        """
        ctx = self.contexts[worker]
        if ctx.hierarchy is None:
            return None
        return _WorkerHierarchyView(self, worker)

    def miss_counts(self):
        """Deterministic fingerprint of all cache traffic (tests)."""
        counts = {}
        for w, ctx in enumerate(self.contexts):
            if ctx.hierarchy is None:
                continue
            for cache in ctx.hierarchy.caches:
                if cache is self.shared_llc:
                    continue
                counts[("worker-{0}".format(w), cache.name)] = \
                    cache.stats.misses
        if self.shared_llc is not None:
            counts[("shared", self.shared_llc.name)] = \
                self.shared_llc.stats.misses
        return counts


class _AttributedLLCProxy:
    """Stats-only stand-in for the shared LLC inside a tracer view:
    reports the misses *attributed* to one worker, not the global
    counter."""

    __slots__ = ("_worker_set", "_worker", "name")

    def __init__(self, worker_set, worker):
        self._worker_set = worker_set
        self._worker = worker
        self.name = worker_set.shared_llc.name

    @property
    def stats(self):
        from repro.hardware.cache import CacheStats
        return CacheStats(random_misses=self._worker_set
                          .llc_misses[self._worker])


class _WorkerHierarchyView:
    """Tracer-facing view of one worker's hierarchy (see
    :meth:`WorkerSet.tracer_view`): private levels as-is, the shared
    LLC replaced by this worker's attributed share."""

    __slots__ = ("_worker_set", "_worker")

    def __init__(self, worker_set, worker):
        self._worker_set = worker_set
        self._worker = worker

    @property
    def _hierarchy(self):
        return self._worker_set.contexts[self._worker].hierarchy

    @property
    def caches(self):
        shared = self._worker_set.shared_llc
        out = [c for c in self._hierarchy.caches if c is not shared]
        if shared is not None:
            out.append(_AttributedLLCProxy(self._worker_set, self._worker))
        return out

    @property
    def tlb(self):
        return self._hierarchy.tlb

    @property
    def cpu_cycles(self):
        return self._hierarchy.cpu_cycles

    @property
    def accesses(self):
        return self._hierarchy.accesses

    @property
    def total_cycles(self):
        """This worker's cycles: private levels + TLB + CPU plus its
        attributed LLC share — :meth:`WorkerSet.worker_cycles`."""
        return self._worker_set.worker_cycles(self._worker)
