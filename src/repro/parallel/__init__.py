"""Morsel-driven intra-query parallelism for the vectorized engine.

The paper's X100 line (Section 5) removes per-tuple interpretation
overhead with vectors; the next wall is hardware parallelism.  This
package adds the exchange-style parallelism every industrial engine
converged on ("Query Optimization in the Wild"): base data is split
into *morsels* dispatched by a work-stealing scheduler, per-worker
pipelines run over private simulated cache hierarchies sharing one
last-level cache, and :class:`Exchange` operators merge the partial
streams — so parallel speedup, and its shared-LLC contention ceiling,
are both reproduced (experiment E17).

Workers are *simulated*: execution is single-threaded and interleaves
worker pulls deterministically, making results and cache traffic
exactly reproducible.
"""

from repro.parallel.context import WorkerContext, WorkerSet
from repro.parallel.exchange import (
    Exchange,
    ExchangeUnion,
    MorselScan,
    ParallelExecutionFailed,
    WorkerFailure,
)
from repro.parallel.executor import (
    ParallelResult,
    ParallelSelectExecutor,
    ParallelUnsupported,
)
from repro.parallel.morsels import (
    DEFAULT_MORSEL_SIZE,
    Morsel,
    MorselScheduler,
    split_morsels,
)

__all__ = [
    "DEFAULT_MORSEL_SIZE",
    "Morsel",
    "MorselScheduler",
    "split_morsels",
    "WorkerContext",
    "WorkerSet",
    "MorselScan",
    "Exchange",
    "ExchangeUnion",
    "ParallelExecutionFailed",
    "WorkerFailure",
    "ParallelResult",
    "ParallelSelectExecutor",
    "ParallelUnsupported",
]
