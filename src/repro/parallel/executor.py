"""Parallel SELECT execution: SQL AST -> exchange-parallel vectorized plan.

The serial SQL path compiles to MAL and interprets BAT-at-a-time; this
module is the intra-query-parallel alternative: the same ``Select`` AST
is compiled into N per-worker pull-based vectorized pipelines — a
:class:`~repro.parallel.exchange.MorselScan` over the first FROM table,
broadcast hash joins, vectorized filters, and per-worker *partial*
aggregation — merged by an :class:`~repro.parallel.exchange.Exchange`
and finished serially (final aggregation, DISTINCT, ORDER BY, LIMIT).

Queries the parallel compiler cannot express raise
:class:`ParallelUnsupported`; the caller (``Database.execute``) falls
back to the serial engine, so parallelism never changes which queries
run — only how.  Answers are the same *multiset* as the serial engine's
(union order differs; compare with ``tests.helpers.assert_same_rows``).
"""

from dataclasses import dataclass, field

import numpy as np

from repro.faults import NO_FAULTS
from repro.governance.context import CHECK_MORSEL, NO_GOVERNANCE
from repro.observability.tracer import NO_TRACE, Tracer
from repro.parallel.context import WorkerSet
from repro.parallel.exchange import Exchange, MorselScan
from repro.parallel.morsels import DEFAULT_MORSEL_SIZE, MorselScheduler
from repro.sql.ast import (
    BinOp, Column, FuncCall, Literal, Select, Star, UnaryOp,
)
from repro.vectorized import expressions as vexpr
from repro.vectorized.operators import (
    DEFAULT_VECTOR_SIZE,
    ExecutionContext,
    ScalarVectorAggregate,
    VectorAggregate,
    VectorHashJoin,
    VectorProject,
    VectorSelect,
    VectorScan,
)

_SQL_TO_VECTOR_OP = {"=": "==", "<>": "!=", "<": "<", "<=": "<=",
                     ">": ">", ">=": ">=", "+": "+", "-": "-", "*": "*",
                     "/": "/", "%": "%", "and": "and", "or": "or"}


class ParallelUnsupported(Exception):
    """The query shape has no parallel plan; run it serially."""


@dataclass
class _Binding:
    alias: str
    table: str
    columns: list

    def qualify(self, column):
        return "{0}.{1}".format(self.alias, column)


class _Scope:
    """Alias scope mirroring the serial compiler's resolution rules."""

    def __init__(self):
        self.bindings = []

    def resolve(self, column_ref):
        if column_ref.table is not None:
            for binding in self.bindings:
                if binding.alias == column_ref.table:
                    if column_ref.name not in binding.columns:
                        raise ParallelUnsupported(
                            "no column {0!r} in {1!r}".format(
                                column_ref.name, binding.alias))
                    return binding
            raise ParallelUnsupported("unknown alias {0!r}".format(
                column_ref.table))
        matches = [b for b in self.bindings
                   if column_ref.name in b.columns]
        if len(matches) != 1:
            raise ParallelUnsupported(
                "cannot resolve column {0!r}".format(column_ref.name))
        return matches[0]

    def qualify(self, column_ref):
        return self.resolve(column_ref).qualify(column_ref.name)


@dataclass
class ParallelResult:
    """Outcome of one parallel SELECT.

    ``failures`` lists every worker death the query survived (the
    morsels were re-dispatched to survivors); ``fell_back`` marks a
    query that lost *all* its workers and was answered by the serial
    engine instead (names/columns are then empty — the serial
    ResultSet carries the answer).
    """

    names: list
    columns: list          # python-value lists, ResultSet-ready
    worker_set: WorkerSet
    scheduler: MorselScheduler
    failures: list = field(default_factory=list)
    fell_back: bool = False

    def profile(self):
        """Per-worker/per-operator profile (ExecutionContext shape)."""
        if self.worker_set is None:
            return {}
        return self.worker_set.profile_report()


class ParallelSelectExecutor:
    """Compiles and runs one SELECT against a catalog with N workers.

    Parameters mirror the morsel framework: ``smp_profile`` (None for
    result-parallelism without cache simulation), ``vector_size`` and
    ``morsel_size``.
    """

    def __init__(self, catalog, workers, smp_profile=None,
                 vector_size=DEFAULT_VECTOR_SIZE,
                 morsel_size=DEFAULT_MORSEL_SIZE, faults=None,
                 tracer=None, compiler=None, governance=None):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.catalog = catalog
        self.workers = workers
        self.smp_profile = smp_profile
        self.vector_size = vector_size
        self.morsel_size = morsel_size
        self.faults = faults if faults is not None else NO_FAULTS
        self.tracer = tracer if tracer is not None else NO_TRACE
        # Governance context (repro.governance): checked once per
        # morsel acquisition; a kill propagates out of Exchange.collect
        # (which quarantines only CrashError) without poisoning the
        # per-query scheduler.
        self.governance = governance if governance is not None \
            else NO_GOVERNANCE
        # Optional repro.compile.PlanCompiler: WHERE conjunct chains
        # fuse into one generated predicate kernel per morsel pass.
        self.compiler = compiler
        self.fused_predicates = 0
        self.failures = []

    # -- public entry ---------------------------------------------------------

    def execute(self, select):
        if not isinstance(select, Select):
            raise TypeError("expected a Select AST node")
        if select.table is None:
            raise ParallelUnsupported("FROM-less SELECT")
        if select.limit is not None and not select.order_by:
            # Serial LIMIT without ORDER BY picks rows in scan order;
            # a parallel union would pick a different subset.
            raise ParallelUnsupported("LIMIT without ORDER BY")

        scope = _Scope()
        tables = {}
        self._open(select.table, scope, tables)
        joins = []
        for join in select.joins:
            joins.append(self._prepare_join(join, scope, tables))

        grouped = bool(select.group_by)
        has_aggs = grouped or any(
            _contains_aggregate(item.expr) for item in select.items)
        items = self._expand_items(select, scope)

        worker_set = WorkerSet(self.workers, profile=self.smp_profile,
                               vector_size=self.vector_size)
        first_columns = tables[scope.bindings[0].alias]
        n_rows = len(next(iter(first_columns.values())))
        # Blocking aggregates drain a worker's entire input on its
        # first pull; with stealing enabled, worker 0 would steal every
        # morsel before the others are pulled once and the "parallel"
        # aggregation would run on one worker.  Static shares keep the
        # partials genuinely distributed; streaming plans keep stealing
        # (their round-robin pulls drain the queues evenly).
        scheduler = MorselScheduler(n_rows, self.workers, self.morsel_size,
                                    stealing=not has_aggs)

        self.failures = []
        if grouped:
            names, columns = self._run_grouped(
                select, items, scope, tables, joins, worker_set, scheduler)
        elif has_aggs:
            names, columns = self._run_scalar_aggregates(
                select, items, scope, tables, joins, worker_set, scheduler)
        else:
            names, columns = self._run_projection(
                select, items, scope, tables, joins, worker_set, scheduler)
        return ParallelResult(names, columns, worker_set, scheduler,
                              failures=list(self.failures))

    # -- FROM/JOIN preparation ------------------------------------------------

    def _open(self, table_ref, scope, tables):
        table = self.catalog.get(table_ref.name)
        binding = _Binding(table_ref.alias or table_ref.name,
                           table_ref.name, list(table.column_names))
        scope.bindings.append(binding)
        tables[binding.alias] = self._materialize(table, binding)
        return binding

    def _materialize(self, table, binding):
        """Visible rows of a table as qualified numpy column arrays.

        Raises ParallelUnsupported when any value is nil — the
        vectorized engine has no nil semantics, so nil-bearing tables
        keep the (nil-aware) serial path.
        """
        visible = np.asarray(table.tid().tail, dtype=np.int64)
        arrays = {}
        for column in table.column_names:
            bat = table.bind(column)
            if bat.atom.varsized:
                offsets = bat.tail[visible]
                if len(offsets) and (offsets == bat.heap.NIL_OFFSET).any():
                    raise ParallelUnsupported("nil string values")
                arrays[binding.qualify(column)] = np.asarray(
                    bat.heap.get_many(offsets), dtype=object)
            else:
                values = bat.tail[visible]
                if bat.atom.dtype.kind != "b" and len(values) and \
                        bat.atom.is_nil(values).any():
                    raise ParallelUnsupported("nil values")
                arrays[binding.qualify(column)] = values
        if self.governance.active:
            nbytes = sum(int(a.nbytes) for a in arrays.values())
            if nbytes:
                self.governance.charge(nbytes, CHECK_MORSEL)
        return arrays

    def _prepare_join(self, join, scope, tables):
        """Split ON into one equi pair + residual, like the serial
        compiler; returns (new binding, probe key, build key, residual).
        """
        binding = self._open(join.table, scope, tables)
        equi = None
        residual = []
        for conjunct in _split_conjuncts(join.condition):
            pair = self._equi_pair(conjunct, binding, scope)
            if pair is not None and equi is None:
                equi = pair
            else:
                residual.append(conjunct)
        if equi is None:
            raise ParallelUnsupported("JOIN without usable equality")
        probe_col, build_col = equi
        return (binding, scope.qualify(probe_col), scope.qualify(build_col),
                residual)

    def _equi_pair(self, expr, new_binding, scope):
        if not (isinstance(expr, BinOp) and expr.op == "="
                and isinstance(expr.left, Column)
                and isinstance(expr.right, Column)):
            return None
        try:
            lb = scope.resolve(expr.left)
            rb = scope.resolve(expr.right)
        except ParallelUnsupported:
            return None
        if lb is new_binding and rb is not new_binding:
            return (expr.right, expr.left)
        if rb is new_binding and lb is not new_binding:
            return (expr.left, expr.right)
        return None

    # -- worker pipelines -----------------------------------------------------

    def _source_factory(self, select, scope, tables, joins):
        """plan_factory(ctx, scheduler, worker) for the filtered row
        source: morsel scan -> broadcast hash joins -> predicates."""
        first = scope.bindings[0]
        filters = []
        for _, _, _, residual in joins:
            filters.extend(residual)
        if select.where is not None:
            filters.extend(_split_conjuncts(select.where))
        predicates = [self._vector_expr(f, scope) for f in filters]
        if self.compiler is not None and len(predicates) > 1:
            from repro.compile.vectorized import compile_predicates
            fused = compile_predicates(predicates,
                                       cache=self.compiler.cache)
            if fused is not None:
                predicates = [fused]
                self.fused_predicates += fused.n_fused

        def factory(ctx, scheduler, worker):
            plan = MorselScan(ctx, tables[first.alias], scheduler,
                              worker=worker, faults=self.faults,
                              governance=self.governance)
            for binding, probe_key, build_key, _ in joins:
                build = VectorScan(ctx, tables[binding.alias])
                plan = VectorHashJoin(ctx, build, plan,
                                      build_key=build_key,
                                      probe_key=probe_key)
            for predicate in predicates:
                plan = VectorSelect(ctx, plan, predicate)
            return plan

        return factory

    def _vector_expr(self, expr, scope):
        """SQL expression AST -> vectorized Expression over qualified
        batch columns."""
        if isinstance(expr, Literal):
            return vexpr.Const(expr.value)
        if isinstance(expr, Column):
            return vexpr.Col(scope.qualify(expr))
        if isinstance(expr, UnaryOp):
            operand = self._vector_expr(expr.operand, scope)
            if expr.op == "not":
                return vexpr.NotExpr(operand)
            if expr.op == "-":
                return vexpr.BinExpr("-", vexpr.Const(0), operand)
            raise ParallelUnsupported("unary {0!r}".format(expr.op))
        if isinstance(expr, BinOp):
            op = _SQL_TO_VECTOR_OP.get(expr.op)
            if op is None:
                raise ParallelUnsupported("operator {0!r}".format(expr.op))
            return vexpr.BinExpr(op, self._vector_expr(expr.left, scope),
                                 self._vector_expr(expr.right, scope))
        raise ParallelUnsupported("expression {0!r}".format(expr))

    def _expand_items(self, select, scope):
        """Select items with Star expanded: [(output name, expr)]."""
        items = []
        for item in select.items:
            if isinstance(item.expr, Star):
                bindings = scope.bindings
                if item.expr.table is not None:
                    bindings = [b for b in bindings
                                if b.alias == item.expr.table]
                    if not bindings:
                        raise ParallelUnsupported("unknown table {0!r}"
                                                  .format(item.expr.table))
                for binding in bindings:
                    for column in binding.columns:
                        items.append((column, Column(column, binding.alias)))
            else:
                items.append((item.alias or _default_name(item.expr),
                              item.expr))
        return items

    def _run_exchange(self, factory, worker_set, scheduler):
        """Drive an Exchange over all workers; returns the batches.

        Collection quarantines per-worker output so injected worker
        deaths recover exactly (see :meth:`Exchange.collect`); deaths
        the query survived accumulate in ``self.failures``.

        When this executor carries an enabled tracer, the whole drive
        runs inside an ``exchange`` span; each worker gets a *private*
        tracer (watching its private hierarchy) whose completed span
        stream is grafted under the exchange span once the drain ends —
        the per-worker span streams merge with morsel attribution
        intact.  The simulation is cooperative (single-threaded), so
        per-worker hardware deltas attribute exactly.
        """
        if not self.tracer.enabled:
            coordinator = ExecutionContext(self.vector_size)
            exchange = Exchange(coordinator, factory, worker_set,
                                scheduler)
            try:
                return exchange.collect()
            finally:
                self.failures.extend(exchange.failures)
        with self.tracer.span("exchange", kind="pipeline",
                              workers=len(worker_set)) as span:
            for w, ctx in enumerate(worker_set.contexts):
                worker_tracer = Tracer()
                worker_tracer.watch(worker_set.tracer_view(w))
                ctx.tracer = worker_tracer
                ctx.worker_span = worker_tracer.begin(
                    "worker-{0}".format(w), kind="worker", worker=w)
            coordinator = ExecutionContext(self.vector_size)
            exchange = Exchange(coordinator, factory, worker_set,
                                scheduler)
            try:
                batches = exchange.collect()
            finally:
                self.failures.extend(exchange.failures)
                for ctx in worker_set.contexts:
                    ctx.tracer.end_all()
                    self.tracer.adopt(ctx.tracer.roots)
                    ctx.tracer = NO_TRACE
                    ctx.worker_span = None
            span.add("tuples_out", sum(len(b) for b in batches))
            return batches

    # -- plain projection -----------------------------------------------------

    def _run_projection(self, select, items, scope, tables, joins,
                        worker_set, scheduler):
        source = self._source_factory(select, scope, tables, joins)
        outputs = {}
        for i, (_, expr) in enumerate(items):
            outputs["c{0}".format(i)] = self._vector_expr(expr, scope)
        order_keys = self._projection_order_keys(select, items, scope,
                                                 outputs)

        def factory(ctx, sched, worker):
            return VectorProject(ctx, source(ctx, sched, worker),
                                 dict(outputs))

        batches = self._run_exchange(factory, worker_set, scheduler)
        arrays = _concat(batches, list(outputs))
        rows = list(zip(*[arrays[c].tolist() for c in
                          ["c{0}".format(i) for i in range(len(items))]])) \
            if len(items) and len(arrays["c0"]) else []
        key_rows = None
        if select.order_by:
            key_rows = list(zip(*[arrays[k].tolist() for k in order_keys])) \
                if rows else []
        names = [name for name, _ in items]
        rows = self._finish_rows(select, rows, key_rows)
        return names, _rows_to_columns(rows, len(items))

    def _projection_order_keys(self, select, items, scope, outputs):
        """ORDER BY keys for a plain projection: reuse an output column
        when the item names or equals one, else add a hidden output."""
        keys = []
        names = [name for name, _ in items]
        for j, order in enumerate(select.order_by):
            expr = order.expr
            if isinstance(expr, Column) and expr.table is None \
                    and expr.name in names:
                keys.append("c{0}".format(names.index(expr.name)))
                continue
            matched = None
            for i, (_, item_expr) in enumerate(items):
                if repr(item_expr) == repr(expr):
                    matched = "c{0}".format(i)
                    break
            if matched is not None:
                keys.append(matched)
                continue
            hidden = "o{0}".format(j)
            outputs[hidden] = self._vector_expr(expr, scope)
            keys.append(hidden)
        return keys

    def _finish_rows(self, select, rows, key_rows):
        """Serial finish: DISTINCT, ORDER BY, LIMIT on python rows."""
        if select.distinct:
            if key_rows is None:
                rows = _distinct(rows)
            else:
                pairs = _distinct_pairs(rows, key_rows)
                rows = [r for r, _ in pairs]
                key_rows = [k for _, k in pairs]
        if select.order_by:
            ascending = [o.ascending for o in select.order_by]
            order = _sort_order(key_rows, ascending)
            rows = [rows[i] for i in order]
        if select.limit is not None:
            rows = rows[:select.limit]
        return rows

    # -- scalar aggregation ---------------------------------------------------

    def _run_scalar_aggregates(self, select, items, scope, tables, joins,
                               worker_set, scheduler):
        aggs = _AggregateSet(self, scope, self._probe_dtypes(tables))
        for _, expr in items:
            aggs.collect(expr)
        source = self._source_factory(select, scope, tables, joins)
        spec = aggs.partial_spec()

        def factory(ctx, sched, worker):
            return ScalarVectorAggregate(ctx, source(ctx, sched, worker),
                                         dict(spec))

        batches = self._run_exchange(factory, worker_set, scheduler)
        partials = _concat(batches, list(spec))
        finals = aggs.finalize_scalar(partials)
        row = tuple(_finish_value(_eval_item(expr, finals))
                    for _, expr in items)
        names = [name for name, _ in items]
        return names, _rows_to_columns([row], len(items))

    # -- grouped aggregation --------------------------------------------------

    def _run_grouped(self, select, items, scope, tables, joins,
                     worker_set, scheduler):
        if len(select.group_by) != 1 or \
                not isinstance(select.group_by[0], Column):
            raise ParallelUnsupported("parallel plans group by exactly "
                                      "one plain column")
        group_expr = select.group_by[0]
        group_key = scope.qualify(group_expr)
        group_repr = repr(group_expr)

        aggs = _AggregateSet(self, scope, self._probe_dtypes(tables))
        for _, expr in items:
            aggs.collect(expr, skip_reprs=(group_repr,))
        if select.having is not None:
            aggs.collect(select.having, skip_reprs=(group_repr,))
        source = self._source_factory(select, scope, tables, joins)
        spec = aggs.partial_spec()

        def factory(ctx, sched, worker):
            return VectorAggregate(ctx, source(ctx, sched, worker),
                                   group_key=group_key,
                                   aggregates=dict(spec))

        batches = self._run_exchange(factory, worker_set, scheduler)
        partials = _concat(batches, [group_key] + list(spec))
        groups = aggs.finalize_grouped(partials, group_key, group_repr)

        if select.having is not None:
            groups = [g for g in groups
                      if bool(_eval_item(select.having, g))]
        rows = [tuple(_finish_value(_eval_item(expr, g))
                      for _, expr in items) for g in groups]
        key_rows = None
        if select.order_by:
            key_rows = []
            names = [name for name, _ in items]
            for g, row in zip(groups, rows):
                key = []
                for order in select.order_by:
                    expr = order.expr
                    if isinstance(expr, Column) and expr.table is None \
                            and expr.name in names:
                        key.append(row[names.index(expr.name)])
                    else:
                        matched = [i for i, (_, e) in enumerate(items)
                                   if repr(e) == repr(expr)]
                        if not matched:
                            raise ParallelUnsupported(
                                "grouped ORDER BY must name an output")
                        key.append(row[matched[0]])
                key_rows.append(tuple(key))
        names = [name for name, _ in items]
        rows = self._finish_rows(select, rows, key_rows)
        return names, _rows_to_columns(rows, len(items))

    # -- type probing ---------------------------------------------------------

    def _probe_dtypes(self, tables):
        """A zero-length batch with every qualified column's dtype, for
        deciding aggregate result types exactly like the serial kernel."""
        from repro.vectorized.vector import Batch
        empty = {}
        for arrays in tables.values():
            for name, values in arrays.items():
                empty[name] = np.empty(0, dtype=values.dtype)
        return Batch(empty)


# -- aggregate bookkeeping ----------------------------------------------------

class _AggregateSet:
    """The distinct aggregate calls of one SELECT, with their partial
    decomposition (sum+count / min / max) and final combination rules
    matching the serial kernel's result types and empty-input nils.

    ``probe`` is a zero-length batch carrying every qualified column's
    dtype: aggregate inputs are type-checked against it (non-numeric
    inputs keep the serial path, whose min/max order strings) and the
    input dtype decides int-vs-float finals like the serial kernel.
    """

    def __init__(self, executor, scope, probe):
        self.executor = executor
        self.scope = scope
        self.probe = probe
        self.calls = {}     # repr -> (tag, FuncCall, input dtype kind)
        self._next = 0

    def collect(self, expr, skip_reprs=()):
        if repr(expr) in skip_reprs:
            return
        if isinstance(expr, FuncCall):
            if not expr.is_aggregate:
                raise ParallelUnsupported("function {0!r}".format(expr.name))
            if expr.distinct:
                raise ParallelUnsupported("DISTINCT aggregates")
            key = repr(expr)
            if key not in self.calls:
                kind = self._input_dtype_kind(expr)
                if expr.name != "count" and kind not in "iuf":
                    raise ParallelUnsupported(
                        "{0} over non-numeric input".format(expr.name))
                self.calls[key] = ("a{0}".format(self._next), expr, kind)
                self._next += 1
            return
        if isinstance(expr, BinOp):
            self.collect(expr.left, skip_reprs)
            self.collect(expr.right, skip_reprs)
            return
        if isinstance(expr, UnaryOp):
            self.collect(expr.operand, skip_reprs)
            return
        if isinstance(expr, (Literal, Column)):
            return
        raise ParallelUnsupported("expression {0!r}".format(expr))

    def _input_expr(self, call):
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            if call.name != "count":
                raise ParallelUnsupported("* only valid in count(*)")
            return vexpr.Const(0)
        if len(call.args) != 1:
            raise ParallelUnsupported("aggregates take one argument")
        return self.executor._vector_expr(call.args[0], self.scope)

    def _input_dtype_kind(self, call):
        if len(call.args) == 1 and isinstance(call.args[0], Star):
            return "i"
        return np.asarray(self._input_expr(call)(self.probe)).dtype.kind

    def partial_spec(self):
        """{partial name: (kind, vector expr)} for the worker plans."""
        spec = {}
        for tag, call, _ in self.calls.values():
            value = self._input_expr(call)
            if call.name in ("sum", "avg"):
                spec[tag + "_sum"] = ("sum", value)
                spec[tag + "_cnt"] = ("count", value)
            elif call.name == "count":
                spec[tag + "_cnt"] = ("count", value)
            else:  # min / max
                spec[tag + "_" + call.name] = (call.name, value)
                spec[tag + "_cnt"] = ("count", value)
        return spec

    def finalize_scalar(self, partials):
        """Combine per-worker scalar partials into final values."""
        finals = {}
        for key, (tag, call, kind) in self.calls.items():
            count = int(partials[tag + "_cnt"].sum())
            finals[key] = self._combine(call, kind, count, partials, tag)
        return finals

    def _combine(self, call, kind, count, parts, tag):
        if call.name == "count":
            return count
        if count == 0:
            return None
        if call.name == "sum":
            total = float(parts[tag + "_sum"].sum())
            return int(total) if kind in "iu" else total
        if call.name == "avg":
            return float(parts[tag + "_sum"].sum()) / count
        if call.name == "min":
            value = float(np.nanmin(parts[tag + "_min"]))
        else:
            value = float(np.nanmax(parts[tag + "_max"]))
        return int(value) if kind in "iu" else value

    def finalize_grouped(self, partials, group_key, group_repr):
        """Combine per-worker grouped partials; one finals dict per
        group mapping the group-key repr and every aggregate's repr to
        its final value (ready for :func:`_eval_item`)."""
        keys = partials[group_key]
        order = {}
        for position, key in enumerate(keys.tolist()):
            order.setdefault(key, []).append(position)
        groups = []
        for key, positions in order.items():
            final = {group_repr: key}
            idx = np.asarray(positions, dtype=np.int64)
            for call_repr, (tag, call, kind) in self.calls.items():
                count = int(partials[tag + "_cnt"][idx].sum())
                parts = {name: partials[name][idx] for name in partials
                         if name.startswith(tag + "_")}
                final[call_repr] = self._combine(call, kind, count,
                                                 parts, tag)
            groups.append(final)
        return groups


# -- finish-phase expression evaluation ---------------------------------------

def _eval_item(expr, finals):
    """Evaluate a select item at finish time.  ``finals`` maps the repr
    of every aggregate call (and, for grouped queries, of the group-key
    expression) to its final value; arithmetic runs through the same
    numpy ops as the serial calc kernel so result types match."""
    key = repr(expr)
    if key in finals:
        return finals[key]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinOp):
        left = _eval_item(expr.left, finals)
        right = _eval_item(expr.right, finals)
        if left is None or right is None:
            return None
        op = _SQL_TO_VECTOR_OP.get(expr.op)
        if op is None:
            raise ParallelUnsupported("operator {0!r}".format(expr.op))
        return vexpr._OPS[op](left, right)
    if isinstance(expr, UnaryOp):
        operand = _eval_item(expr.operand, finals)
        if operand is None:
            return None
        if expr.op == "not":
            return np.logical_not(operand)
        if expr.op == "-":
            return np.negative(operand)
    raise ParallelUnsupported("expression {0!r}".format(expr))


def _finish_value(value):
    """numpy scalar -> plain python value (ResultSet convention)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# -- small helpers ------------------------------------------------------------

def _split_conjuncts(expr):
    if isinstance(expr, BinOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _contains_aggregate(expr):
    from repro.sql.ast import contains_aggregate
    return contains_aggregate(expr)


def _default_name(expr):
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, FuncCall):
        if len(expr.args) == 1 and isinstance(expr.args[0], Column):
            return "{0}_{1}".format(expr.name, expr.args[0].name)
        return expr.name
    return "expr"


def _concat(batches, names):
    """Union batches into {name: array}, empty arrays when no rows."""
    from repro.vectorized.vector import concat_batches
    arrays = concat_batches(batches)
    if not arrays:
        return {name: np.empty(0) for name in names}
    return arrays


def _rows_to_columns(rows, width):
    if not rows:
        return [[] for _ in range(width)]
    return [list(column) for column in zip(*rows)]


def _distinct(rows):
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _distinct_pairs(rows, key_rows):
    seen = set()
    out = []
    for row, key in zip(rows, key_rows):
        if row not in seen:
            seen.add(row)
            out.append((row, key))
    return out


def _sort_order(key_rows, ascending):
    """Row permutation for a multi-key sort with per-key direction:
    successive stable sorts from the minor key up (python's sort keeps
    the incoming order of equal keys in both directions)."""
    order = list(range(len(key_rows)))
    for position in range(len(ascending) - 1, -1, -1):
        reverse = not ascending[position]
        order.sort(key=lambda i: key_rows[i][position], reverse=reverse)
    return order
