"""Morsels and the work-stealing morsel scheduler.

Morsel-driven parallelism (Leis et al., adopted industry-wide per
"Query Optimization in the Wild") splits the base data into fixed-size
row ranges — *morsels* — and lets workers pull them dynamically: a
worker drains its own deque front-to-back and, when empty, *steals*
from the back of the fullest remaining deque.  Dynamic dispatch is what
keeps all workers busy when selectivity (and therefore per-morsel work)
is skewed across the table.

The workers here are *simulated*: the engine runs single-threaded and
interleaves the workers' pipelines deterministically (see
:class:`repro.parallel.ExchangeUnion`), so results and simulated cache
traffic are exactly reproducible run to run.
"""

from collections import deque
from dataclasses import dataclass

DEFAULT_MORSEL_SIZE = 4096


@dataclass(frozen=True)
class Morsel:
    """A contiguous row range [start, stop) of the partitioned input."""

    index: int
    start: int
    stop: int

    @property
    def size(self):
        return self.stop - self.start


def split_morsels(n_rows, morsel_size=DEFAULT_MORSEL_SIZE):
    """Split ``n_rows`` into consecutive morsels of ``morsel_size``."""
    if morsel_size < 1:
        raise ValueError("morsel size must be positive")
    return [Morsel(i, start, min(start + morsel_size, n_rows))
            for i, start in enumerate(range(0, n_rows, morsel_size))]


class MorselScheduler:
    """Deterministic work-stealing dispatcher of morsels to workers.

    Morsels are dealt round-robin into per-worker deques up front
    (NUMA-style home assignment); :meth:`next_morsel` serves a worker
    from its own deque, falling back to stealing one morsel from the
    *tail* of the longest other deque.  All tie-breaks are by worker id,
    so a given (n_rows, morsel_size, workers) layout always yields the
    same schedule for the same pull order.
    """

    def __init__(self, n_rows, workers, morsel_size=DEFAULT_MORSEL_SIZE,
                 stealing=True):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.morsels = split_morsels(n_rows, morsel_size)
        self.queues = [deque() for _ in range(workers)]
        for morsel in self.morsels:
            self.queues[morsel.index % workers].append(morsel)
        self.stealing = stealing
        self.steals = 0
        self.dispatched = [0] * workers
        # Fault tolerance: morsels served to a worker are remembered
        # until the query finishes, so a worker death can requeue its
        # entire share (served work is discarded with its output).
        self.served = [[] for _ in range(workers)]
        self.dead = set()
        self.redispatched = 0

    def remaining(self):
        return sum(len(q) for q in self.queues)

    def next_morsel(self, worker):
        """The next morsel for ``worker``, stealing if its deque is dry.

        Returns None when no work is left anywhere.
        """
        if worker in self.dead:
            return None
        queue = self.queues[worker]
        if queue:
            morsel = queue.popleft()
        elif self.stealing:
            victim = max((w for w in range(self.workers)
                          if w not in self.dead),
                         key=lambda w: (len(self.queues[w]), -w))
            if not self.queues[victim]:
                return None
            morsel = self.queues[victim].pop()
            self.steals += 1
        else:
            return None
        self.dispatched[worker] += 1
        self.served[worker].append(morsel)
        return morsel

    def reassign(self, worker, survivors):
        """Re-dispatch a dead worker's whole share to the survivors.

        Both the unserved queue *and* every morsel already served to
        ``worker`` move (round-robin) onto the survivors' queues: the
        dead worker's output is quarantined by the exchange, so served
        morsels must be redone from scratch — which also makes the
        policy safe for blocking operators that had consumed input
        without emitting anything yet.  Returns the number of morsels
        requeued.
        """
        if not survivors:
            raise ValueError("no surviving workers to reassign to")
        if any(s in self.dead or s == worker for s in survivors):
            raise ValueError("survivors must be live, distinct workers")
        self.dead.add(worker)
        moved = self.served[worker] + list(self.queues[worker])
        self.served[worker] = []
        self.queues[worker].clear()
        for i, morsel in enumerate(moved):
            self.queues[survivors[i % len(survivors)]].append(morsel)
        self.redispatched += len(moved)
        return len(moved)

    def __repr__(self):
        return ("MorselScheduler({0} morsels, {1} workers, {2} left, "
                "{3} steals)".format(len(self.morsels), self.workers,
                                     self.remaining(), self.steals))
