"""Exchange operators: plugging parallelism into pull-based pipelines.

The exchange idiom (Graefe's Volcano; "Query Optimization in the Wild"
notes every industrial engine converged on it) encapsulates parallelism
*inside* operators so the rest of the pipeline stays oblivious:

* :class:`MorselScan` — a leaf that pulls morsels from the scheduler
  instead of owning a fixed range, so the scan parallelizes by data.
* :class:`ExchangeUnion` — N:1 merge of per-worker partial streams,
  pulling round-robin so the workers' simulated cache traffic
  interleaves in the shared LLC exactly as concurrent cores would.
* :class:`Exchange` — 1:N:1 convenience: clones a pipeline once per
  worker via a plan factory, drives the clones over one shared morsel
  scheduler, and unions their outputs.

Batch arrival order is the deterministic round-robin interleaving —
stable for a fixed worker count, but *not* the serial row order; use
``tests.helpers.assert_same_rows`` when comparing.
"""

from repro.vectorized.operators import VectorOperator
from repro.vectorized.vector import Batch


class MorselScan(VectorOperator):
    """Scan whose row ranges come from a morsel scheduler.

    ``columns`` maps names to full numpy arrays; the operator slices
    vectors out of whichever morsel the scheduler hands its worker next,
    so two MorselScans over the same scheduler partition the table
    between them dynamically.
    """

    def __init__(self, context, columns, scheduler, worker=0):
        super().__init__(context)
        self.columns = dict(columns)
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged scan input")
        self.scheduler = scheduler
        self.worker = worker
        self._morsel = None
        self._pos = 0

    def open(self):
        self._morsel = None
        self._pos = 0

    def next_batch(self):
        while True:
            if self._morsel is None:
                self._morsel = self.scheduler.next_morsel(self.worker)
                if self._morsel is None:
                    return None
                self._pos = self._morsel.start
            if self._pos >= self._morsel.stop:
                self._morsel = None
                continue
            end = min(self._pos + self.context.vector_size,
                      self._morsel.stop)
            batch = Batch({name: v[self._pos:end]
                           for name, v in self.columns.items()})
            self._pos = end
            return batch


class ExchangeUnion(VectorOperator):
    """N:1 exchange: merge per-worker streams, round-robin and
    deterministic.

    Pulling one batch per worker per round interleaves the workers'
    memory traffic in the shared LLC (via ``worker_set``), which is what
    makes cache *contention* — not just capacity — visible in the
    simulation.  Shared-LLC cycles are attributed to the worker whose
    pull caused them.
    """

    def __init__(self, context, children, worker_set=None):
        super().__init__(context)
        self.children = list(children)
        if not self.children:
            raise ValueError("exchange needs at least one child")
        self.worker_set = worker_set
        self._streams = None
        self._alive = None
        self._turn = 0

    def open(self):
        self._streams = [child.batches() for child in self.children]
        self._alive = [True] * len(self._streams)
        self._turn = 0

    def _pull(self, worker):
        ws = self.worker_set
        if ws is None:
            return next(self._streams[worker], None)
        cycles, misses = ws.llc_snapshot()
        batch = next(self._streams[worker], None)
        ws.charge_llc(worker, cycles, misses)
        return batch

    def next_batch(self):
        n = len(self._streams)
        attempts = 0
        while attempts < n:
            worker = self._turn
            self._turn = (self._turn + 1) % n
            if not self._alive[worker]:
                attempts += 1
                continue
            batch = self._pull(worker)
            if batch is None:
                self._alive[worker] = False
                attempts += 1
                continue
            return batch
        return None


class Exchange(ExchangeUnion):
    """1:N:1 exchange: parallelize a pipeline across a worker set.

    ``plan_factory(worker_ctx, scheduler, worker_id)`` builds one
    worker's pipeline (typically rooted in a :class:`MorselScan` on the
    shared ``scheduler``); the exchange instantiates one clone per
    worker in ``worker_set`` and unions their outputs.
    """

    def __init__(self, context, plan_factory, worker_set, scheduler):
        children = [plan_factory(ctx, scheduler, w)
                    for w, ctx in enumerate(worker_set.contexts)]
        super().__init__(context, children, worker_set)
        self.scheduler = scheduler
