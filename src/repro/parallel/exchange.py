"""Exchange operators: plugging parallelism into pull-based pipelines.

The exchange idiom (Graefe's Volcano; "Query Optimization in the Wild"
notes every industrial engine converged on it) encapsulates parallelism
*inside* operators so the rest of the pipeline stays oblivious:

* :class:`MorselScan` — a leaf that pulls morsels from the scheduler
  instead of owning a fixed range, so the scan parallelizes by data.
* :class:`ExchangeUnion` — N:1 merge of per-worker partial streams,
  pulling round-robin so the workers' simulated cache traffic
  interleaves in the shared LLC exactly as concurrent cores would.
* :class:`Exchange` — 1:N:1 convenience: clones a pipeline once per
  worker via a plan factory, drives the clones over one shared morsel
  scheduler, and unions their outputs.

Batch arrival order is the deterministic round-robin interleaving —
stable for a fixed worker count, but *not* the serial row order; use
``tests.helpers.assert_same_rows`` when comparing.

Fault tolerance: every morsel acquisition passes through the
``morsel.run`` injection site.  A transient fault there is retried
with backoff (and escalates to a worker death when retries run out); a
crash kills the worker.  :meth:`Exchange.collect` survives worker
deaths by *quarantining* the dead worker's output and re-dispatching
its entire served share to the survivors — discard-plus-redo, which is
exact for streaming and blocking pipelines alike.  Only when every
worker has died does the query fail (:class:`ParallelExecutionFailed`),
at which point the caller falls back to the serial engine.
"""

from dataclasses import dataclass

from repro.faults import NO_FAULTS, CrashError, TransientFault
from repro.governance.context import CHECK_MORSEL, NO_GOVERNANCE
from repro.vectorized.operators import VectorOperator
from repro.vectorized.vector import Batch


@dataclass
class WorkerFailure:
    """One worker death observed during a parallel query."""

    worker: int
    site: str
    hit: int
    requeued: int = 0

    @classmethod
    def from_fault(cls, worker, fault):
        return cls(worker=worker, site=fault.site, hit=fault.hit)


class ParallelExecutionFailed(RuntimeError):
    """Every worker of a parallel query died; run it serially."""

    def __init__(self, failures):
        self.failures = list(failures)
        super().__init__("all {0} workers died".format(len(self.failures)))


class MorselScan(VectorOperator):
    """Scan whose row ranges come from a morsel scheduler.

    ``columns`` maps names to full numpy arrays; the operator slices
    vectors out of whichever morsel the scheduler hands its worker next,
    so two MorselScans over the same scheduler partition the table
    between them dynamically.

    ``faults`` arms the ``morsel.run`` site, hit once per morsel
    acquisition (plus once per retry): transient faults are retried up
    to ``max_retries`` times with exponential backoff (accounted in
    ``backoff_units``, not simulated cycles), then escalate to a
    :class:`~repro.faults.CrashError` — this worker's death.
    """

    def __init__(self, context, columns, scheduler, worker=0,
                 faults=None, max_retries=3, governance=None):
        super().__init__(context)
        self.columns = dict(columns)
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged scan input")
        self.scheduler = scheduler
        self.worker = worker
        self.faults = faults if faults is not None else NO_FAULTS
        self.governance = governance if governance is not None \
            else NO_GOVERNANCE
        self.max_retries = max_retries
        self.retries = 0
        self.backoff_units = 0
        self.stall_units = 0
        self._morsel = None
        self._pos = 0
        self._span_open = False

    def open(self):
        self._morsel = None
        self._pos = 0
        self._span_open = False

    def _end_morsel_span(self):
        if self._span_open:
            self.context.tracer.end()
            self._span_open = False

    def _begin_morsel_span(self, morsel):
        tracer = self.context.tracer
        if tracer.enabled:
            self._end_morsel_span()
            tracer.begin("morsel", kind="morsel", worker=self.worker,
                         index=morsel.index, start=morsel.start,
                         stop=morsel.stop)
            self._span_open = True

    def _acquire(self, morsel):
        """Pass one morsel through the ``morsel.run`` fault site."""
        attempts = 0
        while True:
            try:
                self.stall_units += self.faults.inject(
                    "morsel.run", worker=self.worker, morsel=morsel.index)
                return
            except TransientFault as fault:
                attempts += 1
                self.retries += 1
                if attempts > self.max_retries:
                    raise CrashError(fault.site, fault.hit,
                                     worker=self.worker,
                                     escalated="retries exhausted") \
                        from fault
                self.backoff_units += 2 ** (attempts - 1)

    def next_batch(self):
        while True:
            if self._morsel is None:
                morsel = self.scheduler.next_morsel(self.worker)
                if morsel is None:
                    self._end_morsel_span()
                    return None
                if self.governance.active:
                    # Per-morsel cancellation point, before the morsel
                    # is processed: a kill here propagates through the
                    # exchange (which quarantines only worker deaths)
                    # and leaves the per-query scheduler abandoned, not
                    # corrupted.
                    self.governance.checkpoint(CHECK_MORSEL)
                self._acquire(morsel)
                self._begin_morsel_span(morsel)
                self._morsel = morsel
                self._pos = morsel.start
            if self._pos >= self._morsel.stop:
                self._morsel = None
                continue
            end = min(self._pos + self.context.vector_size,
                      self._morsel.stop)
            batch = Batch({name: v[self._pos:end]
                           for name, v in self.columns.items()})
            self._pos = end
            if self._span_open:
                self.context.tracer.add("tuples_scanned", len(batch))
            return batch


class ExchangeUnion(VectorOperator):
    """N:1 exchange: merge per-worker streams, round-robin and
    deterministic.

    Pulling one batch per worker per round interleaves the workers'
    memory traffic in the shared LLC (via ``worker_set``), which is what
    makes cache *contention* — not just capacity — visible in the
    simulation.  Shared-LLC cycles are attributed to the worker whose
    pull caused them.
    """

    def __init__(self, context, children, worker_set=None):
        super().__init__(context)
        self.children = list(children)
        if not self.children:
            raise ValueError("exchange needs at least one child")
        self.worker_set = worker_set
        self._streams = None
        self._alive = None
        self._turn = 0

    def open(self):
        self._streams = [child.batches() for child in self.children]
        self._alive = [True] * len(self._streams)
        self._turn = 0

    def _pull(self, worker):
        ws = self.worker_set
        if ws is None:
            batch = next(self._streams[worker], None)
        else:
            cycles, misses = ws.llc_snapshot()
            batch = next(self._streams[worker], None)
            ws.charge_llc(worker, cycles, misses)
        if batch is not None:
            span = self.children[worker].context.worker_span
            if span is not None:
                span.add("tuples_out", len(batch))
        return batch

    def next_batch(self):
        n = len(self._streams)
        attempts = 0
        while attempts < n:
            worker = self._turn
            self._turn = (self._turn + 1) % n
            if not self._alive[worker]:
                attempts += 1
                continue
            batch = self._pull(worker)
            if batch is None:
                self._alive[worker] = False
                attempts += 1
                continue
            return batch
        return None


class Exchange(ExchangeUnion):
    """1:N:1 exchange: parallelize a pipeline across a worker set.

    ``plan_factory(worker_ctx, scheduler, worker_id)`` builds one
    worker's pipeline (typically rooted in a :class:`MorselScan` on the
    shared ``scheduler``); the exchange instantiates one clone per
    worker in ``worker_set`` and unions their outputs.
    """

    def __init__(self, context, plan_factory, worker_set, scheduler):
        children = [plan_factory(ctx, scheduler, w)
                    for w, ctx in enumerate(worker_set.contexts)]
        super().__init__(context, children, worker_set)
        self.plan_factory = plan_factory
        self.scheduler = scheduler
        self.failures = []

    def _revive(self, worker):
        """A fresh pipeline clone for ``worker``, pulling whatever the
        scheduler still holds for it."""
        child = self.plan_factory(self.worker_set.contexts[worker],
                                  self.scheduler, worker)
        self.children[worker] = child
        self._streams[worker] = child.batches()

    def collect(self):
        """Drain every worker with worker-death recovery; returns all
        batches.

        Unlike the streaming union, batches are quarantined per worker
        until the query completes: when an injected fault kills a
        worker, its collected output is discarded and its entire served
        share is re-dispatched to the survivors (discard-plus-redo —
        exact regardless of how much the dead worker had buffered in
        blocking operators).  Survivors that had already drained are
        revived with fresh pipeline clones so requeued morsels never
        strand.  Raises :class:`ParallelExecutionFailed` once no worker
        is left; failures survive on ``self.failures`` either way.
        """
        self.open()
        n = len(self._streams)
        per_worker = [[] for _ in range(n)]
        exhausted = [False] * n
        crashed = [False] * n
        while not all(exhausted[w] or crashed[w] for w in range(n)):
            for worker in range(n):
                if exhausted[worker] or crashed[worker]:
                    continue
                try:
                    batch = self._pull(worker)
                except CrashError as fault:
                    crashed[worker] = True
                    per_worker[worker] = []  # quarantine: discard output
                    failure = WorkerFailure.from_fault(worker, fault)
                    self.failures.append(failure)
                    survivors = [w for w in range(n) if not crashed[w]]
                    if not survivors:
                        raise ParallelExecutionFailed(self.failures) \
                            from fault
                    failure.requeued = self.scheduler.reassign(
                        worker, survivors)
                    for w in survivors:
                        if exhausted[w] and self.scheduler.queues[w]:
                            self._revive(w)
                            exhausted[w] = False
                    continue
                if batch is None:
                    # A drained pipeline whose queue has (requeued)
                    # work left was a blocking plan that finished
                    # before a death; run the leftovers on a clone.
                    if self.scheduler.queues[worker]:
                        self._revive(worker)
                    else:
                        exhausted[worker] = True
                else:
                    per_worker[worker].append(batch)
        return [batch for batches in per_worker for batch in batches]
