"""Compiled-kernel cache keyed by normalized plan shape.

One entry per :class:`repro.compile.shapes.PlanShape` key.  Entries are
invalidated — never silently reused — when:

* the **schema epoch** moves (any DDL/replay path that clears the
  Database plan cache also bumps the epoch here), or
* the **cracking layout token** recorded at compile time no longer
  matches: a kernel compiled against an uncracked column specializes its
  scan differently from one that can call ``sql.crackedselect``, so the
  appearance (or vacuum-triggered disappearance) of a cracker index
  forces respecialization.

Counters are observable through ``Database.profile`` /
``PlanCompiler.stats`` so PROFILE output can attribute compiled vs
interpreted work and tests can assert cache behaviour exactly.
"""


class KernelCache:
    """Shape-keyed store of compiled plans with hit/miss/invalidation
    accounting."""

    def __init__(self, max_entries=256):
        self.max_entries = max_entries
        self._entries = {}          # key -> (layout_token, CompiledPlan)
        self.schema_epoch = 0
        self._entry_epochs = {}     # key -> schema epoch at store time
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    def bump_schema(self):
        """Schema changed: every cached kernel is now suspect."""
        self.schema_epoch += 1

    def lookup(self, key, layout_token):
        """Return the cached plan or ``None`` (counting a miss).

        A stale entry (old schema epoch or changed cracking layout)
        counts one invalidation *and* one miss, and is evicted so the
        caller's fresh compile replaces it.
        """
        entry = self._entries.get(key)
        if entry is not None:
            stale = self._entry_epochs.get(key) != self.schema_epoch \
                or entry[0] != layout_token
            if not stale:
                self.hits += 1
                return entry[1]
            self.invalidations += 1
            del self._entries[key]
            self._entry_epochs.pop(key, None)
        self.misses += 1
        return None

    def store(self, key, layout_token, plan):
        if len(self._entries) >= self.max_entries and \
                key not in self._entries:
            # FIFO eviction: dict preserves insertion order.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self._entry_epochs.pop(oldest, None)
        self._entries[key] = (layout_token, plan)
        self._entry_epochs[key] = self.schema_epoch

    def clear(self):
        self._entries.clear()
        self._entry_epochs.clear()

    def counters(self):
        return {
            "kernel_cache_hits": self.hits,
            "kernel_cache_misses": self.misses,
            "kernel_cache_invalidations": self.invalidations,
            "kernel_cache_entries": len(self._entries),
        }
