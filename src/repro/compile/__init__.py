"""repro.compile: plan-fragment compilation into fused kernels.

The operator-at-a-time interpreter pays dispatch, BAT headers, property
maintenance and full intermediate materialization per instruction —
the paper's "interpretation tax" that architecture evolution keeps
paying down.  This package recognizes hot scan→filter→project→aggregate
pipelines in optimized MAL plans (and morsel predicate chains) and
compiles each into a generated Python function over raw numpy arrays:
one pass, zero intermediate BATs, constants parameterized so one kernel
serves every same-shape query.

Entry points:

* ``Database.execute(sql, compile=True)`` / ``SET compile = true`` —
  per-statement or per-session opt-in with transparent per-fragment
  fallback to the interpreter;
* :class:`PlanCompiler` — the embeddable driver (shape normalization,
  kernel cache, codegen fault site, mixed fragment/interpreter
  execution);
* :func:`compile_predicates` — WHERE-conjunct fusion for the morsel
  scheduler.
"""

from repro.compile.cache import KernelCache
from repro.compile.codegen import (CompiledPlan, CompileUnsupported,
                                   MIN_FRAGMENT_OPS, compile_program)
from repro.compile.executor import PlanCompiler
from repro.compile.shapes import COMPILER_VERSION, PlanShape, normalize
from repro.compile.vectorized import FusedExpr, compile_predicates

__all__ = [
    "COMPILER_VERSION",
    "CompileUnsupported",
    "CompiledPlan",
    "FusedExpr",
    "KernelCache",
    "MIN_FRAGMENT_OPS",
    "PlanCompiler",
    "PlanShape",
    "compile_predicates",
    "compile_program",
    "normalize",
]
