"""Plan-compiler driver: cache, codegen faults, and mixed execution.

:class:`PlanCompiler` is the engine-facing entry point.  For each MAL
program it normalizes the plan shape (cache key + parameter vector),
consults the :class:`~repro.compile.cache.KernelCache`, generates fused
kernels on a miss (under the ``compile.codegen`` fault site and tracer
span), then executes the plan as an alternation of generated fragments
and interpreted instruction runs.  Any failure — unsupported shape,
injected codegen fault, or an unexpected runtime error inside a kernel
— returns ``None`` so the caller transparently falls back to the plain
interpreter; compiled execution is an optimization, never a
correctness dependency.
"""

from repro.compile import runtime as rt
from repro.compile.cache import KernelCache
from repro.compile.codegen import (CompileUnsupported, FragmentSpec,
                                   InterpSegment, MIN_FRAGMENT_OPS,
                                   compile_program)
from repro.compile.shapes import normalize
from repro.core.atoms import OID, STR
from repro.core.bat import BAT
from repro.faults.injector import CrashError, TransientFault
from repro.governance.context import CHECK_FRAGMENT
from repro.governance.errors import GovernanceError
from repro.observability import NO_TRACE


class _Fallback(Exception):
    """Internal: abandon compiled execution, rerun interpreted."""


class PlanCompiler:
    """Compiles and runs MAL plans against one Database's catalog."""

    def __init__(self, database, min_fragment_ops=MIN_FRAGMENT_OPS):
        self.database = database
        self.min_fragment_ops = min_fragment_ops
        self.cache = KernelCache()
        self._rejected = set()      # shape keys known not to compile
        self.stats = {
            "compiled_runs": 0,
            "interpreted_fallbacks": 0,
            "codegen_faults": 0,
            "unsupported_plans": 0,
            "fragments_run": 0,
            "fused_instructions": 0,
        }

    def bump_schema(self):
        """Schema changed: orphan every kernel *and* forget negative
        verdicts — a recreated table can turn an unsupported shape
        (string arithmetic, say) into a compilable one."""
        self.cache.bump_schema()
        self._rejected.clear()

    # -- cache identity ------------------------------------------------------

    def _layout_token(self, shape):
        """Cracker-presence fingerprint of the columns this shape reads.

        A kernel compiled while a column was uncracked calls the plain
        scan path; once a cracker index exists (or disappears after a
        vacuum), the plan the SQL optimizer emits changes shape anyway —
        but the *same* shape can also flip between layouts across
        tables, so the token forces respecialization rather than trust.
        """
        token = []
        for table, column in shape.cracked + shape.binds:
            try:
                cracked = column in self.database.catalog.get(
                    table)._crackers
            except Exception:
                cracked = None
            token.append((table, column, cracked))
        return tuple(token)

    # -- compilation ---------------------------------------------------------

    def _shape_of(self, program):
        shape = getattr(program, "_compile_shape", None)
        if shape is None:
            shape = normalize(program)
            program._compile_shape = shape
        return shape

    def compile(self, program, tracer=None):
        """Return a cached or fresh :class:`CompiledPlan`, or ``None``.

        ``None`` means "use the interpreter": either the shape is
        unsupported (negative-cached) or an injected codegen fault fired
        (not negative-cached — the next query retries compilation).
        """
        tracer = tracer if tracer is not None else NO_TRACE
        shape = self._shape_of(program)
        if shape.key in self._rejected:
            self.stats["unsupported_plans"] += 1
            return None, shape
        token = self._layout_token(shape)
        plan = self.cache.lookup(shape.key, token)
        if plan is not None:
            return plan, shape
        try:
            with tracer.span("compile.codegen", kind="compile") as span:
                self.database.faults.inject("compile.codegen")
                plan = compile_program(
                    program, self.database.catalog,
                    min_fragment_ops=self.min_fragment_ops)
                if span is not None:
                    span.add("fragments", sum(
                        1 for s in plan.segments
                        if isinstance(s, FragmentSpec)))
                    span.add("fused_instructions", plan.n_fused)
        except (CrashError, TransientFault):
            # Injected fault: fall back now, retry compiling next time.
            self.stats["codegen_faults"] += 1
            return None, shape
        except CompileUnsupported:
            self._rejected.add(shape.key)
            self.stats["unsupported_plans"] += 1
            return None, shape
        except Exception:
            # Codegen bug on an exotic shape: never trust it, never
            # retry it — the interpreter owns this plan from now on.
            self._rejected.add(shape.key)
            self.stats["unsupported_plans"] += 1
            return None, shape
        self.cache.store(shape.key, token, plan)
        return plan, shape

    # -- execution -----------------------------------------------------------

    def try_run(self, program, view, interpreter, tracer=None,
                hierarchy=None):
        """Run ``program`` compiled against ``view``.

        Returns ``{return var: value}`` like ``Interpreter.run``, or
        ``None`` when the caller should run the interpreter instead.
        ``view`` is the catalog the query reads (base catalog or a
        transaction snapshot); ``interpreter`` executes the
        non-compiled segments with its usual recycler/tracing.
        """
        plan, shape = self.compile(program, tracer=tracer)
        if plan is None:
            return None
        try:
            env = self._run_plan(plan, shape, program, view, interpreter,
                                 tracer, hierarchy)
        except _Fallback:
            self.stats["interpreted_fallbacks"] += 1
            return None
        except GovernanceError:
            # A deadline/cancel/budget kill is the statement's verdict,
            # not a kernel defect: falling back here would resurrect a
            # query its context already killed.
            raise
        except Exception:
            # A kernel raised where the interpreter would not have (or
            # would have raised identically — rerunning reproduces it).
            self.stats["interpreted_fallbacks"] += 1
            return None
        self.stats["compiled_runs"] += 1
        return {name: env[name] for name in program.returns}

    @staticmethod
    def _var_names(program):
        """Dense shape id -> this program's variable name.

        A cached plan identifies variables by dense id so it can serve
        every same-shape program; the mapping back to *this* program's
        names is memoized alongside the shape.
        """
        names = getattr(program, "_compile_var_names", None)
        if names is None:
            ids = {}
            for instr in program.instructions:
                for name in instr.results:
                    if name not in ids:
                        ids[name] = len(ids)
            names = [None] * len(ids)
            for name, dense in ids.items():
                names[dense] = name
            program._compile_var_names = names
        return names

    def _run_plan(self, plan, shape, program, view, interpreter, tracer,
                  hierarchy):
        tracer = tracer if tracer is not None else NO_TRACE
        ctx = rt.FragmentContext(view, hierarchy)
        P = shape.params
        names = self._var_names(program)
        env = {}
        gov = interpreter.governance
        for segment in plan.segments:
            if isinstance(segment, InterpSegment):
                # Always this program's instructions: a cached plan must
                # not leak the compiling program's literal constants.
                for instr in program.instructions[segment.lo:segment.hi]:
                    interpreter._execute(instr, env)
                continue
            if gov.active:
                # A fused fragment is one cancellation region: the
                # checkpoint fires before it runs, never mid-kernel.
                gov.checkpoint(CHECK_FRAGMENT)
            with tracer.span("compile.exec", kind="fragment",
                             fragment=segment.name) as span:
                args = [ctx, P]
                for dense, vt in segment.live_in:
                    args.extend(_pack_live_in(env[names[dense]], vt))
                results = plan.functions[segment.name](*args)
                tuples = _unpack_live_out(segment.live_out, results,
                                          names, env)
                live_out = [env[names[dense]]
                            for dense, _ in segment.live_out]
                ctx.charge_outputs(live_out)
                if gov.active:
                    nbytes = sum(v.tail_nbytes for v in live_out
                                 if isinstance(v, BAT))
                    if nbytes:
                        gov.charge(nbytes, CHECK_FRAGMENT)
                if span is not None:
                    span.add("fused_instructions", segment.n_ops)
                    span.add("tuples_out", tuples)
            self.stats["fragments_run"] += 1
            self.stats["fused_instructions"] += segment.n_ops
        return env

    def counters(self):
        merged = dict(self.stats)
        merged.update(self.cache.counters())
        return merged


def _pack_live_in(value, vt):
    """Engine value -> generated-function arguments.

    Raw-array kinds require a dense void-headed BAT at hseqbase 0 —
    everything the engine's bind/tid paths produce.  Anything else
    (a sliced view from an interpreted segment, say) aborts compiled
    execution rather than mis-indexing.
    """
    if vt.kind == "batref":
        if not isinstance(value, BAT):
            raise _Fallback("expected BAT live-in")
        return (value,)
    if vt.kind == "scalar":
        if isinstance(value, BAT):
            raise _Fallback("expected scalar live-in")
        return (value,)
    if isinstance(value, BAT):
        if value.hseqbase:
            raise _Fallback("non-dense live-in")
        if vt.kind == "str":
            return (value.tail, value.heap)
        return (value.tail,)
    if vt.kind == "str":
        raise _Fallback("string live-in without heap")
    return (value,)


def _unpack_live_out(live_out, results, names, env):
    """Generated-function returns -> wrapped engine values in ``env``."""
    tuples = 0
    i = 0
    for dense, vt in live_out:
        name = names[dense]
        if vt.kind == "batref":
            env[name] = results[i]
            i += 1
        elif vt.kind == "str":
            env[name] = rt.wrap_output("str", STR, results[i],
                                       heap=results[i + 1])
            i += 2
        elif vt.kind == "scalar":
            env[name] = results[i]
            i += 1
        else:
            atom = vt.atom if vt.atom is not None else OID
            env[name] = rt.wrap_output(vt.kind, atom, results[i])
            i += 1
        if isinstance(env[name], BAT):
            tuples += len(env[name])
    return tuples
