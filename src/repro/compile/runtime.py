"""Runtime support for generated kernels.

Generated kernels (see :mod:`repro.compile.codegen`) work on *raw numpy
arrays* — candidate lists are plain ``int64`` position arrays, value
columns are dtype arrays, string columns are offset arrays plus their
heap.  Intermediate results never become BATs; only fragment live-outs
are wrapped back (:func:`wrap_output`).  Everything here mirrors the
semantics of :mod:`repro.core.algebra` exactly — bit-identical results,
minus the per-operator BAT headers, property passes and dispatch that
the operator-at-a-time interpreter pays (Section 5's interpretation
tax).

The :class:`FragmentContext` is the kernel's door back into the engine:
catalog reads (``sql.bind`` / ``sql.tid`` / ``sql.crackedselect``) go
through it so compiled fragments see exactly the view — base catalog or
transaction snapshot — the interpreter would, and so profiling can
charge the fragment's real memory traffic against a simulated
hierarchy.
"""

import numpy as np

from repro.core.atoms import _ATOMS, BIT, DBL, LNG, OID, STR
from repro.core.bat import BAT
from repro.core.heap import StringHeap
from repro.mal.interpreter import CPU_CYCLES_PER_TUPLE, DISPATCH_CYCLES

#: Atom registry for generated source (``rt.ATOMS['lng']``).
ATOMS = dict(_ATOMS)


class FragmentContext:
    """Catalog access + optional hardware charging for one kernel run."""

    def __init__(self, catalog, hierarchy=None):
        self.catalog = catalog
        self.hierarchy = hierarchy

    # -- catalog callbacks (the only non-array inputs of a fragment) --------

    def bind(self, table, column):
        bat = self.catalog.bind(table, column)
        self._charge_read(bat)
        return bat

    def tid(self, table):
        bat = self.catalog.tid(table)
        self._charge_read(bat)
        return bat.tail

    def count(self, table):
        return self.catalog.count(table)

    def cracked_select(self, table, column, lo, hi, lo_incl, hi_incl):
        bat = self.catalog.cracked_select(table, column, lo, hi,
                                          lo_incl, hi_incl)
        return bat.tail

    def join_index(self, fk_table, fk_column, pk_table, pk_column):
        bat = self.catalog.join_index(fk_table, fk_column,
                                      pk_table, pk_column)
        self._charge_read(bat)
        return bat

    # -- simulated-hardware accounting --------------------------------------

    def _charge_read(self, bat):
        if self.hierarchy is not None and len(bat):
            from repro.hardware import trace as trace_mod
            self.hierarchy.access(trace_mod.sequential(
                bat.tail_base, len(bat), bat.atom.width))

    def charge_outputs(self, bats):
        """One fused fragment = one dispatch, and only the live-outs are
        materialized (the interpreter pays dispatch + full write per
        instruction instead)."""
        if self.hierarchy is None:
            return
        from repro.hardware import trace as trace_mod
        tuples = 0
        for bat in bats:
            if isinstance(bat, BAT) and len(bat):
                self.hierarchy.access(trace_mod.sequential(
                    bat.tail_base, len(bat), bat.atom.width))
                tuples += len(bat)
        self.hierarchy.add_cpu_cycles(DISPATCH_CYCLES
                                      + CPU_CYCLES_PER_TUPLE * tuples)


# ---------------------------------------------------------------------------
# positions and strings
# ---------------------------------------------------------------------------

def positions(bat, cand):
    """Candidate oids -> physical tail positions of a bound BAT."""
    if bat.hseqbase:
        return cand - bat.hseqbase
    return cand


def oids(bat, pos):
    """Physical positions -> candidate oids of a bound BAT."""
    if bat.hseqbase:
        return pos + bat.hseqbase
    return pos


def decode(offsets, heap):
    """String offsets -> object array of decoded values (algebra's
    ``_comparable_tail`` shape, used for ordering and general calc)."""
    return np.asarray(heap.get_many(offsets), dtype=object)


def const_str(count, value):
    """A constant string column: fresh heap + repeated offset (mirrors
    ``BAT.from_values([value] * n)`` with interning)."""
    heap = StringHeap()
    offset = heap.put(value)
    return np.full(count, offset, dtype=np.int64), heap


# ---------------------------------------------------------------------------
# selections (positions in, positions out)
# ---------------------------------------------------------------------------

def select_eq(bat, value, cand, dense_ok=False):
    """``algebra.select``: candidates whose tail equals ``value``.

    ``dense_ok`` is set by codegen when ``cand`` is provably a
    sorted-unique subset of the table's positions (a ``sql.tid``
    lineage): a full-length candidate list is then exactly
    ``arange(n)`` and the per-conjunct gather can be skipped — the
    specialization the generic operator cannot make.
    """
    tail = bat.tail
    if bat.atom.varsized:
        offset = bat.heap.find(value)
        if offset is None:
            return np.empty(0, dtype=np.int64)
        needle = offset
    else:
        needle = bat.atom.array([value])[0]
    if dense_ok and not bat.hseqbase and len(cand) == len(tail):
        return np.flatnonzero(tail == needle)
    pos = positions(bat, cand)
    return oids(bat, pos[tail[pos] == needle])


def mask_range(values, lo, hi, lo_incl, hi_incl):
    """The boolean mask of ``algebra.selectrange``'s general branch."""
    mask = np.ones(len(values), dtype=bool)
    if lo is not None:
        mask &= (values >= lo) if lo_incl else (values > lo)
    if hi is not None:
        mask &= (values <= hi) if hi_incl else (values < hi)
    return mask


def select_range(bat, lo, hi, lo_incl, hi_incl, cand, dense_ok=False):
    """``algebra.selectrange`` over an explicit candidate list."""
    tail = bat.tail
    if dense_ok and not bat.hseqbase and not bat.atom.varsized \
            and len(cand) == len(tail):
        return np.flatnonzero(mask_range(tail, lo, hi, lo_incl, hi_incl))
    pos = positions(bat, cand)
    values = tail[pos]
    if bat.atom.varsized:
        values = decode(values, bat.heap)
    return oids(bat, pos[mask_range(values, lo, hi, lo_incl, hi_incl)])


# ---------------------------------------------------------------------------
# grouping
# ---------------------------------------------------------------------------

def group(values, gids=None):
    """``group.group`` on raw arrays: (gids, extents, histogram)."""
    if gids is not None:
        key = np.stack([gids.astype(np.int64),
                        values.astype(np.int64)
                        if values.dtype.kind != "f" else
                        values.view(np.int64)], axis=1)
        _, first_pos, out_gids = np.unique(key, axis=0, return_index=True,
                                           return_inverse=True)
    else:
        _, first_pos, out_gids = np.unique(values, return_index=True,
                                           return_inverse=True)
    out_gids = out_gids.astype(np.int64).reshape(-1)
    histogram = np.bincount(out_gids,
                            minlength=len(first_pos)).astype(np.int64)
    return out_gids, first_pos.astype(np.int64), histogram


def unique_positions(values):
    """``algebra.unique``: first-occurrence positions, ascending."""
    _, extents, _ = group(values)
    return np.sort(extents)


# ---------------------------------------------------------------------------
# aggregates (nil semantics identical to repro.core.algebra)
# ---------------------------------------------------------------------------

def _valid_mask(values, atom, heap):
    if atom.varsized:
        return values != heap.NIL_OFFSET if heap is not None \
            else values != STR.nil
    return ~atom.is_nil(values)


def agg_count(values, atom, heap=None):
    return int(np.count_nonzero(_valid_mask(values, atom, heap)))


def agg_sum(values, atom, heap=None):
    mask = _valid_mask(values, atom, heap)
    if not mask.any():
        return None
    kept = values[mask]
    if kept.dtype.kind == "f":
        return float(kept.sum())
    return int(kept.sum())


def agg_min(values, atom, heap=None):
    mask = _valid_mask(values, atom, heap)
    if not mask.any():
        return None
    if atom.varsized:
        return min(decode(values, heap)[mask])
    return values[mask].min().item()


def agg_max(values, atom, heap=None):
    mask = _valid_mask(values, atom, heap)
    if not mask.any():
        return None
    if atom.varsized:
        return max(decode(values, heap)[mask])
    return values[mask].max().item()


def agg_avg(values, atom, heap=None):
    count = agg_count(values, atom, heap)
    if count == 0:
        return None
    return agg_sum(values, atom, heap) / count


def grouped_sum(values, gids, ngroups):
    sums = np.bincount(gids, weights=values.astype(np.float64),
                       minlength=ngroups)
    if values.dtype.kind == "f":
        return sums
    return sums.astype(np.int64)


def grouped_count(gids, ngroups):
    return np.bincount(gids, minlength=ngroups).astype(np.int64)


def grouped_min(values, gids, ngroups, dtype):
    out = np.full(ngroups, np.inf)
    np.minimum.at(out, gids, values.astype(np.float64))
    if values.dtype.kind == "f":
        return out
    return out.astype(dtype)


def grouped_max(values, gids, ngroups, dtype):
    out = np.full(ngroups, -np.inf)
    np.maximum.at(out, gids, values.astype(np.float64))
    if values.dtype.kind == "f":
        return out
    return out.astype(dtype)


def grouped_avg(values, gids, ngroups):
    sums = np.bincount(gids, weights=values.astype(np.float64),
                       minlength=ngroups)
    counts = np.bincount(gids, minlength=ngroups)
    with np.errstate(invalid="ignore", divide="ignore"):
        return sums / counts


# ---------------------------------------------------------------------------
# live-out wrapping
# ---------------------------------------------------------------------------

_WRAP_ATOMS = {"oid": OID, "bit": BIT, "lng": LNG, "dbl": DBL, "str": STR}


def wrap_output(kind, atom, value, heap=None):
    """Fragment live-out -> engine value (BAT or scalar).

    Intermediates inside a fragment are never wrapped; only values that
    cross back into interpreted code (or the result set) pay for a BAT
    header here — the array itself is shared, not copied.
    """
    if kind == "scalar":
        return value
    if kind == "str":
        return BAT(STR, np.asarray(value, dtype=np.int64), heap=heap)
    return BAT(atom, value)
