"""Plan-shape normalization: the kernel cache key.

Two MAL programs have the same *shape* when they run the same operator
sequence over the same dataflow with the same catalog objects and the
same literal *types* — only the literal *values* may differ.  The shape
is the cache key; the values become the runtime parameter vector ``P``
that a generated kernel receives on every call.  Constants are never
baked into generated source, so two same-shape queries share one kernel
but can never share each other's results (the cache-poisoning hazard
the oracle suite regresses).

Structural constants — the ones that legitimately change what code is
generated — stay in the key verbatim:

* catalog object names (``sql.bind`` / ``sql.tid`` / ``sql.count`` /
  ``sql.crackedselect`` / ``sql.joinindex`` arguments): they determine
  column types;
* the atom-name argument of ``sql.constcolumn``: it determines the
  output dtype;
* booleans and ``None`` anywhere: they select comparison operators and
  open range bounds at compile time.
"""

from dataclasses import dataclass

from repro.mal.ast import Const, Var

#: Bump to orphan every cached kernel when codegen semantics change.
COMPILER_VERSION = 1

#: Per-op argument positions whose constant values are part of the
#: shape (object names and type names), not runtime parameters.
STRUCTURAL_ARGS = {
    "sql.bind": frozenset((0, 1)),
    "sql.tid": frozenset((0,)),
    "sql.count": frozenset((0,)),
    "sql.crackedselect": frozenset((0, 1)),
    "sql.joinindex": frozenset((0, 1, 2, 3)),
    "sql.constcolumn": frozenset((2,)),
}


@dataclass(frozen=True)
class PlanShape:
    """Normalized identity of a MAL program."""

    key: tuple          # hashable cache key
    params: tuple       # literal values, in parameter-slot order
    cracked: tuple      # (table, column) pairs read via sql.crackedselect
    binds: tuple        # (table, column) pairs read via sql.bind


def _structural(op, position, value):
    if isinstance(value, bool) or value is None:
        return True
    return position in STRUCTURAL_ARGS.get(op, ())


def normalize(program):
    """Normalize a program into a :class:`PlanShape`.

    Variable names are replaced by dense first-definition ids, so alpha-
    renamed plans (the compiler's fresh-variable counters) normalize to
    the same key.  The parameter slot order is the deterministic walk
    order (instruction by instruction, argument by argument) that
    :mod:`repro.compile.codegen` uses to emit ``P[slot]`` references.
    """
    var_ids = {}
    params = []
    cracked = []
    binds = []
    items = []
    for instr in program.instructions:
        arg_keys = []
        for position, arg in enumerate(instr.args):
            if isinstance(arg, Var):
                arg_keys.append(("v", var_ids.get(arg.name, -1)))
                continue
            value = arg.value
            if _structural(instr.op, position, value):
                arg_keys.append(("s", repr(value)))
            else:
                arg_keys.append(("p", type(value).__name__))
                params.append(value)
        for name in instr.results:
            if name not in var_ids:
                var_ids[name] = len(var_ids)
        items.append((instr.op, tuple(arg_keys),
                      tuple(var_ids[n] for n in instr.results)))
        if instr.op == "sql.crackedselect":
            cracked.append((instr.args[0].value, instr.args[1].value))
        elif instr.op == "sql.bind":
            binds.append((instr.args[0].value, instr.args[1].value))
    returns = tuple(var_ids.get(name, -1) for name in program.returns)
    key = (COMPILER_VERSION, tuple(items), returns)
    return PlanShape(key=key, params=tuple(params),
                     cracked=tuple(sorted(set(cracked))),
                     binds=tuple(sorted(set(binds))))


def param_slots(program):
    """(instruction index, argument index) -> parameter slot mapping.

    The walk order matches :func:`normalize`, so codegen and the
    per-execution parameter vector agree on slot numbering.
    """
    slots = {}
    for i, instr in enumerate(program.instructions):
        for position, arg in enumerate(instr.args):
            if isinstance(arg, Const) and \
                    not _structural(instr.op, position, arg.value):
                slots[(i, position)] = len(slots)
    return slots
