"""MAL-fragment codegen: fused kernels as generated Python functions.

The compiler walks an optimized MAL program, statically types every
variable (possible because the SQL front-end emits a closed op
vocabulary over catalog columns whose atoms are known), and partitions
the program into *fragments*: maximal runs of fusible instructions.
Each fragment becomes one generated Python function over raw numpy
arrays — the whole scan→filter→project→aggregate pipeline runs in a
single call with zero intermediate BAT materialization, the
plan-to-template idea of raco's ``clang.py`` applied to Python source
(SNIPPETS.md snippet 3).  Instructions outside any fragment stay with
the operator-at-a-time interpreter; values crossing a boundary are
(un)wrapped by the executor, so a partially-supported plan transparently
mixes both engines.

Literal constants are **never** embedded in generated source — they
arrive through the parameter vector ``P`` (see
:mod:`repro.compile.shapes`), so one kernel serves every same-shape
query.  Structural constants (catalog names, type names, bools, None)
are compile-time and appear inline.
"""

from dataclasses import dataclass, field

from repro.core.atoms import BIT, DBL, FLT, LNG, OID, STR
from repro.compile.shapes import param_slots
from repro.mal.ast import Const, Var


class CompileUnsupported(Exception):
    """The plan has no fusible fragment worth compiling."""


#: Minimum fused instructions per fragment; shorter runs stay
#: interpreted (wrap/unwrap would cost more than dispatch saves).
MIN_FRAGMENT_OPS = 3

_NP_DTYPE = {
    "bit": "np.bool_", "bte": "np.int8", "sht": "np.int16",
    "int": "np.int32", "lng": "np.int64", "oid": "np.int64",
    "flt": "np.float32", "dbl": "np.float64", "str": "np.int64",
}

_NP_BINOP = {
    "+": "np.add", "-": "np.subtract", "*": "np.multiply",
    "/": "np.divide", "%": "np.mod",
    "==": "np.equal", "!=": "np.not_equal", "<": "np.less",
    "<=": "np.less_equal", ">": "np.greater", ">=": "np.greater_equal",
}

_PY_BINOP = {
    "+": "({0} + {1})", "-": "({0} - {1})", "*": "({0} * {1})",
    "/": "({0} / {1})", "%": "({0} % {1})",
    "==": "({0} == {1})", "!=": "({0} != {1})", "<": "({0} < {1})",
    "<=": "({0} <= {1})", ">": "({0} > {1})", ">=": "({0} >= {1})",
    "and": "(bool({0}) and bool({1}))", "or": "(bool({0}) or bool({1}))",
}

_ARITH = frozenset("+-*/%")
_COMPARE = frozenset(("==", "!=", "<", "<=", ">", ">="))
_LOGIC = frozenset(("and", "or"))


@dataclass
class VT:
    """Static type of one MAL variable inside generated code.

    kind:
      ``pos``    int64 candidate/position array
      ``num``    fixed-width value array of ``atom``
      ``str``    offset array + heap
      ``scalar`` python scalar (``atom`` approximates its domain)
      ``batref`` a bound BAT object (``sql.bind`` / ``sql.joinindex``)
    ``tid_pure`` marks position arrays provably sorted-unique subsets of
    a table's positions (``sql.tid`` lineage) — they unlock the
    full-length dense fast path in the select helpers.
    """

    kind: str
    atom: object = None
    tid_pure: bool = False


@dataclass
class FragmentSpec:
    """Metadata the executor needs to call one generated function.

    Variables are identified by their *dense shape id* (first-definition
    order), never by name: a cached plan serves every same-shape
    program, whose variable names differ — the executor maps ids back
    to the calling program's names at run time.
    """

    name: str
    live_in: list       # [(dense var id, VT)]
    live_out: list      # [(dense var id, VT)]
    n_ops: int = 0


@dataclass
class InterpSegment:
    """Instruction index range [lo, hi) left to the interpreter.

    Only the range is cached; the instructions executed are always the
    *calling* program's — a same-shape cache hit must run with its own
    literal constants, not the compiling program's.
    """

    lo: int
    hi: int


@dataclass
class CompiledPlan:
    """One compiled program: alternating fragments and interpreter runs."""

    segments: list = field(default_factory=list)
    source: str = ""
    functions: dict = field(default_factory=dict)
    n_fused: int = 0
    n_interpreted: int = 0


def _var_ids(program):
    ids = {}
    for instr in program.instructions:
        for name in instr.results:
            if name not in ids:
                ids[name] = len(ids)
    return ids


def _const_vt(value):
    if isinstance(value, bool):
        return VT("scalar", BIT)
    if isinstance(value, int):
        return VT("scalar", LNG)
    if isinstance(value, float):
        return VT("scalar", DBL)
    if isinstance(value, str):
        return VT("scalar", STR)
    return VT("scalar", None)


def _is_float(vt):
    return vt is not None and vt.atom in (DBL, FLT)


def _values_of(vt):
    """Kinds usable as a raw value array."""
    return vt is not None and vt.kind in ("pos", "num", "str", "batref")


# ---------------------------------------------------------------------------
# static typing + fusibility
# ---------------------------------------------------------------------------

def _infer(instr, argvts, consts, schema):
    """(result VTs, fusible) for one instruction.

    ``argvts`` has a VT per argument (consts typed via
    :func:`_const_vt`); ``consts`` has the argument's literal value
    where constant, a sentinel otherwise.  ``schema`` resolves
    ``table.atom(column)`` for bind typing.
    """
    op = instr.op

    def arr_ok(vt):
        return _values_of(vt)

    if op == "sql.tid":
        return [VT("pos", OID, tid_pure=True)], True
    if op == "sql.bind":
        table, column = consts[0], consts[1]
        try:
            atom = schema.get(table).atom(column)
        except Exception:
            return [None], False
        return [VT("batref", atom)], True
    if op == "sql.count":
        return [VT("scalar", LNG)], True
    if op == "sql.crackedselect":
        return [VT("pos", OID, tid_pure=True)], True
    if op == "sql.joinindex":
        return [VT("batref", OID)], True
    if op == "language.pass":
        vt = argvts[0]
        return [vt], vt is not None
    if op == "algebra.select":
        col, cand = argvts[0], argvts[2]
        ok = col is not None and col.kind == "batref" and arr_ok(cand)
        return [VT("pos", OID,
                   tid_pure=cand.tid_pure if cand else False)], ok
    if op == "algebra.selectrange":
        col, cand = argvts[0], argvts[5]
        ok = col is not None and col.kind == "batref" and arr_ok(cand)
        return [VT("pos", OID,
                   tid_pure=cand.tid_pure if cand else False)], ok
    if op == "algebra.selectmask":
        return [VT("pos", OID)], arr_ok(argvts[0]) and arr_ok(argvts[1])
    if op in ("algebra.leftfetchjoin", "algebra.project"):
        cand, src = argvts[0], argvts[1]
        if not (arr_ok(cand) and src is not None
                and src.kind in ("num", "pos", "str", "batref")):
            return [None], False
        if src.atom is STR:
            return [VT("str", STR)], True
        if src.kind == "batref":
            return [VT("num", src.atom)], True
        return [VT(src.kind, src.atom)], True
    if op == "sql.constcolumn":
        from repro.core.atoms import atom_by_name
        atom = atom_by_name(consts[2])
        kind = "str" if atom.varsized else "num"
        return [VT(kind, atom)], arr_ok(argvts[0])
    if op == "candidates.filter":
        cand = argvts[0]
        ok = arr_ok(cand) and arr_ok(argvts[1])
        return [VT("pos", OID,
                   tid_pure=cand.tid_pure if cand else False)], ok
    if op == "candidates.compose":
        return [VT("pos", OID)], arr_ok(argvts[0]) and arr_ok(argvts[1])
    if op == "candidates.sort":
        return [VT("pos", OID)], arr_ok(argvts[0])
    if op == "algebra.unique":
        vt = argvts[0]
        return [VT("pos", OID)], arr_ok(vt) and vt.kind != "batref"
    if op == "group.group":
        ok = all(arr_ok(vt) and vt.kind != "batref" for vt in argvts)
        return [VT("pos", OID), VT("pos", OID), VT("num", LNG)], ok
    if op == "bat.count":
        return [VT("scalar", LNG)], arr_ok(argvts[0]) and \
            argvts[0].kind != "batref"
    if op == "bat.slice":
        vt = argvts[0]
        if not _values_of(vt) or vt.kind == "batref":
            return [None], False
        return [VT(vt.kind, vt.atom)], True
    if op.startswith("batcalc."):
        return _infer_batcalc(op[len("batcalc."):], argvts)
    if op.startswith("calc."):
        return _infer_calc(op[len("calc."):], argvts)
    if op.startswith("aggr.grouped_"):
        return _infer_grouped(op[len("aggr.grouped_"):], argvts)
    if op.startswith("aggr."):
        return _infer_aggr(op[len("aggr."):], argvts)
    return _infer_interpreted(op, argvts)


def _infer_batcalc(op, argvts):
    if op == "not":
        vt = argvts[0]
        return [VT("num", BIT)], _values_of(vt) and vt.atom is not STR
    if op == "isnil":
        vt = argvts[0]
        return [VT("num", BIT)], _values_of(vt) and vt.kind != "batref"
    if op not in _NP_BINOP and op not in _LOGIC:
        return [None], False
    left, right = argvts[0], argvts[1]
    if left is None or right is None:
        return [None], False
    for vt in (left, right):
        if vt.kind == "scalar" and vt.atom is None:
            return [None], False
    if op in _COMPARE or op in _LOGIC:
        return [VT("num", BIT)], True
    # Arithmetic: numpy promotes to float64 exactly when the operator
    # is a true division or either side is float (calc() then wraps DBL
    # rather than LNG).
    if (left.atom is STR and left.kind != "scalar") or \
            (right.atom is STR and right.kind != "scalar"):
        return [None], False  # string arithmetic: not a fusible shape
    atom = DBL if op == "/" or _is_float(left) or _is_float(right) else LNG
    return [VT("num", atom)], True


def _infer_calc(op, argvts):
    if any(vt is None for vt in argvts):
        return [None], False
    if op in ("not", "isnil") or op in _COMPARE or op in _LOGIC:
        return [VT("scalar", BIT)], True
    if op in _ARITH:
        left, right = argvts[0], argvts[1]
        if left.atom is None or right.atom is None:
            return [VT("scalar", None)], True
        atom = DBL if op == "/" or _is_float(left) or _is_float(right) \
            else LNG
        return [VT("scalar", atom)], True
    return [None], False


def _infer_aggr(name, argvts):
    vt = argvts[0]
    if not _values_of(vt):
        return [None], False
    if name == "count":
        return [VT("scalar", LNG)], True
    if name == "avg":
        return [VT("scalar", DBL)], True
    if name in ("sum", "min", "max"):
        if name == "sum":
            atom = DBL if _is_float(vt) else LNG
        else:
            atom = vt.atom
        return [VT("scalar", atom)], True
    return [None], False


def _infer_grouped(name, argvts):
    vt = argvts[0]
    if name == "count":
        ok = _values_of(vt) and _values_of(argvts[1]) and \
            argvts[2] is not None
        return [VT("num", LNG)], ok
    if not _values_of(vt) or vt.atom is STR:
        return [None], False
    ok = _values_of(argvts[1]) and argvts[2] is not None
    if name == "sum":
        return [VT("num", DBL if _is_float(vt) else LNG)], ok
    if name == "avg":
        return [VT("num", DBL)], ok
    if name in ("min", "max"):
        atom = DBL if _is_float(vt) else vt.atom
        return [VT("num", atom)], ok
    return [None], False


def _infer_interpreted(op, argvts):
    """Types for ops that always stay with the interpreter, so that
    downstream instructions can still fuse."""
    if op == "algebra.join":
        return [VT("pos", OID), VT("pos", OID)], False
    if op in ("algebra.semijoin", "algebra.antijoin",
              "algebra.sortmulti", "algebra.order",
              "candidates.intersect", "candidates.union",
              "candidates.diff"):
        return [VT("pos", OID)], False
    if op == "algebra.sort":
        vt = argvts[0]
        out = VT(vt.kind, vt.atom) if vt is not None else None
        return [out, VT("pos", OID)], False
    if op == "batcalc.ifthenelse":
        vt = argvts[1] if argvts[1] is not None else argvts[2]
        out = VT(vt.kind, vt.atom) if vt is not None and \
            _values_of(vt) else None
        return [out], False
    n = 1
    return [None] * n, False


# ---------------------------------------------------------------------------
# emission
# ---------------------------------------------------------------------------

class _Emitter:
    """Emits the body of one fragment function."""

    def __init__(self, var_ids, slots, types):
        self.var_ids = var_ids
        self.slots = slots
        self.types = types
        self.lines = []

    def vname(self, var):
        return "v{0}".format(self.var_ids[var])

    def hname(self, var):
        return "h{0}".format(self.var_ids[var])

    def bname(self, var):
        return "b{0}".format(self.var_ids[var])

    def ln(self, text, *args):
        self.lines.append("    " + text.format(*args))

    # -- operand rendering --------------------------------------------------

    def const_expr(self, instr_index, position, value):
        slot = self.slots.get((instr_index, position))
        if slot is None:
            return repr(value)
        return "P[{0}]".format(slot)

    def value_expr(self, instr_index, position, arg):
        """The raw value of an argument (offsets for strings)."""
        if isinstance(arg, Const):
            return self.const_expr(instr_index, position, arg.value)
        vt = self.types[arg.name]
        if vt.kind == "batref":
            return "{0}.tail".format(self.bname(arg.name))
        return self.vname(arg.name)

    def calc_expr(self, instr_index, position, arg):
        """An argument as batcalc sees it (strings decoded, mirroring
        ``algebra._operand_array``)."""
        if isinstance(arg, Const):
            return self.const_expr(instr_index, position, arg.value)
        vt = self.types[arg.name]
        if vt.kind == "batref":
            if vt.atom is STR:
                return "rt.decode({0}.tail, {0}.heap)".format(
                    self.bname(arg.name))
            return "{0}.tail".format(self.bname(arg.name))
        if vt.kind == "str":
            return "rt.decode({0}, {1})".format(
                self.vname(arg.name), self.hname(arg.name))
        return self.vname(arg.name)

    def heap_expr(self, arg):
        vt = self.types[arg.name]
        if vt.kind == "batref":
            return "{0}.heap".format(self.bname(arg.name))
        return self.hname(arg.name)

    # -- instruction emission -----------------------------------------------

    def emit(self, index, instr):
        op = instr.op
        out = instr.results[0]
        a = instr.args
        if op == "sql.tid":
            self.ln("{0} = ctx.tid({1})", self.vname(out),
                    repr(a[0].value))
        elif op == "sql.bind":
            self.ln("{0} = ctx.bind({1}, {2})", self.bname(out),
                    repr(a[0].value), repr(a[1].value))
        elif op == "sql.count":
            self.ln("{0} = ctx.count({1})", self.vname(out),
                    repr(a[0].value))
        elif op == "sql.crackedselect":
            self.ln("{0} = ctx.cracked_select({1}, {2}, {3}, {4}, "
                    "{5}, {6})", self.vname(out),
                    repr(a[0].value), repr(a[1].value),
                    self.value_expr(index, 2, a[2]),
                    self.value_expr(index, 3, a[3]),
                    repr(a[4].value), repr(a[5].value))
        elif op == "sql.joinindex":
            self.ln("{0} = ctx.join_index({1}, {2}, {3}, {4})",
                    self.bname(out), repr(a[0].value), repr(a[1].value),
                    repr(a[2].value), repr(a[3].value))
        elif op == "language.pass":
            self._emit_alias(index, instr)
        elif op == "algebra.select":
            cand = self.types[a[2].name]
            self.ln("{0} = rt.select_eq({1}, {2}, {3}, dense_ok={4})",
                    self.vname(out), self.bname(a[0].name),
                    self.value_expr(index, 1, a[1]),
                    self.vname(a[2].name), cand.tid_pure)
        elif op == "algebra.selectrange":
            cand = self.types[a[5].name]
            self.ln("{0} = rt.select_range({1}, {2}, {3}, {4}, {5}, "
                    "{6}, dense_ok={7})",
                    self.vname(out), self.bname(a[0].name),
                    self.value_expr(index, 1, a[1]),
                    self.value_expr(index, 2, a[2]),
                    repr(a[3].value), repr(a[4].value),
                    self.vname(a[5].name), cand.tid_pure)
        elif op == "algebra.selectmask":
            src = self.types[a[0].name]
            expr = "np.flatnonzero(np.asarray({0}, dtype=bool))".format(
                self.value_expr(index, 1, a[1]))
            if src.kind == "batref":
                expr = "rt.oids({0}, {1})".format(self.bname(a[0].name),
                                                  expr)
            self.ln("{0} = {1}", self.vname(out), expr)
        elif op in ("algebra.leftfetchjoin", "algebra.project"):
            self._emit_project(index, instr)
        elif op == "sql.constcolumn":
            self._emit_constcolumn(index, instr)
        elif op == "candidates.filter":
            self.ln("{0} = {1}[np.asarray({2}, dtype=bool)]",
                    self.vname(out), self.vname(a[0].name),
                    self.value_expr(index, 1, a[1]))
        elif op == "candidates.compose":
            self.ln("{0} = {1}[{2}]", self.vname(out),
                    self.vname(a[0].name), self.value_expr(index, 1, a[1]))
        elif op == "candidates.sort":
            self.ln("{0} = np.sort({1})", self.vname(out),
                    self.vname(a[0].name))
        elif op == "algebra.unique":
            self.ln("{0} = rt.unique_positions({1})", self.vname(out),
                    self.value_expr(index, 0, a[0]))
        elif op == "group.group":
            gids, extents, hist = instr.results
            call = "rt.group({0})".format(self.value_expr(index, 0, a[0])) \
                if len(a) == 1 else "rt.group({0}, {1})".format(
                    self.value_expr(index, 0, a[0]),
                    self.value_expr(index, 1, a[1]))
            self.ln("{0}, {1}, {2} = {3}", self.vname(gids),
                    self.vname(extents), self.vname(hist), call)
        elif op == "bat.count":
            self.ln("{0} = len({1})", self.vname(out),
                    self.value_expr(index, 0, a[0]))
        elif op == "bat.slice":
            self.ln("{0} = {1}[int({2}):int({3})]", self.vname(out),
                    self.vname(a[0].name),
                    self.value_expr(index, 1, a[1]),
                    self.value_expr(index, 2, a[2]))
            if self.types[out].kind == "str":
                self.ln("{0} = {1}", self.hname(out), self.heap_expr(a[0]))
        elif op.startswith("batcalc."):
            self._emit_batcalc(index, instr)
        elif op.startswith("calc."):
            self._emit_calc(index, instr)
        elif op.startswith("aggr.grouped_"):
            self._emit_grouped(index, instr)
        elif op.startswith("aggr."):
            self._emit_aggr(index, instr)
        else:  # pragma: no cover - fragmenting admits only the above
            raise CompileUnsupported(op)

    def _emit_alias(self, index, instr):
        out = instr.results[0]
        arg = instr.args[0]
        vt = self.types[out]
        if vt is not None and vt.kind == "batref":
            self.ln("{0} = {1}", self.bname(out), self.bname(arg.name))
            return
        self.ln("{0} = {1}", self.vname(out),
                self.value_expr(index, 0, arg))
        if vt is not None and vt.kind == "str" and isinstance(arg, Var):
            self.ln("{0} = {1}", self.hname(out), self.heap_expr(arg))

    def _emit_project(self, index, instr):
        out = instr.results[0]
        cand, src = instr.args
        src_vt = self.types[src.name]
        if src_vt.kind == "batref":
            self.ln("{0} = {1}.tail[rt.positions({1}, {2})]",
                    self.vname(out), self.bname(src.name),
                    self.vname(cand.name))
        else:
            self.ln("{0} = {1}[{2}]", self.vname(out),
                    self.vname(src.name), self.vname(cand.name))
        if self.types[out].kind == "str":
            self.ln("{0} = {1}", self.hname(out), self.heap_expr(src))

    def _emit_constcolumn(self, index, instr):
        out = instr.results[0]
        cand, value, _ = instr.args
        vt = self.types[out]
        n = "len({0})".format(self.vname(cand.name))
        if vt.kind == "str":
            self.ln("{0}, {1} = rt.const_str({2}, {3})", self.vname(out),
                    self.hname(out), n, self.value_expr(index, 1, value))
        else:
            self.ln("{0} = np.full({1}, {2}, dtype={3})", self.vname(out),
                    n, self.value_expr(index, 1, value),
                    _NP_DTYPE[vt.atom.name])

    def _emit_batcalc(self, index, instr):
        op = instr.op[len("batcalc."):]
        out = instr.results[0]
        a = instr.args
        if op == "not":
            self.ln("{0} = ~np.asarray({1}, dtype=bool)", self.vname(out),
                    self.calc_expr(index, 0, a[0]))
            return
        if op == "isnil":
            self._emit_isnil(index, instr)
            return
        left = self.calc_expr(index, 0, a[0])
        right = self.calc_expr(index, 1, a[1])
        if op in _LOGIC:
            fn = "np.logical_and" if op == "and" else "np.logical_or"
            self.ln("{0} = {1}(np.asarray({2}, dtype=bool), "
                    "np.asarray({3}, dtype=bool))", self.vname(out), fn,
                    left, right)
            return
        if op in _COMPARE:
            self.ln("{0} = {1}({2}, {3}).astype(bool)", self.vname(out),
                    _NP_BINOP[op], left, right)
            return
        cast = "np.float64" if self.types[out].atom is DBL else "np.int64"
        self.ln("{0} = {1}({2}, {3}).astype({4})", self.vname(out),
                _NP_BINOP[op], left, right, cast)

    def _emit_isnil(self, index, instr):
        out = instr.results[0]
        arg = instr.args[0]
        vt = self.types[arg.name] if isinstance(arg, Var) else None
        src = self.value_expr(index, 0, arg)
        atom = vt.atom if vt is not None else None
        if atom is BIT:
            self.ln("{0} = np.zeros(len({1}), dtype=bool)", self.vname(out),
                    src)
        elif atom in (DBL, FLT):
            self.ln("{0} = np.isnan({1})", self.vname(out), src)
        else:
            nil = -1 if atom in (STR, OID) or atom is None else atom.nil
            self.ln("{0} = np.equal({1}, {2})", self.vname(out), src,
                    repr(nil))

    def _emit_calc(self, index, instr):
        op = instr.op[len("calc."):]
        out = instr.results[0]
        a = instr.args
        if op == "not":
            self.ln("{0} = not {1}", self.vname(out),
                    self.value_expr(index, 0, a[0]))
            return
        if op == "isnil":
            self.ln("{0} = {1} is None", self.vname(out),
                    self.value_expr(index, 0, a[0]))
            return
        self.ln("{0} = " + _PY_BINOP[op], self.vname(out),
                self.value_expr(index, 0, a[0]),
                self.value_expr(index, 1, a[1]))

    def _atom_ref(self, vt):
        return "rt.ATOMS[{0!r}]".format(vt.atom.name)

    def _agg_operand(self, arg):
        vt = self.types[arg.name]
        values = "{0}.tail".format(self.bname(arg.name)) \
            if vt.kind == "batref" else self.vname(arg.name)
        if vt.atom is STR:
            return values, self._atom_ref(vt), self.heap_expr(arg)
        return values, self._atom_ref(vt), None

    def _emit_aggr(self, index, instr):
        name = instr.op[len("aggr."):]
        out = instr.results[0]
        values, atom, heap = self._agg_operand(instr.args[0])
        if heap is None:
            self.ln("{0} = rt.agg_{1}({2}, {3})", self.vname(out), name,
                    values, atom)
        else:
            self.ln("{0} = rt.agg_{1}({2}, {3}, {4})", self.vname(out),
                    name, values, atom, heap)

    def _emit_grouped(self, index, instr):
        name = instr.op[len("aggr.grouped_"):]
        out = instr.results[0]
        a = instr.args
        gids = self.value_expr(index, 1, a[1])
        ngroups = self.value_expr(index, 2, a[2])
        if name == "count":
            self.ln("{0} = rt.grouped_count({1}, {2})", self.vname(out),
                    gids, ngroups)
            return
        values = self.value_expr(index, 0, a[0])
        if name in ("min", "max"):
            vt = self.types[a[0].name] if isinstance(a[0], Var) else None
            dtype = _NP_DTYPE[vt.atom.name]
            self.ln("{0} = rt.grouped_{1}({2}, {3}, {4}, {5})",
                    self.vname(out), name, values, gids, ngroups, dtype)
        else:
            self.ln("{0} = rt.grouped_{1}({2}, {3}, {4})", self.vname(out),
                    name, values, gids, ngroups)


# ---------------------------------------------------------------------------
# fragment partitioning + module assembly
# ---------------------------------------------------------------------------

def _signature_vars(emitter, var, vt):
    """Python parameter/return names carrying one MAL var across the
    fragment boundary."""
    if vt.kind == "batref":
        return [emitter.bname(var)]
    if vt.kind == "str":
        return [emitter.vname(var), emitter.hname(var)]
    return [emitter.vname(var)]


def compile_program(program, schema, min_fragment_ops=MIN_FRAGMENT_OPS):
    """Compile a MAL program into a :class:`CompiledPlan`.

    Raises :class:`CompileUnsupported` when no fragment of at least
    ``min_fragment_ops`` fusible instructions exists — the caller then
    leaves the whole plan to the interpreter.
    """
    instructions = program.instructions
    var_ids = _var_ids(program)
    slots = param_slots(program)

    # Pass 1: static types and per-instruction fusibility.
    types = {}
    fusible = []
    for instr in instructions:
        argvts = []
        consts = []
        for arg in instr.args:
            if isinstance(arg, Const):
                argvts.append(_const_vt(arg.value))
                consts.append(arg.value)
            else:
                argvts.append(types.get(arg.name))
                consts.append(_NO_CONST)
        result_vts, ok = _infer(instr, argvts, consts, schema)
        for name, vt in zip(instr.results, result_vts):
            types[name] = vt
        fusible.append(ok and all(vt is not None for vt in result_vts))

    # Pass 2: maximal fusible runs of sufficient length become fragments.
    runs = []
    start = None
    for i, ok in enumerate(fusible):
        if ok and start is None:
            start = i
        elif not ok and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(instructions)))
    runs = [(lo, hi) for lo, hi in runs if hi - lo >= min_fragment_ops]
    if not runs:
        raise CompileUnsupported(
            "no fusible fragment of >= {0} instructions".format(
                min_fragment_ops))

    # Pass 3: liveness across fragment boundaries.
    defined_at = {}
    for i, instr in enumerate(instructions):
        for name in instr.results:
            defined_at[name] = i
    used_after = {}
    for i, instr in enumerate(instructions):
        for name in instr.arg_vars:
            used_after[name] = i
    for name in program.returns:
        used_after[name] = len(instructions)

    plan = CompiledPlan()
    source_lines = [
        "# generated by repro.compile (one function per fused fragment)",
        "import numpy as np",
        "from repro.compile import runtime as rt",
    ]
    cursor = 0
    for frag_index, (lo, hi) in enumerate(runs):
        if cursor < lo:
            plan.segments.append(InterpSegment(cursor, lo))
            plan.n_interpreted += lo - cursor
        emitter = _Emitter(var_ids, slots, types)
        live_in = []
        seen_in = set()
        frag_defs = set()
        for i in range(lo, hi):
            for name in instructions[i].arg_vars:
                if name not in frag_defs and name not in seen_in and \
                        defined_at[name] < lo:
                    seen_in.add(name)
                    live_in.append((name, types[name]))
            for name in instructions[i].results:
                frag_defs.add(name)
        live_out = [(name, types[name])
                    for i in range(lo, hi)
                    for name in instructions[i].results
                    if used_after.get(name, -1) >= hi]
        if not live_out:
            raise CompileUnsupported("fragment with no live output")
        for i in range(lo, hi):
            emitter.emit(i, instructions[i])
        fn_name = "fragment_{0}".format(frag_index)
        args = ["ctx", "P"]
        for name, vt in live_in:
            args.extend(_signature_vars(emitter, name, vt))
        rets = []
        for name, vt in live_out:
            rets.extend(_signature_vars(emitter, name, vt))
        live_in = [(var_ids[name], vt) for name, vt in live_in]
        live_out = [(var_ids[name], vt) for name, vt in live_out]
        source_lines.append("")
        source_lines.append("")
        source_lines.append("def {0}({1}):".format(fn_name,
                                                   ", ".join(args)))
        source_lines.extend(emitter.lines)
        source_lines.append("    return ({0},)".format(", ".join(rets)))
        plan.segments.append(FragmentSpec(
            name=fn_name, live_in=live_in, live_out=live_out,
            n_ops=hi - lo))
        plan.n_fused += hi - lo
        cursor = hi
    if cursor < len(instructions):
        plan.segments.append(InterpSegment(cursor, len(instructions)))
        plan.n_interpreted += len(instructions) - cursor

    plan.source = "\n".join(source_lines) + "\n"
    namespace = {}
    exec(compile(plan.source, "<repro.compile kernel>", "exec"),  # noqa: S102
         namespace)
    plan.functions = {spec.name: namespace[spec.name]
                      for spec in plan.segments
                      if isinstance(spec, FragmentSpec)}
    return plan


class _NoConst:
    def __repr__(self):
        return "<no-const>"


_NO_CONST = _NoConst()
