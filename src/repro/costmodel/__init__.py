"""The generic memory-access cost model of Section 4.4.

"The idea is to abstract data structures as data regions and model the
complex data access patterns of database algorithms in terms of simple
compounds of a few basic data access patterns, such as sequential or
random.  For these basic patterns, we then provide cost functions to
estimate their cache misses."

Data regions and basic patterns live in :mod:`repro.costmodel.patterns`;
the per-algorithm predictors (radix-cluster, simple and partitioned hash
join) in :mod:`repro.costmodel.model`.  Predictions are validated
against the trace simulator in experiment E4, including the tuning
decision the model exists to automate: picking the radix bits/passes.
"""

from repro.costmodel.patterns import (
    Cost,
    DataRegion,
    interleaved_multi_cursor,
    repeated_random_access,
    random_traversal,
    sequential_traversal,
)
from repro.costmodel.model import (
    predict_partitioned_hash_join,
    predict_radix_cluster,
    predict_simple_hash_join,
    best_partitioning,
)

__all__ = [
    "DataRegion",
    "Cost",
    "sequential_traversal",
    "random_traversal",
    "repeated_random_access",
    "interleaved_multi_cursor",
    "predict_radix_cluster",
    "predict_simple_hash_join",
    "predict_partitioned_hash_join",
    "best_partitioning",
]
