"""Data regions, basic access patterns, and their per-level cost functions.

The model treats every cache level *individually, though equally*
(Section 4.4) — the TLB included, as a pseudo-cache whose "line" is the
page.  A pattern's cost at a level depends only on the region geometry
and that level's capacity/line size; total memory cost is::

    T_Mem = sum over levels i of  Ms_i * ls_i + Mr_i * lr_i

Basic patterns:

* ``sequential_traversal``   — one pass, ascending addresses;
* ``random_traversal``       — every item touched exactly once, in
  random order;
* ``repeated_random_access`` — k accesses at uniformly random items;
* ``interleaved_multi_cursor`` — one sequential pass *written through H
  concurrent cursors* (the radix-cluster scatter): sequential as long as
  H fits the level, degrading to fully random beyond it.

Costs combine with ``+`` for sequentially executed phases.
"""

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DataRegion:
    """A contiguous data structure: ``count`` items of ``width`` bytes."""

    count: int
    width: int

    @property
    def nbytes(self):
        return self.count * self.width

    def lines(self, line_size):
        """Cache lines the region spans."""
        if self.nbytes == 0:
            return 0
        return -(-self.nbytes // line_size)  # ceil


@dataclass
class Cost:
    """Predicted misses per level: {level: [sequential, random]}.

    The TLB appears under the key ``"TLB"`` with all misses random.
    """

    misses: dict = field(default_factory=dict)

    def add(self, level, sequential=0.0, random=0.0):
        seq, rnd = self.misses.get(level, (0.0, 0.0))
        self.misses[level] = (seq + sequential, rnd + random)
        return self

    def __add__(self, other):
        total = Cost(dict(self.misses))
        for level, (seq, rnd) in other.misses.items():
            total.add(level, seq, rnd)
        return total

    def scaled(self, factor):
        return Cost({level: (seq * factor, rnd * factor)
                     for level, (seq, rnd) in self.misses.items()})

    def level_misses(self, level):
        seq, rnd = self.misses.get(level, (0.0, 0.0))
        return seq + rnd

    def cycles(self, profile):
        """T_Mem under a profile's latencies."""
        total = 0.0
        for spec in profile.caches:
            seq, rnd = self.misses.get(spec.name, (0.0, 0.0))
            total += seq * spec.miss_latency_sequential
            total += rnd * spec.miss_latency_random
        if profile.tlb is not None:
            seq, rnd = self.misses.get("TLB", (0.0, 0.0))
            total += (seq + rnd) * profile.tlb.miss_latency
        return total


def _levels(profile):
    """(name, capacity, line_size, max_regions) for caches + TLB."""
    out = []
    for spec in profile.caches:
        out.append((spec.name, spec.capacity, spec.line_size,
                    spec.capacity // spec.line_size))
    if profile.tlb is not None:
        tlb = profile.tlb
        out.append(("TLB", tlb.entries * tlb.page_size, tlb.page_size,
                    tlb.entries))
    return out


def sequential_traversal(region, profile):
    """One sequential pass over the region."""
    cost = Cost()
    for name, _, line, _ in _levels(profile):
        lines = region.lines(line)
        if lines:
            cost.add(name, sequential=max(lines - 1, 0), random=1)
    return cost


def random_traversal(region, profile):
    """Every item touched once, in random order.

    Fits-in-cache: only the compulsory line misses (random).  Beyond
    the capacity: each touch misses with probability ``1 - C/|R|``.
    """
    cost = Cost()
    for name, capacity, line, _ in _levels(profile):
        lines = region.lines(line)
        if lines == 0:
            continue
        per_touch = max(region.width / line, 1.0)
        if region.nbytes <= capacity:
            cost.add(name, random=lines)
        else:
            resident = capacity / region.nbytes
            misses = (region.count * per_touch * (1 - resident)
                      + lines * resident)
            cost.add(name, random=max(misses, lines))
    return cost


def repeated_random_access(region, accesses, profile):
    """``accesses`` uniformly random item touches within the region."""
    cost = Cost()
    for name, capacity, line, _ in _levels(profile):
        lines = region.lines(line)
        if lines == 0 or accesses == 0:
            continue
        if region.nbytes <= capacity:
            cost.add(name, random=min(lines, accesses))
        else:
            resident = capacity / region.nbytes
            cost.add(name, random=accesses * (1 - resident)
                     + min(lines, accesses) * resident)
    return cost


def interleaved_multi_cursor(region, cursors, profile):
    """Sequential volume written through ``cursors`` concurrent cursors.

    The radix-cluster scatter pattern, with three zones per level:

    * cursors within the prefetcher's stream budget — interleaved
      sequential streams: one miss per line, at sequential cost;
    * cursors within the level's line budget but beyond the stream
      budget — lines stay resident (one miss per line) but cannot be
      prefetched: random cost;
    * cursors beyond the line (or TLB entry) budget — cursor lines evict
      each other and every store misses: the thrashing explosion of
      Section 4.2.
    """
    from repro.hardware.cache import Cache
    cost = Cost()
    for name, capacity, line, max_regions in _levels(profile):
        lines = region.lines(line)
        if lines == 0:
            continue
        stream_budget = float("inf") if name == "TLB" else Cache.MAX_STREAMS
        # When cursor regions are smaller than this level's line (or the
        # whole structure spans few lines), several cursors share a
        # line: the *active* line count is what matters.
        active = min(cursors, lines)
        if active <= min(max_regions // 2, stream_budget):
            cost.add(name, sequential=max(lines - active, 0),
                     random=min(active, lines))
        elif active <= max_regions // 2:
            cost.add(name, random=lines)
        else:
            per_touch = max(region.width / line, 1.0)
            cost.add(name, random=region.count * per_touch)
    return cost
