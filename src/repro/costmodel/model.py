"""Cost-model predictors for the Section 4 algorithms.

Each predictor composes the basic patterns of
:mod:`repro.costmodel.patterns` exactly the way the implementation
composes its phases, and returns ``(Cost, cpu_cycles)``.  The headline
application — the tuning task the model automates (Section 4.4) — is
:func:`best_partitioning`: pick the radix bits/pass split minimizing
predicted total cycles.
"""

from repro.costmodel.patterns import (
    Cost,
    DataRegion,
    interleaved_multi_cursor,
    random_traversal,
    repeated_random_access,
    sequential_traversal,
)
import repro.joins  # ensure submodules are loaded
import repro.joins.hash_join
import repro.joins.radix_cluster
import sys

# The joins package re-exports functions under the submodule names, so
# `import repro.joins.hash_join as hj` would bind the *function*; fetch
# the modules from sys.modules instead.
hj = sys.modules["repro.joins.hash_join"]
rc = sys.modules["repro.joins.radix_cluster"]


def predict_radix_cluster(n_tuples, bits, pass_bits, profile, item_size=8):
    """Predicted cost of radix-clustering ``n_tuples``.

    ``pass_bits`` is the explicit per-pass bit list (see
    :func:`repro.joins.radix_cluster.split_bits`).
    """
    region = DataRegion(n_tuples, item_size)
    cost = Cost()
    cpu = 0
    clusters_so_far = 1
    for b in pass_bits:
        if b == 0:
            continue
        # Counting pre-scan + sequential read of the input.
        cost = cost + sequential_traversal(region, profile)
        cost = cost + sequential_traversal(region, profile)
        # Scatter into 2**b cursors per source cluster; at any instant
        # only one source cluster is active, so 2**b cursors are live.
        cost = cost + interleaved_multi_cursor(region, 1 << b, profile)
        cpu += n_tuples * (rc.CYCLES_PER_TUPLE_COUNT
                           + rc.CYCLES_PER_TUPLE_PER_PASS)
        clusters_so_far <<= b
    return cost, cpu


def predict_simple_hash_join(n_left, n_right, profile, item_size=8,
                             cpu_optimized=True, n_matches=None):
    """Predicted cost of one bucket-chained hash join."""
    if n_matches is None:
        n_matches = min(n_left, n_right)
    n_buckets = max(hj._next_power_of_two(n_right), 1)
    penalty = 1 if cpu_optimized else hj.CPU_PENALTY_UNOPTIMIZED
    bucket_region = DataRegion(n_buckets, hj.BUCKET_SLOT_BYTES)
    node_region = DataRegion(n_right, hj.NODE_BYTES)
    cost = Cost()
    # Build: sequential inner read, random bucket writes, node appends.
    cost = cost + sequential_traversal(DataRegion(n_right, item_size),
                                       profile)
    cost = cost + repeated_random_access(bucket_region, n_right, profile)
    cost = cost + sequential_traversal(node_region, profile)
    # Probe: sequential outer read, random bucket reads, chain walks.
    cost = cost + sequential_traversal(DataRegion(n_left, item_size),
                                       profile)
    cost = cost + repeated_random_access(bucket_region, n_left, profile)
    cost = cost + repeated_random_access(node_region, n_matches, profile)
    cpu = (n_right * hj.BUILD_CYCLES_OPTIMIZED
           + n_left * hj.PROBE_CYCLES_OPTIMIZED) * penalty
    return cost, cpu


def predict_partitioned_hash_join(n_left, n_right, bits, pass_bits,
                                  profile, item_size=8,
                                  cpu_optimized=True):
    """Predicted cost of the radix-partitioned hash join."""
    cluster_cost_l, cpu_l = predict_radix_cluster(n_left, bits, pass_bits,
                                                  profile, item_size)
    cluster_cost_r, cpu_r = predict_radix_cluster(n_right, bits, pass_bits,
                                                  profile, item_size)
    h = 1 << bits
    per_l = max(n_left // h, 1)
    per_r = max(n_right // h, 1)
    join_cost, join_cpu = predict_simple_hash_join(
        per_l, per_r, profile, item_size=item_size,
        cpu_optimized=cpu_optimized, n_matches=min(per_l, per_r))
    cost = cluster_cost_l + cluster_cost_r + join_cost.scaled(h)
    cpu = cpu_l + cpu_r + join_cpu * h
    return cost, cpu


def total_cycles(cost_cpu, profile):
    """T_Mem + CPU for a (Cost, cpu) pair."""
    cost, cpu = cost_cpu
    return cost.cycles(profile) + cpu


def best_partitioning(n_left, n_right, profile, item_size=8, max_bits=16,
                      max_passes=4):
    """The (bits, pass_bits) minimizing predicted join cycles.

    This is the automated tuning the cost model exists for: "Predictive
    and accurate cost models provide the cornerstones to automate this
    tuning task."
    """
    best = None
    best_cycles = float("inf")
    for bits in range(0, max_bits + 1):
        for passes in range(1, max_passes + 1):
            if passes > max(bits, 1):
                continue
            pass_bits = tuple(rc.split_bits(bits, passes))
            cycles = total_cycles(
                predict_partitioned_hash_join(
                    n_left, n_right, bits, pass_bits, profile,
                    item_size=item_size),
                profile)
            if cycles < best_cycles:
                best_cycles = cycles
                best = (bits, pass_bits)
    return best[0], best[1], best_cycles
