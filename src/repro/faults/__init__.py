"""Deterministic fault injection for the engine's recovery paths.

Named injection sites threaded through the layers that must survive
failure — ``wal.append``, ``commit.publish``, ``morsel.run``,
``ring.hop``, ``datacell.flush`` — plus seedable fault plans
(crash-at-Nth-hit, transient error, latency spike).  See
:mod:`repro.faults.injector`.
"""

from repro.faults.injector import (
    NO_FAULTS,
    CrashError,
    FaultError,
    FaultInjector,
    FaultPlan,
    LatencyRamp,
    NullInjector,
    TransientFault,
    crash_points,
)

__all__ = [
    "NO_FAULTS",
    "CrashError",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "LatencyRamp",
    "NullInjector",
    "TransientFault",
    "crash_points",
]
