"""Deterministic, seedable fault injection.

Evolving ("self-managing") architectures must survive component
failure, not just reorganize for speed; this module is the harness
that makes failure *reproducible*.  Code under test declares named
injection sites — ``faults.inject("wal.append")`` at the point where a
crash could strike — and a :class:`FaultInjector` decides, per site
and per hit, whether that call returns normally, raises a simulated
failure, or reports a latency spike.

Fault kinds:

* **crash** — raises :class:`CrashError`: the enclosing component dies
  at this point.  For the SQL engine a crash means the process is gone
  (recover via the WAL); for a morsel worker it means that worker dies
  (survivors take over); carry ``torn=k`` to model a write that was cut
  off after ``k`` bytes.
* **transient** — raises :class:`TransientFault`: a retryable failure
  (flaky read, dropped ring hop).  Callers retry with backoff.
* **latency** — returns a positive delay (site-defined units); the
  caller accounts for the stall instead of raising.

Everything is deterministic: plans fire at explicit hit numbers
(crash-at-Nth-hit), and :meth:`FaultInjector.seeded` draws per-hit
coin flips from one ``random.Random(seed)``, so a failing schedule is
replayed exactly by reusing the seed — the same trick the simulated
hardware uses to make cache effects reproducible.
"""

import random
from collections import Counter


class FaultError(Exception):
    """Base class of injected failures."""

    def __init__(self, site, hit, **detail):
        self.site = site
        self.hit = hit
        self.detail = detail
        super().__init__("{0} at site {1!r} (hit {2})".format(
            type(self).__name__, site, hit))


class CrashError(FaultError):
    """Simulated death of the enclosing component at this site."""

    @property
    def torn(self):
        """Bytes of the interrupted write that still reached the medium
        (None: the crash is not a torn write)."""
        return self.detail.get("torn")


class TransientFault(FaultError):
    """A retryable failure: the operation may succeed if reattempted."""


class FaultPlan:
    """One scheduled fault: fire ``kind`` at given hits of ``site``.

    ``hits`` is a collection of 1-based hit numbers (or None for every
    hit).  ``delay`` is returned for latency faults; ``torn`` rides on
    crash faults to model partial writes.  ``match`` narrows the plan
    to hits whose call-site detail contains the given key/value pairs
    (e.g. ``match={"link": "coord->shard1"}`` grays one shard link
    while its site-mates stay healthy); a matched plan counts its own
    hits, so hit numbers are relative to the matching traffic.
    """

    KINDS = ("crash", "transient", "latency")

    def __init__(self, site, kind, hits=(1,), delay=1, torn=None,
                 match=None):
        if kind not in self.KINDS:
            raise ValueError("unknown fault kind {0!r}".format(kind))
        if kind == "latency" and delay < 1:
            raise ValueError("latency faults need a positive delay")
        self.site = site
        self.kind = kind
        self.hits = None if hits is None else frozenset(hits)
        self.delay = delay
        self.torn = torn
        self.match = dict(match) if match else None
        self.observed = 0  # matched-traffic hits (match plans only)

    def accepts(self, detail):
        """Does the call-site detail pass this plan's match filter?"""
        return self.match is None or all(
            detail.get(k) == v for k, v in self.match.items())

    def matches(self, hit):
        return self.hits is None or hit in self.hits

    def delay_for(self, hit):
        """The latency this plan injects at ``hit`` (fixed here; the
        ramp plan overrides it)."""
        return self.delay

    def __repr__(self):
        where = "always" if self.hits is None \
            else "hits {0}".format(sorted(self.hits))
        return "FaultPlan({0!r}, {1}, {2})".format(self.site, self.kind,
                                                   where)


class LatencyRamp(FaultPlan):
    """A gray-node fault: latency that *ramps* instead of dropping.

    From ``start_hit`` on, every hit of the site is delayed by
    ``base_delay + step * (hit - start_hit)``, capped at ``cap`` — the
    signature of a slow-but-alive node (swelling queues, a failing
    disk): responses still arrive, just later and later.  Armed at the
    existing link sites (``shard.ship`` / ``repl.ship``) it is what
    the hedged-read and circuit-breaker defenses are exercised
    against.

    ``seed`` adds deterministic per-hit jitter of up to ``jitter``
    ticks, drawn from a generator seeded by (seed, hit) so the delay
    of hit N is a pure function of the seed and N — reorderings of
    other sites cannot shift it.
    """

    def __init__(self, site, start_hit=1, base_delay=1, step=1,
                 cap=None, seed=None, jitter=0, match=None):
        if start_hit < 1:
            raise ValueError("start_hit is 1-based")
        if base_delay < 1:
            raise ValueError("latency ramps need a positive base delay")
        if step < 0:
            raise ValueError("ramp step must be non-negative")
        if cap is not None and cap < base_delay:
            raise ValueError("cap must be at least the base delay")
        if jitter and seed is None:
            raise ValueError("jittered ramps need a seed")
        super().__init__(site, "latency", hits=None, delay=base_delay,
                         match=match)
        self.start_hit = start_hit
        self.step = step
        self.cap = cap
        self.seed = seed
        self.jitter = jitter

    def matches(self, hit):
        return hit >= self.start_hit

    def delay_for(self, hit):
        delay = self.delay + self.step * (hit - self.start_hit)
        if self.cap is not None:
            delay = min(delay, self.cap)
        if self.jitter:
            delay += random.Random(self.seed * 1000003 + hit).randrange(
                self.jitter + 1)
        return delay

    def __repr__(self):
        return ("LatencyRamp({0!r}, from hit {1}, {2}+{3}/hit, cap {4})"
                .format(self.site, self.start_hit, self.delay,
                        self.step, self.cap))


class FaultInjector:
    """Registry of injection sites and the plans armed against them.

    ``inject(site)`` counts one hit of the site, fires any matching
    plan, and returns the injected latency (0 normally).  ``hits``
    (a Counter) doubles as the site registry: a dry run under a plain
    injector *observes* every site a scenario passes through, and
    :func:`crash_points` turns that observation into the exhaustive
    crash-at-every-site sweep.
    """

    def __init__(self):
        self.hits = Counter()
        self.fired = []   # [(site, hit, kind)]
        self._plans = {}  # site -> [FaultPlan]
        self._rng = None
        self._rates = {}

    # -- arming ---------------------------------------------------------------

    def plan(self, plan):
        self._plans.setdefault(plan.site, []).append(plan)
        return self

    def crash_at(self, site, hit=1, torn=None, match=None):
        """Arm a crash at the Nth hit of ``site``."""
        return self.plan(FaultPlan(site, "crash", hits=(hit,), torn=torn,
                                   match=match))

    def transient_at(self, site, hits=(1,), match=None):
        """Arm retryable failures at the given hits of ``site``."""
        return self.plan(FaultPlan(site, "transient", hits=hits,
                                   match=match))

    def delay_at(self, site, hits=(1,), delay=1, match=None):
        """Arm latency spikes of ``delay`` units at the given hits."""
        return self.plan(FaultPlan(site, "latency", hits=hits,
                                   delay=delay, match=match))

    def ramp_at(self, site, start_hit=1, base_delay=1, step=1, cap=None,
                seed=None, jitter=0, match=None):
        """Arm a gray-node latency ramp (see :class:`LatencyRamp`)."""
        return self.plan(LatencyRamp(site, start_hit=start_hit,
                                     base_delay=base_delay, step=step,
                                     cap=cap, seed=seed, jitter=jitter,
                                     match=match))

    @classmethod
    def seeded(cls, seed, rates):
        """An injector whose faults fire probabilistically but
        reproducibly.

        ``rates`` maps site -> (kind, probability[, delay]); each hit
        of the site draws one coin flip from ``random.Random(seed)``,
        so the same seed and call sequence yield the same schedule.
        """
        injector = cls()
        injector._rng = random.Random(seed)
        for site, spec in rates.items():
            kind, probability = spec[0], spec[1]
            delay = spec[2] if len(spec) > 2 else 1
            if kind not in FaultPlan.KINDS:
                raise ValueError("unknown fault kind {0!r}".format(kind))
            injector._rates[site] = (kind, probability, delay)
        return injector

    # -- firing ---------------------------------------------------------------

    def inject(self, site, **detail):
        """Register one hit of ``site``; fire armed faults.

        Returns the latency to charge (0 when nothing fired); raises
        :class:`CrashError` / :class:`TransientFault` for the other
        kinds.
        """
        self.hits[site] += 1
        hit = self.hits[site]
        for plan in self._plans.get(site, ()):
            if plan.match is not None:
                # Match-filtered plans fire on their own traffic's hit
                # numbering (global site hits would shift with
                # unrelated senders sharing the site).
                if not plan.accepts(detail):
                    continue
                plan.observed += 1
                if plan.matches(plan.observed):
                    return self._fire(site, plan.observed, plan.kind,
                                      plan.delay_for(plan.observed),
                                      plan.torn, detail)
            elif plan.matches(hit):
                return self._fire(site, hit, plan.kind,
                                  plan.delay_for(hit), plan.torn, detail)
        rate = self._rates.get(site)
        if rate is not None:
            kind, probability, delay = rate
            if self._rng.random() < probability:
                return self._fire(site, hit, kind, delay, None, detail)
        return 0

    def _fire(self, site, hit, kind, delay, torn, detail):
        self.fired.append((site, hit, kind))
        if kind == "crash":
            if torn is not None:
                detail = dict(detail, torn=torn)
            raise CrashError(site, hit, **detail)
        if kind == "transient":
            raise TransientFault(site, hit, **detail)
        return delay

    def observed(self):
        """{site: hits} seen so far — the input to :func:`crash_points`."""
        return dict(self.hits)

    def __repr__(self):
        return "FaultInjector({0} sites hit, {1} faults fired)".format(
            len(self.hits), len(self.fired))


class NullInjector(FaultInjector):
    """The default injector: nothing armed, nothing counted, zero cost.

    A shared inert singleton (:data:`NO_FAULTS`) lets every
    fault-aware component default to "no faults" without threading
    None-checks through hot paths.
    """

    def plan(self, plan):
        raise RuntimeError("NO_FAULTS is shared and inert; build a "
                           "FaultInjector to arm faults")

    def inject(self, site, **detail):
        return 0


NO_FAULTS = NullInjector()


def crash_points(observed, sites=None):
    """All (site, hit) crash points of an observed run.

    ``observed`` is :meth:`FaultInjector.observed` from a fault-free
    dry run; the result drives the exhaustive crash-at-every-site
    sweep: re-run the scenario once per point with
    ``FaultInjector().crash_at(site, hit)`` armed.
    """
    points = []
    for site in sorted(observed):
        if sites is not None and site not in sites:
            continue
        for hit in range(1, observed[site] + 1):
            points.append((site, hit))
    return points
