"""Dense arrays as void-headed BATs, with comprehension-style queries.

A :class:`DenseArray` of shape ``(d0, d1, ...)`` stores its values in
one BAT whose (virtual) head oid is the row-major linearized index —
the same dense-surrogate trick the relational and XML front-ends use.
Slicing never touches values: it only computes candidate oids.
"""

import numpy as np

from repro.core.atoms import DBL, LNG, OID
from repro.core.bat import BAT


class DenseArray:
    """An N-dimensional dense array over a single value BAT."""

    def __init__(self, shape, values):
        self.shape = tuple(int(d) for d in shape)
        if any(d < 0 for d in self.shape):
            raise ValueError("dimensions must be non-negative")
        size = int(np.prod(self.shape))
        if isinstance(values, BAT):
            self.values = values
        else:
            arr = np.asarray(values).reshape(-1)
            atom = DBL if arr.dtype.kind == "f" else LNG
            self.values = BAT(atom, atom.array(arr))
        if len(self.values) != size:
            raise ValueError("value count {0} does not match shape "
                             "{1}".format(len(self.values), self.shape))

    @classmethod
    def from_numpy(cls, array):
        return cls(array.shape, array)

    def to_numpy(self):
        return np.asarray(self.values.tail).reshape(self.shape)

    @property
    def ndim(self):
        return len(self.shape)

    @property
    def size(self):
        return len(self.values)

    def __getitem__(self, indexes):
        """Point access with a full index tuple."""
        if not isinstance(indexes, tuple):
            indexes = (indexes,)
        if len(indexes) != self.ndim:
            raise IndexError("need {0} indexes".format(self.ndim))
        oid = 0
        for index, dim in zip(indexes, self.shape):
            if not 0 <= index < dim:
                raise IndexError("index {0} out of range".format(index))
            oid = oid * dim + index
        return self.values.tail_at(oid)

    # -- slicing: pure candidate arithmetic -------------------------------------

    def slice_candidates(self, **bounds):
        """Oids of the sub-array selected by per-axis (lo, hi) bounds.

        Axes are named ``ax0``, ``ax1``, ...; bounds are half-open.
        Returns a candidate BAT — values untouched, exactly the DSM
        selling point for arrays.
        """
        ranges = []
        for axis, dim in enumerate(self.shape):
            lo, hi = bounds.pop("ax{0}".format(axis), (0, dim))
            if not 0 <= lo <= hi <= dim:
                raise IndexError(
                    "axis {0} bounds ({1}, {2}) out of range".format(
                        axis, lo, hi))
            ranges.append(np.arange(lo, hi, dtype=np.int64))
        if bounds:
            raise KeyError("unknown axes: {0}".format(sorted(bounds)))
        oids = np.zeros(1, dtype=np.int64)
        for axis, indexes in enumerate(ranges):
            oids = (oids[:, None] * self.shape[axis]
                    + indexes[None, :]).reshape(-1)
        return BAT(OID, oids, tkey=True)

    def slice(self, **bounds):
        """The selected sub-array, materialized as a new DenseArray."""
        new_shape = []
        for axis, dim in enumerate(self.shape):
            lo, hi = bounds.get("ax{0}".format(axis), (0, dim))
            new_shape.append(hi - lo)
        candidates = self.slice_candidates(**bounds)
        return DenseArray(new_shape, self.values.fetch(candidates.tail))

    # -- bulk operations ----------------------------------------------------------

    def map(self, op, operand):
        """Element-wise arithmetic with a scalar or aligned array."""
        from repro.core.algebra import calc
        other = operand.values if isinstance(operand, DenseArray) \
            else operand
        if isinstance(operand, DenseArray) and operand.shape != self.shape:
            raise ValueError("shape mismatch: {0} vs {1}".format(
                self.shape, operand.shape))
        return DenseArray(self.shape, calc(op, self.values, other))

    def aggregate(self, kind, axis=None):
        """sum/min/max/avg/count over all cells or along one axis.

        Along an axis, grouping uses the oid arithmetic: the group id
        of a cell is its linear index with ``axis`` projected out.
        """
        from repro.core import algebra
        if axis is None:
            fn = getattr(algebra, "aggr_" + kind)
            return fn(self.values)
        if not 0 <= axis < self.ndim:
            raise IndexError("axis {0} out of range".format(axis))
        oids = np.arange(self.size, dtype=np.int64)
        inner = int(np.prod(self.shape[axis + 1:], dtype=np.int64))
        dim = self.shape[axis]
        gids = (oids // (inner * dim)) * inner + oids % inner
        n_groups = self.size // dim
        gids_bat = BAT(OID, gids)
        fn = getattr(algebra, "grouped_" + kind)
        out = fn(self.values, gids_bat, n_groups)
        new_shape = self.shape[:axis] + self.shape[axis + 1:]
        return DenseArray(new_shape or (1,), out)

    def __repr__(self):
        return "DenseArray(shape={0}, atom={1})".format(
            self.shape, self.values.atom.name)


def comprehend(array, where=None, select=None):
    """A tiny comprehension: [select(v) | v <- array, where(v)].

    ``where`` and ``select`` are (op, operand) pairs applied with the
    bulk kernel; returns the qualifying values as a 1-D DenseArray.
    """
    from repro.core import algebra
    values = array.values
    if where is not None:
        op, operand = where
        mask = algebra.calc(op, values, operand)
        candidates = algebra.select_mask(values, mask)
        values = values.fetch(candidates.tail)
    if select is not None:
        op, operand = select
        values = algebra.calc(op, values, operand)
    if len(values) == 0:
        return None
    return DenseArray((len(values),), values)
