"""Arrays over BATs: the SRAM front-end (§3.2).

"The Sparse Relational Array Mapping (SRAM) project maps large
(scientific) array-based data-sets into MonetDB BATs, and offers a
high-level comprehension-based query language."

A dense N-dimensional array maps to one void-headed BAT: the head oid
*is* the row-major linearized index, so sub-array selection compiles
into pure index arithmetic over candidate lists, and element-wise /
aggregation operations onto the usual bulk kernel.
"""

from repro.arrays.sram import DenseArray, comprehend

__all__ = ["DenseArray", "comprehend"]
