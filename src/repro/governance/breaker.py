"""Per-link circuit breaker: closed / open / half-open with a seeded
probe schedule.

The sharding coordinator arms one breaker per shard link.  Leg
timeouts (a gray shard: alive but slow) count as failures; after
``threshold`` consecutive failures the breaker *opens* and the
coordinator stops paying the slow link at all — scatter legs go
straight to the hedge path.  After a cool-down (``cooldown`` ticks
plus a seeded jitter draw, so a fleet of breakers does not probe in
lockstep) the breaker goes *half-open* and admits exactly one probe:
a probe success closes the breaker, a probe failure re-opens it with
a fresh jitter draw.

Everything is driven by the coordinator's simulated tick clock and a
``random.Random(seed)``, so a breaker schedule replays exactly per
seed.
"""

import random

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One link's failure-trip state machine."""

    def __init__(self, threshold=3, cooldown=32, probe_jitter=8, seed=0,
                 name=""):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if cooldown < 1:
            raise ValueError("cooldown must be at least 1 tick")
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe_jitter = probe_jitter
        self.name = name
        self._rng = random.Random(seed)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.retry_at = None        # tick the next probe is allowed
        self._probing = False       # a half-open probe is in flight
        # Observability counters.
        self.opens = 0
        self.probes = 0
        self.failures = 0
        self.successes = 0
        self.transitions = []       # [(tick, state)] audit trail

    def _enter(self, state, now):
        self.state = state
        self.transitions.append((now, state))

    def allow(self, now):
        """May a request use this link at tick ``now``?

        Closed: yes.  Open: no, until the cool-down elapses — then the
        breaker turns half-open and this call admits the single probe.
        Half-open: only the probe already admitted.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now >= self.retry_at:
            self._enter(HALF_OPEN, now)
            self._probing = True
            self.probes += 1
            return True
        if self.state == HALF_OPEN and not self._probing:
            self._probing = True
            self.probes += 1
            return True
        return False

    def record_success(self, now=0):
        self.successes += 1
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._probing = False
            self._enter(CLOSED, now)

    def record_failure(self, now):
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: back to open with a fresh jitter draw.
            self._probing = False
            self._open(now)
        elif self.state == CLOSED and \
                self.consecutive_failures >= self.threshold:
            self._open(now)

    def _open(self, now):
        self.opens += 1
        jitter = self._rng.randrange(self.probe_jitter) \
            if self.probe_jitter else 0
        self.retry_at = now + self.cooldown + jitter
        self._enter(OPEN, now)

    def snapshot(self):
        return {"state": self.state, "opens": self.opens,
                "probes": self.probes, "failures": self.failures,
                "successes": self.successes,
                "retry_at": self.retry_at}

    def __repr__(self):
        return "CircuitBreaker({0!r}, {1}, {2} opens)".format(
            self.name, self.state, self.opens)
