"""Per-tenant memory accounting shared across concurrent statements.

One :class:`TenantAccountant` is attached to a session manager (or any
multi-tenant front end); every governed statement's
:class:`~repro.governance.context.QueryContext` debits its tenant's
budget as BATs materialize and credits it back when the statement
finishes.  A charge that would push the tenant over budget raises
:class:`~repro.governance.errors.MemoryExceeded` with
``scope="tenant"`` — the session layer reports that to the admission
controller, which sheds the tenant's next arrivals instead of letting
it sink the node.
"""

from repro.governance.errors import MemoryExceeded


class TenantAccountant:
    """Tracks live materialized bytes per tenant against budgets.

    Parameters
    ----------
    default_budget:
        Bytes each tenant may hold live at once (None: unlimited for
        tenants without an explicit budget).
    budgets:
        Optional ``{tenant: bytes}`` overrides.
    """

    def __init__(self, default_budget=None, budgets=None):
        if default_budget is not None and default_budget < 1:
            raise ValueError("default_budget must be positive bytes")
        self.default_budget = default_budget
        self._budgets = dict(budgets or {})
        self.in_use = {}        # tenant -> live bytes
        self.peak = {}          # tenant -> high-water mark
        self.kills = {}         # tenant -> over-budget kills
        self.charged_total = 0

    def budget_of(self, tenant):
        return self._budgets.get(tenant, self.default_budget)

    def charge(self, tenant, nbytes, site=None):
        """Debit ``nbytes`` against ``tenant``; raises
        :class:`~repro.governance.errors.MemoryExceeded`
        (``scope="tenant"``) when the tenant's live total would exceed
        its budget.  The rejected charge is *not* recorded — the
        killing statement releases what it already held."""
        budget = self.budget_of(tenant)
        used = self.in_use.get(tenant, 0)
        if budget is not None and used + nbytes > budget:
            self.kills[tenant] = self.kills.get(tenant, 0) + 1
            raise MemoryExceeded(
                "tenant {0!r} over budget: {1} live + {2} requested > "
                "{3}".format(tenant, used, nbytes, budget),
                site=site, scope="tenant", tenant=tenant)
        self.in_use[tenant] = used + nbytes
        self.peak[tenant] = max(self.peak.get(tenant, 0), used + nbytes)
        self.charged_total += nbytes

    def release(self, tenant, nbytes):
        """Credit ``nbytes`` back (a statement finished)."""
        used = self.in_use.get(tenant, 0)
        if nbytes > used:
            raise RuntimeError(
                "release of {0} bytes exceeds tenant {1!r} live total "
                "{2}".format(nbytes, tenant, used))
        self.in_use[tenant] = used - nbytes

    def snapshot(self):
        return {tenant: {"in_use": self.in_use.get(tenant, 0),
                         "peak": self.peak.get(tenant, 0),
                         "kills": self.kills.get(tenant, 0),
                         "budget": self.budget_of(tenant)}
                for tenant in set(self.in_use) | set(self.kills)}
