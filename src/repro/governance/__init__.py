"""Query-lifecycle robustness: deadlines, cooperative cancellation and
resource governance (the *misbehaving-query* defenses the fail-stop
fault harness does not cover).

* :class:`~repro.governance.context.QueryContext` — per-statement
  deadline / cancel token / memory accountant, threaded cooperatively
  through the interpreter, compiled fragments, morsel workers,
  scatter legs, 2PC prepare and replication read routing.
* :class:`~repro.governance.accountant.TenantAccountant` —
  cross-statement per-tenant memory budgets.
* :class:`~repro.governance.breaker.CircuitBreaker` — per-link
  closed/open/half-open trip logic for gray (slow-but-alive) shards.
* :class:`~repro.governance.errors.GovernanceError` and its three
  subclasses — the clean retryable error surface.
* :mod:`repro.governance.oracle` — the cancellation-safety oracle
  band: kill at a random checkpoint, then prove by differential
  re-run that no state diverged.
"""

from repro.governance.accountant import TenantAccountant
from repro.governance.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.governance.context import (
    CHECK_FRAGMENT, CHECK_INTERP, CHECK_MORSEL, CHECK_PREPARE,
    CHECK_ROUTE, CHECK_SCATTER, CHECKPOINT_SITES, NO_GOVERNANCE,
    CountingContext, QueryContext,
)
from repro.governance.errors import (
    DeadlineExceeded, GovernanceError, MemoryExceeded, QueryCancelled,
)
from repro.governance.oracle import (
    CancellationOracle, OracleViolation, SweepReport,
)

__all__ = [
    "CHECK_FRAGMENT", "CHECK_INTERP", "CHECK_MORSEL", "CHECK_PREPARE",
    "CHECK_ROUTE", "CHECK_SCATTER", "CHECKPOINT_SITES", "CLOSED",
    "CancellationOracle", "CircuitBreaker", "CountingContext",
    "DeadlineExceeded", "GovernanceError", "HALF_OPEN",
    "MemoryExceeded", "NO_GOVERNANCE", "OPEN", "OracleViolation",
    "QueryCancelled", "QueryContext", "SweepReport", "TenantAccountant",
]
