"""The per-statement :class:`QueryContext`: deadline, cancel token,
memory accountant — threaded cooperatively through the whole stack.

The engine is single-threaded and simulated, so cancellation is
*cooperative*: every execution layer calls :meth:`QueryContext.checkpoint`
at its natural unit of work —

* ``interp.instr`` — the MAL interpreter, once per instruction;
* ``compile.fragment`` — the plan-fragment executor, once per
  generated kernel invocation;
* ``morsel`` — the parallel engine, once per morsel acquisition;
* ``scatter.leg`` — the sharding coordinator, once per scatter leg;
* ``twopc.prepare`` — the 2PC driver, once per participant prepare;
* ``repl.route`` — replication read routing, once per routed read.

Each checkpoint advances the context's tick clock by one (link layers
add their simulated delays via :meth:`tick`), then enforces, in order:
the armed kill plan (the oracle's deterministic
kill-at-checkpoint-N), the cancel flag, and the deadline.  Memory is
charged at BAT/array materialization sites via :meth:`charge`, against
the per-query budget and (when a
:class:`~repro.governance.accountant.TenantAccountant` is attached)
the tenant's budget.

A kill can therefore only fire at a checkpoint — never inside a
commit-publish sequence — which is what makes the safety invariant
("cancellation never corrupts state") enforceable: every checkpoint
sits strictly before the point of no return of its layer.

:data:`NO_GOVERNANCE` is the inert shared instance (the
``NO_FAULTS``/``NO_TRACE`` idiom): every hook defaults to it and pays
one attribute test on the hot path.
"""

from collections import Counter

from repro.governance.errors import (
    DeadlineExceeded, MemoryExceeded, QueryCancelled,
)

#: Canonical checkpoint site names, one per execution layer.
CHECK_INTERP = "interp.instr"
CHECK_FRAGMENT = "compile.fragment"
CHECK_MORSEL = "morsel"
CHECK_SCATTER = "scatter.leg"
CHECK_PREPARE = "twopc.prepare"
CHECK_ROUTE = "repl.route"

CHECKPOINT_SITES = (CHECK_INTERP, CHECK_FRAGMENT, CHECK_MORSEL,
                    CHECK_SCATTER, CHECK_PREPARE, CHECK_ROUTE)

_KILL_KINDS = ("cancel", "deadline", "memory")


class QueryContext:
    """Deadline + cancel token + memory accountant for one statement.

    Parameters
    ----------
    deadline:
        Ticks the statement may consume on the context clock (each
        checkpoint costs one tick; link layers add their delays).
        None: no deadline.
    memory_budget:
        Bytes of materialized intermediates the statement may charge.
        None: no per-query budget.
    tenant / accountant:
        When both given, every charge also debits the tenant's budget
        in the shared accountant (released wholesale by
        :meth:`release` when the statement finishes).
    """

    active = True

    def __init__(self, deadline=None, memory_budget=None, tenant=None,
                 accountant=None):
        if deadline is not None and deadline < 1:
            raise ValueError("deadline must be a positive tick count")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError("memory_budget must be positive bytes")
        self.deadline = deadline
        self.memory_budget = memory_budget
        self.tenant = tenant
        self.accountant = accountant
        self.clock = 0
        self.cancelled = False
        self.cancel_note = None
        self.checkpoints = Counter()
        self.total_checkpoints = 0
        self.mem_charged = 0        # bytes this statement materialized
        self._tenant_charged = 0    # bytes debited from the accountant
        self._kill_plan = None      # (kind, hit number, site or None)
        self.killed_by = None       # reason token once a kill fired

    # -- arming ----------------------------------------------------------------

    def cancel(self, note=None):
        """Set the cancellation token; the next checkpoint raises."""
        self.cancelled = True
        self.cancel_note = note

    def kill_at(self, hit, kind="cancel", site=None):
        """Arm a deterministic kill at the Nth checkpoint (optionally
        only counting hits of ``site``) — the cancellation oracle's
        schedule driver.  ``kind`` picks which governance error fires.
        """
        if kind not in _KILL_KINDS:
            raise ValueError("unknown kill kind {0!r}".format(kind))
        if hit < 1:
            raise ValueError("kill hit numbers are 1-based")
        self._kill_plan = (kind, hit, site)
        return self

    # -- cooperative enforcement ----------------------------------------------

    def tick(self, ticks=1):
        """Charge simulated time that passed outside checkpoints (link
        delays, backoff sleeps).  Does not itself kill — the next
        checkpoint observes the deadline."""
        self.clock += ticks

    def checkpoint(self, site):
        """One cooperative cancellation point; raises the governing
        :class:`~repro.governance.errors.GovernanceError` when a kill
        is due."""
        self.checkpoints[site] += 1
        self.total_checkpoints += 1
        self.clock += 1
        plan = self._kill_plan
        if plan is not None:
            kind, hit, at_site = plan
            count = self.checkpoints[site] if at_site == site \
                else self.total_checkpoints if at_site is None else None
            if count is not None and count >= hit:
                self._kill_plan = None
                self._fire(kind, site)
        if self.cancelled:
            self.killed_by = "cancelled"
            raise QueryCancelled(
                "query cancelled at checkpoint {0!r}".format(site),
                site=site, hit=self.checkpoints[site])
        if self.deadline is not None and self.clock > self.deadline:
            self.killed_by = "deadline"
            raise DeadlineExceeded(
                "deadline of {0} ticks exceeded at tick {1}".format(
                    self.deadline, self.clock),
                site=site, hit=self.checkpoints[site])

    def _fire(self, kind, site):
        hit = self.checkpoints[site]
        self.killed_by = {"cancel": "cancelled", "deadline": "deadline",
                          "memory": "memory"}[kind]
        if kind == "cancel":
            raise QueryCancelled(
                "query cancelled at checkpoint {0!r}".format(site),
                site=site, hit=hit)
        if kind == "deadline":
            raise DeadlineExceeded(
                "deadline exceeded at checkpoint {0!r}".format(site),
                site=site, hit=hit)
        raise MemoryExceeded(
            "memory budget exhausted at checkpoint {0!r}".format(site),
            site=site, hit=hit)

    def charge(self, nbytes, site=None):
        """Account ``nbytes`` of materialized intermediates; raises
        :class:`~repro.governance.errors.MemoryExceeded` over budget."""
        if nbytes <= 0:
            return
        self.mem_charged += nbytes
        if self.accountant is not None and self.tenant is not None:
            self.accountant.charge(self.tenant, nbytes, site=site)
            self._tenant_charged += nbytes
        if self.memory_budget is not None and \
                self.mem_charged > self.memory_budget:
            self.killed_by = "memory"
            raise MemoryExceeded(
                "query charged {0} bytes over its {1}-byte budget"
                .format(self.mem_charged, self.memory_budget),
                site=site, scope="query")

    def release(self):
        """Return this statement's tenant-accounted bytes (called once
        by whoever created the context, when the statement finishes —
        success or kill alike)."""
        if self._tenant_charged and self.accountant is not None:
            self.accountant.release(self.tenant, self._tenant_charged)
            self._tenant_charged = 0

    def __repr__(self):
        return ("QueryContext(clock={0}, deadline={1}, mem={2}/{3}, "
                "checkpoints={4})".format(
                    self.clock, self.deadline, self.mem_charged,
                    self.memory_budget, self.total_checkpoints))


class _NullContext(QueryContext):
    """The inert default: every hook is a no-op, shared and immutable."""

    active = False

    def __init__(self):
        super().__init__()

    def cancel(self, note=None):
        raise RuntimeError("NO_GOVERNANCE is shared and inert; build a "
                           "QueryContext to govern a statement")

    kill_at = cancel

    def tick(self, ticks=1):
        pass

    def checkpoint(self, site):
        pass

    def charge(self, nbytes, site=None):
        pass

    def release(self):
        pass


NO_GOVERNANCE = _NullContext()


class CountingContext(QueryContext):
    """A dry-run context that never kills: it observes how many times
    each checkpoint fires (and the bytes charged), so an oracle sweep
    can enumerate the kill schedule — the governance analogue of
    :func:`repro.faults.crash_points`."""

    def __init__(self):
        super().__init__()

    def checkpoint(self, site):
        self.checkpoints[site] += 1
        self.total_checkpoints += 1
        self.clock += 1

    def charge(self, nbytes, site=None):
        if nbytes > 0:
            self.mem_charged += nbytes

    def kill_points(self, sites=None):
        """All (site, hit) kill points this run passed through."""
        points = []
        for site in sorted(self.checkpoints):
            if sites is not None and site not in sites:
                continue
            for hit in range(1, self.checkpoints[site] + 1):
                points.append((site, hit))
        return points
