"""The cancellation oracle: "a kill never corrupts state", enforced.

The engine promises that a governed kill — deadline, cancel, memory —
is *clean*: whenever a :class:`~repro.governance.errors.GovernanceError`
fires, committed data is exactly what it was before the statement
started, and re-running the statement afterwards yields exactly the
result an unkilled run would have.  This module turns that promise
into an exhaustive, deterministic sweep, the governance analogue of
the crash-recovery oracle (:func:`repro.faults.crash_points`):

1. **Dry run** — execute the scenario under a
   :class:`~repro.governance.context.CountingContext`, which never
   kills but records every checkpoint the run passes through.  Its
   :meth:`~repro.governance.context.CountingContext.kill_points`
   enumerates the complete kill schedule: every (site, hit) pair at
   which a kill *could* fire.
2. **Sweep** — for each kill point and each kill kind, rebuild the
   scenario fresh, arm ``kill_at(hit, kind, site)``, and run.  The
   kill must fire (the schedule is deterministic), the state snapshot
   must be unchanged, and an ungoverned re-run on the same engine must
   reproduce the dry run's result and final state.

Scenario protocol: the caller supplies a ``scenario()`` factory
returning a fresh ``(run, snapshot)`` pair per schedule —
``run(context)`` executes the governed work (``context=None`` means
ungoverned) and returns a comparable result; ``snapshot()`` returns a
comparable picture of committed state.  A fresh pair per schedule is
what lets DML scenarios sweep safely: every armed run starts from the
same initial state.

Violations are collected, not raised one-by-one, so a failing sweep
reports every divergent schedule at once; :meth:`SweepReport.check`
raises :class:`OracleViolation` with the full list.
"""

from repro.governance.context import CountingContext, QueryContext
from repro.governance.errors import GovernanceError

#: Kill kinds the sweep arms by default.  "memory" is excluded: a
#: memory kill fires at a charge site, not a checkpoint, so its hit
#: numbering is not the checkpoint schedule's.
SWEEP_KINDS = ("cancel", "deadline")


class OracleViolation(AssertionError):
    """At least one kill schedule corrupted state or diverged."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = ["cancellation oracle: {0} violating schedule(s)".format(
            len(self.violations))]
        lines += ["  - " + v for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append("  ... {0} more".format(
                len(self.violations) - 20))
        super().__init__("\n".join(lines))


class SweepReport:
    """Outcome of one :meth:`CancellationOracle.sweep`."""

    def __init__(self):
        self.schedules = 0      # armed runs executed
        self.kills = 0          # runs where the kill fired (== schedules
                                # when the engine is honest)
        self.kill_points = []   # [(site, hit)] enumerated by the dry run
        self.violations = []    # human-readable divergence descriptions

    @property
    def clean(self):
        return not self.violations

    def check(self):
        """Raise :class:`OracleViolation` unless the sweep was clean."""
        if self.violations:
            raise OracleViolation(self.violations)
        return self

    def __repr__(self):
        return ("SweepReport({0} schedules, {1} kills, {2} kill points, "
                "{3} violations)".format(
                    self.schedules, self.kills, len(self.kill_points),
                    len(self.violations)))


class CancellationOracle:
    """Exhaustive kill-at-every-checkpoint sweep for one scenario.

    Parameters
    ----------
    scenario:
        Zero-argument factory returning ``(run, snapshot)``; see the
        module docstring for the protocol.
    sites:
        Restrict the sweep to these checkpoint sites (None: every site
        the dry run touched).
    kinds:
        Kill kinds to arm per kill point (default
        :data:`SWEEP_KINDS`).
    max_points:
        Cap on swept kill points (evenly strided over the schedule so
        early and late checkpoints are both covered); None sweeps all.
    """

    def __init__(self, scenario, sites=None, kinds=SWEEP_KINDS,
                 max_points=None):
        self.scenario = scenario
        self.sites = sites
        self.kinds = tuple(kinds)
        self.max_points = max_points

    # -- schedule enumeration --------------------------------------------------

    def dry_run(self):
        """(expected result, expected final snapshot, kill points)."""
        run, snapshot = self.scenario()
        counting = CountingContext()
        expected = run(counting)
        return expected, snapshot(), counting.kill_points(self.sites)

    def _stride(self, points):
        if self.max_points is None or len(points) <= self.max_points:
            return points
        step = len(points) / float(self.max_points)
        return [points[int(i * step)] for i in range(self.max_points)]

    # -- the sweep -------------------------------------------------------------

    def sweep(self):
        """Run every armed schedule; returns a :class:`SweepReport`."""
        report = SweepReport()
        expected, expected_state, points = self.dry_run()
        report.kill_points = points
        for site, hit in self._stride(points):
            for kind in self.kinds:
                self._one_schedule(report, site, hit, kind, expected,
                                   expected_state)
        return report

    def _one_schedule(self, report, site, hit, kind, expected,
                      expected_state):
        label = "kill_at({0!r}, hit={1}, kind={2})".format(site, hit,
                                                           kind)
        report.schedules += 1
        run, snapshot = self.scenario()
        before = snapshot()
        context = QueryContext().kill_at(hit, kind=kind, site=site)
        try:
            run(context)
        except GovernanceError:
            report.kills += 1
        except Exception as exc:  # an engine error is a violation too
            report.violations.append(
                "{0}: non-governance error {1!r}".format(label, exc))
            return
        else:
            report.violations.append(
                "{0}: kill never fired (schedule drifted?)".format(label))
            return
        after = snapshot()
        if after != before:
            report.violations.append(
                "{0}: committed state changed under the kill".format(
                    label))
            return
        try:
            rerun = run(None)
        except Exception as exc:
            report.violations.append(
                "{0}: ungoverned re-run failed: {1!r}".format(label, exc))
            return
        if not _comparable_equal(rerun, expected):
            report.violations.append(
                "{0}: re-run result diverged from clean run".format(
                    label))
            return
        if snapshot() != expected_state:
            report.violations.append(
                "{0}: re-run final state diverged from clean run".format(
                    label))


def _comparable_equal(left, right):
    """Order-insensitive equality for row lists, plain ``==`` else."""
    if isinstance(left, list) and isinstance(right, list):
        try:
            return sorted(left) == sorted(right)
        except TypeError:
            return left == right
    return left == right
