"""The governance error surface: one base class, stable reasons.

Every query-lifecycle kill — deadline, client cancel, memory budget —
raises a subclass of :class:`GovernanceError`.  The contract callers
(and the session layer) rely on:

* ``reason`` is a stable machine-readable token (``"deadline"``,
  ``"cancelled"``, ``"memory"``) — never parse the message.
* ``retryable`` is True: a governed kill aborts cleanly (state is
  untouched, enforced by the cancellation oracle), so the statement
  may simply be re-run, possibly with a larger budget.
* ``site``/``hit`` name the cooperative checkpoint that observed the
  kill (``interp.instr``, ``compile.fragment``, ``morsel``,
  ``scatter.leg``, ``twopc.prepare``, ``repl.route``), for diagnosis
  of where in the stack a runaway query was stopped.

The message is a single clean line; no engine internals leak through
(pinned by the session-layer regression tests).
"""


class GovernanceError(RuntimeError):
    """Base class of query-lifecycle kills (deadline/cancel/budget)."""

    reason = "governed"
    retryable = True

    def __init__(self, message, site=None, hit=None, **detail):
        self.site = site
        self.hit = hit
        self.detail = detail
        super().__init__(message)

    def status(self):
        """Machine-readable status dict (the session layer's error
        surface): stable keys, no traceback material."""
        return {"reason": self.reason, "retryable": self.retryable,
                "site": self.site, "message": str(self)}


class DeadlineExceeded(GovernanceError):
    """The statement ran past its deadline on the simulated clock."""

    reason = "deadline"


class QueryCancelled(GovernanceError):
    """The statement's cancellation token was set (client cancel)."""

    reason = "cancelled"


class MemoryExceeded(GovernanceError):
    """A materialization pushed the query (or its tenant) over budget.

    ``scope`` is ``"query"`` or ``"tenant"``; tenant-scope kills feed
    the admission controller's over-budget shedding.
    """

    reason = "memory"

    def __init__(self, message, site=None, hit=None, scope="query",
                 tenant=None, **detail):
        self.scope = scope
        self.tenant = tenant
        super().__init__(message, site=site, hit=hit, **detail)

    def status(self):
        out = super().status()
        out["scope"] = self.scope
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out
