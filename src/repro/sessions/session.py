"""Multi-tenant sessions: MVCC snapshot-isolation reads, explicit
transaction control, admission control and history recording — over a
single node, a replication group, or a sharded database.

A :class:`SessionManager` wraps one backend and hands out
:class:`Session` objects (one per client, stamped with a tenant).  A
session is autocommit until ``BEGIN``; between ``BEGIN`` and
``COMMIT``/``ROLLBACK`` every statement runs on one pinned MVCC
snapshot (all tables are snapshotted at ``BEGIN``, so the view is a
single consistent point in time, stamped with the backend's commit
LSN).  Commits run row-level first-writer-wins validation in the
engine; a :class:`~repro.sql.ConflictError` aborts the transaction.

Admission control (optional) gates ``BEGIN``: when the backend is at
``max_inflight`` open transactions the new one is shed with
:class:`AdmissionRejected` rather than queued — the synchronous caller
cannot wait; the open-loop workload driver uses the controller's
queueing API instead.

When the manager has a :class:`~repro.sessions.oracle.HistoryRecorder`,
every transaction's begin/read/write/finish is recorded with its
snapshot and commit LSNs and its shared-row write sets, feeding the
snapshot-isolation checker.

Resource governance (optional): a manager built with a
:class:`~repro.governance.TenantAccountant` and/or governance defaults
wraps every non-control statement in a per-statement
:class:`~repro.governance.QueryContext` stamped with the session's
tenant.  ``SET deadline = N`` / ``SET memory_budget = N`` through a
session set session-local limits (0 clears).  A governed kill surfaces
as a :class:`~repro.governance.GovernanceError` — a clean, retryable
error with a machine-readable ``status()``; the session aborts any
open transaction (buffered writes vanish, nothing was published) and a
tenant-scope :class:`~repro.governance.MemoryExceeded` is reported to
the admission controller, whose strike counter sheds repeat offenders.

Observability: with a tracer enabled, each statement executes inside a
``session.statement`` span carrying ``tenant`` and ``session`` attrs,
and :meth:`Session.profile` stamps the profile's root span with the
tenant — so PROFILE output attributes time per tenant.
"""

from repro.faults import CrashError
from repro.governance import (
    GovernanceError, MemoryExceeded, QueryContext,
)
from repro.sql.ast import (
    BeginTransaction, CommitTransaction, RollbackTransaction, Select,
    SetPragma,
)
from repro.sql.parser import parse_sql
from repro.sql.transactions import ConflictError

from repro.sessions.admission import AdmissionController  # noqa: F401
from repro.sessions.oracle import HistoryRecorder  # noqa: F401


class SessionError(RuntimeError):
    """Transaction-control misuse (BEGIN inside a transaction, COMMIT
    outside one, statement on a shed transaction, ...)."""


# -- backend adapters ---------------------------------------------------------


class _SingleNodeBackend:
    """Adapter over :class:`repro.sql.Database`."""

    kind = "single"

    def __init__(self, db):
        self.db = db

    def attach(self, session):
        pass

    def begin(self, session):
        return self.db.begin(pin=True)

    def autocommit(self, session, statement, sql, workers, context=None):
        return self.db.execute(sql if isinstance(sql, str) else statement,
                               workers=workers, context=context)

    def lsn(self):
        return self.db.commit_seq

    def snapshot_lsn(self, txn):
        return txn.snapshot_lsn

    def commit_lsn(self, txn):
        return txn.commit_lsn

    def local_txns(self, txn):
        return {"": txn}

    def profile(self, session, sql, workers):
        return self.db.profile(sql, workers=workers)


class _ReplicatedBackend:
    """Adapter over :class:`repro.replication.ReplicationGroup`.

    Transactions run on the primary; autocommit reads route to replicas
    with the routing floor raised to the session's last snapshot LSN,
    so a replica read is never older than the session's latest
    transaction snapshot (on top of the group's read-your-writes
    floor).
    """

    kind = "replicated"

    def __init__(self, group):
        self.group = group

    def attach(self, session):
        session._repl = self.group.session()

    def begin(self, session):
        return self.group.begin(pin=True)

    def autocommit(self, session, statement, sql, workers, context=None):
        return self.group.execute(
            sql if isinstance(sql, str) else statement,
            session=session._repl, workers=workers,
            min_lsn=session.last_snapshot_lsn, context=context)

    def lsn(self):
        return self.group.commit_lsn

    def snapshot_lsn(self, txn):
        return txn.snapshot_lsn

    def commit_lsn(self, txn):
        return txn.commit_lsn

    def local_txns(self, txn):
        return {"": txn._txn}

    def profile(self, session, sql, workers):
        return self.group.require_primary().db.profile(sql,
                                                       workers=workers)


class _ShardedBackend:
    """Adapter over :class:`repro.sharding.ShardedDatabase`.

    Shards have no shared WAL, so the manager's own monotone commit
    counter stamps snapshots and commits (it advances with every
    session commit and every autocommit write routed through a
    session).
    """

    kind = "sharded"

    def __init__(self, sdb):
        self.sdb = sdb
        self.commit_seq = 0

    def attach(self, session):
        pass

    def begin(self, session):
        txn = self.sdb.begin()
        txn.snapshot_lsn = self.commit_seq
        txn.commit_lsn = None
        return txn

    def autocommit(self, session, statement, sql, workers, context=None):
        result = self.sdb.execute(
            sql if isinstance(sql, str) else statement, workers=workers,
            context=context)
        if not isinstance(statement, Select):
            self.commit_seq += 1
        return result

    def lsn(self):
        return self.commit_seq

    def snapshot_lsn(self, txn):
        return txn.snapshot_lsn

    def commit_lsn(self, txn):
        if txn.commit_lsn is None and txn.outcome == "committed":
            wrote = any(t._appends or t._deleted
                        for t in txn._txns.values())
            if wrote:
                self.commit_seq += 1
                txn.commit_lsn = self.commit_seq
            else:
                txn.commit_lsn = self.commit_seq
        return txn.commit_lsn

    def local_txns(self, txn):
        return {"shard{0}".format(sid): local
                for sid, local in txn._txns.items()}

    def profile(self, session, sql, workers):
        raise NotImplementedError(
            "PROFILE through a sharded session is not supported")


def _adapt(backend):
    from repro.replication.group import ReplicationGroup
    from repro.sharding.coordinator import ShardedDatabase
    from repro.sql.database import Database
    if isinstance(backend, Database):
        return _SingleNodeBackend(backend)
    if isinstance(backend, ReplicationGroup):
        return _ReplicatedBackend(backend)
    if isinstance(backend, ShardedDatabase):
        return _ShardedBackend(backend)
    raise TypeError("unsupported backend {0!r}".format(backend))


# -- sessions -----------------------------------------------------------------


class Session:
    """One client's connection: a tenant label, autocommit by default,
    explicit ``BEGIN``/``COMMIT``/``ROLLBACK`` for transactions."""

    def __init__(self, manager, tenant, session_id):
        self._manager = manager
        self._backend = manager._backend
        self.tenant = tenant
        self.session_id = session_id
        self.txn = None
        self._txn_id = None
        self.last_snapshot_lsn = -1
        self.statements = 0
        self.commits = 0
        self.aborts = 0
        self.conflicts = 0
        self.shed = 0
        # Session-local governance limits (SET deadline / SET
        # memory_budget through this session), seeded from the manager.
        self.deadline = manager.default_deadline
        self.memory_budget = manager.default_memory_budget
        self.governed = 0
        self.last_status = None
        self._backend.attach(self)

    @property
    def in_transaction(self):
        return self.txn is not None

    # -- statement routing -----------------------------------------------------

    def execute(self, sql, workers=None):
        """Execute one statement in this session.

        ``BEGIN``/``COMMIT``/``ROLLBACK`` drive transaction state;
        anything else runs inside the open transaction, or autocommits.
        """
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        tracer = self._manager.tracer
        if not tracer.enabled:
            return self._dispatch(statement, sql, workers)
        label = sql if isinstance(sql, str) else repr(sql)
        with tracer.span("session.statement", kind="session",
                         tenant=self.tenant, session=self.session_id,
                         sql=label[:200]) as span:
            try:
                return self._dispatch(statement, sql, workers)
            except GovernanceError as exc:
                span.attrs["governed"] = exc.reason
                raise

    def query(self, sql, workers=None):
        return self.execute(sql, workers=workers).rows()

    def _dispatch(self, statement, sql, workers):
        self.statements += 1
        if isinstance(statement, BeginTransaction):
            self.begin()
            return None
        if isinstance(statement, CommitTransaction):
            self.commit()
            return None
        if isinstance(statement, RollbackTransaction):
            self.abort()
            return None
        if isinstance(statement, SetPragma) and \
                statement.name in ("deadline", "memory_budget"):
            from repro.sql.database import Database
            limit = Database._pragma_limit(statement.name,
                                           statement.value)
            setattr(self, statement.name, limit)
            return None
        context = self._make_context()
        try:
            return self._run_statement(statement, sql, workers, context)
        except GovernanceError as exc:
            self._governed(exc)
            raise
        finally:
            if context is not None:
                context.release()

    def _run_statement(self, statement, sql, workers, context):
        if self.txn is None:
            return self._backend.autocommit(self, statement, sql,
                                            workers, context=context)
        result = self.txn.execute(
            sql if isinstance(sql, str) else statement, context=context)
        recorder = self._manager.recorder
        if recorder is not None:
            text = sql if isinstance(sql, str) else repr(statement)
            if isinstance(statement, Select):
                recorder.read(self._txn_id, text, result.rows())
            else:
                recorder.write(self._txn_id, text, result)
        return result

    # -- governance --------------------------------------------------------------

    def _make_context(self):
        """A per-statement governance context, or None when the
        session has no limits and the manager no accountant."""
        manager = self._manager
        if self.deadline is None and self.memory_budget is None \
                and manager.accountant is None:
            return None
        return QueryContext(deadline=self.deadline,
                            memory_budget=self.memory_budget,
                            tenant=self.tenant,
                            accountant=manager.accountant)

    def _governed(self, exc):
        """Map a governed kill to a retryable session outcome: record
        the machine-readable status, abort any open transaction
        (buffered writes vanish — nothing was published), and report
        tenant-scope memory kills to admission control."""
        self.governed += 1
        self._manager.governed += 1
        self.last_status = exc.status()
        if self.txn is not None:
            self.abort()
        manager = self._manager
        if manager.admission is not None \
                and isinstance(exc, MemoryExceeded) \
                and exc.scope == "tenant":
            manager.admission.report_overbudget(self.tenant)

    # -- transaction control ----------------------------------------------------

    def begin(self):
        if self.txn is not None:
            raise SessionError("transaction already open")
        manager = self._manager
        if manager.admission is not None:
            try:
                manager.admission.acquire(self.tenant)
            except Exception:
                self.shed += 1
                raise
        self.txn = self._backend.begin(self)
        self._txn_id = manager._next_txn_id()
        self.last_snapshot_lsn = self._backend.snapshot_lsn(self.txn)
        if manager.recorder is not None:
            manager.recorder.begin(self._txn_id, self.tenant,
                                   self.last_snapshot_lsn)
        return self.txn

    def _finish(self, outcome, commit_lsn=None, write_sets=None,
                appends=None):
        manager = self._manager
        if manager.recorder is not None:
            manager.recorder.finish(self._txn_id, outcome,
                                    write_sets=write_sets,
                                    appends=appends,
                                    commit_lsn=commit_lsn)
        self.txn = None
        self._txn_id = None
        if manager.admission is not None:
            manager.admission.release(self.tenant)

    def _write_sets(self):
        """Per-table shared-row write sets (and append counts) of the
        open transaction, for the history recorder."""
        write_sets = {}
        appends = {}
        for prefix, local in self._backend.local_txns(self.txn).items():
            for name, dead in local._deleted.items():
                snap = local._snapshots.get(name)
                if snap is None:
                    continue
                shared = {int(o) for o in dead if o < snap[0]}
                if shared:
                    key = prefix + "/" + name if prefix else name
                    write_sets[key] = shared
            for name, rows in local._appends.items():
                if rows:
                    key = prefix + "/" + name if prefix else name
                    appends[key] = appends.get(key, 0) + len(rows)
        return write_sets, appends

    def commit(self):
        if self.txn is None:
            raise SessionError("no open transaction to commit")
        write_sets, appends = self._write_sets()
        try:
            self.txn.commit()
        except ConflictError:
            self.conflicts += 1
            self._finish("conflict", write_sets=write_sets,
                         appends=appends)
            raise
        except CrashError:
            self._finish("crashed", write_sets=write_sets,
                         appends=appends)
            raise
        self.commits += 1
        self._manager.committed += 1
        self._finish("committed",
                     commit_lsn=self._backend.commit_lsn(self.txn),
                     write_sets=write_sets, appends=appends)

    def abort(self):
        if self.txn is None:
            raise SessionError("no open transaction to roll back")
        self.aborts += 1
        try:
            self.txn.abort()
        finally:
            self._finish("aborted")

    rollback = abort

    # -- observability ----------------------------------------------------------

    def profile(self, sql, workers=None):
        """PROFILE a SELECT through this session; the root span is
        stamped with the tenant so reports attribute time per tenant."""
        profile = self._backend.profile(self, sql, workers)
        profile.root.attrs["tenant"] = self.tenant
        profile.root.attrs["session"] = self.session_id
        return profile

    # -- context manager --------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.txn is not None:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class SessionManager:
    """Hands out tenant-stamped sessions over one backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.sql.Database`, a
        :class:`~repro.replication.ReplicationGroup` or a
        :class:`~repro.sharding.ShardedDatabase`.
    admission:
        Optional :class:`AdmissionController` gating ``BEGIN``.
    recorder:
        Optional :class:`HistoryRecorder`; when given, every
        transaction's lifecycle is recorded for the isolation checker.
    tracer:
        Optional tracer for per-session statement spans; defaults to
        the backend's tracer when it has one.
    accountant:
        Optional :class:`~repro.governance.TenantAccountant`; when
        given, every governed statement charges its materializations
        against the session tenant's budget.
    default_deadline / default_memory_budget:
        Governance limits new sessions start with (overridable per
        session via ``SET deadline`` / ``SET memory_budget``).
    """

    def __init__(self, backend, admission=None, recorder=None,
                 tracer=None, accountant=None, default_deadline=None,
                 default_memory_budget=None):
        from repro.observability.tracer import NO_TRACE
        self._backend = _adapt(backend)
        self.backend_kind = self._backend.kind
        self.admission = admission
        self.recorder = recorder
        self.tracer = tracer if tracer is not None else getattr(
            backend, "tracer", NO_TRACE)
        self.accountant = accountant
        self.default_deadline = default_deadline
        self.default_memory_budget = default_memory_budget
        self.committed = 0
        self.governed = 0
        self._session_seq = 0
        self._txn_seq = 0
        self.sessions = []

    def session(self, tenant="default"):
        self._session_seq += 1
        session = Session(self, tenant,
                          "s{0}".format(self._session_seq))
        self.sessions.append(session)
        return session

    def _next_txn_id(self):
        self._txn_seq += 1
        return self._txn_seq

    def lsn(self):
        return self._backend.lsn()

    def check_isolation(self):
        """Run the snapshot-isolation checker over the recorded
        history; returns the violation list (empty = consistent)."""
        if self.recorder is None:
            raise RuntimeError("no HistoryRecorder attached")
        return self.recorder.check()
