"""The concurrency oracle: record transaction histories, check them
against snapshot-isolation axioms.

The session layer (when given a :class:`HistoryRecorder`) emits one
event stream per database: ``begin`` (with the snapshot LSN), ``read``
(statement text plus the observed row multiset), ``write`` (buffered
statement counts) and ``finish`` (outcome, the transaction's shared-row
write set per table, and the commit LSN).  The stream is plain dicts so
a failing history can be dumped, diffed and replayed.

:func:`check_snapshot_isolation` validates a finished history against
the axioms the engine claims:

* **commit-order consistency** — committed writers carry strictly
  increasing commit LSNs, in the order their commits returned, and
  every transaction's commit LSN is at least its snapshot LSN;
* **no lost updates** — two committed transactions that were concurrent
  (each took its snapshot before the other's commit) never both wrote
  the same row of the same table (first-writer-wins means the engine
  must have aborted one);
* **repeatable snapshot reads** — re-executing the same read inside one
  transaction returns the same multiset, no matter what committed in
  between (the transaction's *own* writes are allowed to change what it
  reads, so reads are only compared within stretches uninterrupted by
  the transaction's writes);
* **snapshot stability** — a transaction's snapshot LSN is at most its
  commit LSN, and snapshot LSNs never decrease in begin order.

The checker returns a list of human-readable violation strings (empty
means the history satisfies snapshot isolation); it is deliberately
independent of the engine so a bug cannot hide in shared code.
"""


class HistoryRecorder:
    """Append-only event log of every transaction's lifecycle."""

    def __init__(self):
        self.events = []

    # -- emitters (called by the session layer) -------------------------------

    def begin(self, txn_id, tenant, snapshot_lsn):
        self.events.append({"event": "begin", "txn": txn_id,
                            "tenant": tenant,
                            "snapshot_lsn": snapshot_lsn})

    def read(self, txn_id, sql, rows):
        self.events.append({"event": "read", "txn": txn_id, "sql": sql,
                            "rows": sorted(map(tuple, rows))})

    def write(self, txn_id, sql, rowcount):
        self.events.append({"event": "write", "txn": txn_id, "sql": sql,
                            "rowcount": rowcount})

    def finish(self, txn_id, outcome, write_sets=None, appends=None,
               commit_lsn=None):
        self.events.append({
            "event": "finish", "txn": txn_id, "outcome": outcome,
            "write_sets": {t: sorted(s)
                           for t, s in (write_sets or {}).items()},
            "appends": dict(appends or {}),
            "commit_lsn": commit_lsn})

    # -- convenience ----------------------------------------------------------

    def committed(self):
        return [e for e in self.events
                if e["event"] == "finish" and e["outcome"] == "committed"]

    def outcomes(self):
        out = {}
        for e in self.events:
            if e["event"] == "finish":
                out[e["txn"]] = e["outcome"]
        return out

    def check(self):
        return check_snapshot_isolation(self.events)


def _transactions(events):
    """Fold the event stream into per-transaction records, preserving
    begin order and finish order."""
    txns = {}
    begin_order = []
    finish_order = []
    for e in events:
        txn_id = e["txn"]
        t = txns.setdefault(txn_id, {"txn": txn_id, "reads": {},
                                     "epoch": 0,
                                     "snapshot_lsn": None,
                                     "commit_lsn": None, "outcome": None,
                                     "write_sets": {}, "appends": {}})
        kind = e["event"]
        if kind == "begin":
            t["snapshot_lsn"] = e["snapshot_lsn"]
            begin_order.append(txn_id)
        elif kind == "read":
            # Reads are bucketed by (sql, epoch): the epoch advances at
            # each of the transaction's own writes, so read-your-writes
            # never masquerades as a non-repeatable read.
            key = (e["sql"], t["epoch"])
            t["reads"].setdefault(key, []).append(e["rows"])
        elif kind == "write":
            t["epoch"] += 1
        elif kind == "finish":
            t["outcome"] = e["outcome"]
            t["commit_lsn"] = e["commit_lsn"]
            t["write_sets"] = {name: set(oids) for name, oids
                               in e["write_sets"].items()}
            t["appends"] = e["appends"]
            finish_order.append(txn_id)
    return txns, begin_order, finish_order


def _is_writer(t):
    return bool(t["write_sets"]) or bool(t["appends"])


def check_snapshot_isolation(events):
    """Validate a recorded history; returns a list of violations."""
    txns, begin_order, finish_order = _transactions(events)
    violations = []

    # Axiom: repeatable snapshot reads.
    for t in txns.values():
        for (sql, _epoch), results in t["reads"].items():
            for later in results[1:]:
                if later != results[0]:
                    violations.append(
                        "txn {0}: non-repeatable read of {1!r}: "
                        "{2!r} then {3!r}".format(
                            t["txn"], sql, results[0], later))
                    break

    # Axiom: snapshot stability (LSN sanity).
    last_snapshot = None
    for txn_id in begin_order:
        t = txns[txn_id]
        snap = t["snapshot_lsn"]
        if snap is None:
            violations.append("txn {0}: begin without snapshot LSN"
                              .format(txn_id))
            continue
        if last_snapshot is not None and snap < last_snapshot:
            violations.append(
                "txn {0}: snapshot LSN {1} went backwards (previous "
                "begin saw {2})".format(txn_id, snap, last_snapshot))
        last_snapshot = snap

    # Axiom: commit-order consistency.
    last_commit = None
    for txn_id in finish_order:
        t = txns[txn_id]
        if t["outcome"] != "committed":
            continue
        commit = t["commit_lsn"]
        if commit is None:
            violations.append("txn {0}: committed without a commit LSN"
                              .format(txn_id))
            continue
        snap = t["snapshot_lsn"]
        if snap is not None and commit < snap:
            violations.append(
                "txn {0}: commit LSN {1} precedes its snapshot LSN "
                "{2}".format(txn_id, commit, snap))
        if _is_writer(t):
            if last_commit is not None and commit <= last_commit:
                violations.append(
                    "txn {0}: writer commit LSN {1} not after the "
                    "previous writer's {2}".format(
                        txn_id, commit, last_commit))
            last_commit = commit

    # Axiom: no lost updates (first-writer-wins).
    committed_writers = [txns[x] for x in finish_order
                         if txns[x]["outcome"] == "committed"
                         and txns[x]["write_sets"]]
    for i, a in enumerate(committed_writers):
        for b in committed_writers[i + 1:]:
            if a["snapshot_lsn"] is None or b["snapshot_lsn"] is None:
                continue
            concurrent = (a["snapshot_lsn"] < b["commit_lsn"]
                          and b["snapshot_lsn"] < a["commit_lsn"])
            if not concurrent:
                continue
            for table, rows in a["write_sets"].items():
                overlap = rows & b["write_sets"].get(table, set())
                if overlap:
                    violations.append(
                        "lost update: concurrent txns {0} and {1} both "
                        "committed writes to rows {2} of {3!r}".format(
                            a["txn"], b["txn"], sorted(overlap), table))
    return violations
