"""Multi-tenant sessions: MVCC snapshot isolation, admission control,
and the concurrency oracle (history recorder + checker)."""

from repro.sessions.admission import (
    AdmissionController, AdmissionRejected,
)
from repro.sessions.oracle import (
    HistoryRecorder, check_snapshot_isolation,
)
from repro.sessions.session import Session, SessionError, SessionManager

__all__ = [
    "AdmissionController", "AdmissionRejected", "HistoryRecorder",
    "Session", "SessionError", "SessionManager",
    "check_snapshot_isolation",
]
