"""Per-tenant admission control: bounded in-flight transactions with
weighted-fair queueing.

The controller is a pure scheduling structure, usable both from the
synchronous session API (``acquire``/``release`` — immediate admit or
reject, callers cannot wait) and from the open-loop workload simulator
(``enqueue``/``admit_next``/``release`` — arrivals queue per tenant and
drain as in-flight slots free up).

Fairness is *stride scheduling* over the non-empty tenant queues: each
tenant holds a pass value advanced by ``STRIDE1 / weight`` per admitted
transaction, and ``admit_next`` always picks the backlogged tenant with
the smallest pass (ties broken by tenant id, so the schedule is
deterministic).  A tenant that goes idle re-enters at the global pass —
it cannot hoard credit while idle and then monopolise the server.  Every
backlogged tenant's pass is finite and min-picked, so no tenant starves
regardless of how skewed the arrival mix is; admission shares converge
to the weight ratios.

Overload policy is load shedding, not unbounded buffering: a tenant's
queue is capped at ``max_queue_depth`` and arrivals beyond that are
rejected with :class:`AdmissionRejected` (counted per tenant), which is
what keeps latency of *admitted* work bounded in bench E22.

Resource governance plugs in through :meth:`report_overbudget`: the
session layer reports each tenant-scope
:class:`~repro.governance.MemoryExceeded`, and after
``overbudget_strikes`` consecutive reports the tenant's next
``penalty_window`` arrivals are shed outright — a deterministic
shed window that stops a tenant whose queries keep blowing their
memory budget from re-admitting the same doomed work immediately.
"""

from collections import deque

STRIDE1 = 1 << 20


class AdmissionRejected(RuntimeError):
    """The transaction was shed: no in-flight slot and no queue room."""


class _TenantQueue:
    __slots__ = ("tenant", "weight", "items", "pass_value", "admitted",
                 "shed", "enqueued", "strikes", "penalty")

    def __init__(self, tenant, weight, pass_value):
        self.tenant = tenant
        self.weight = weight
        self.items = deque()
        self.pass_value = pass_value
        self.admitted = 0
        self.shed = 0
        self.enqueued = 0
        self.strikes = 0
        self.penalty = 0


class AdmissionController:
    """Bounded in-flight transactions, weighted-fair across tenants.

    Parameters
    ----------
    max_inflight:
        Transactions allowed in service at once (the concurrency the
        engine is provisioned for, e.g. the morsel scheduler's worker
        count).
    max_queue_depth:
        Per-tenant queue cap; arrivals beyond it are shed.
    weights:
        Optional ``{tenant: weight}``; heavier tenants get
        proportionally more admissions when contended.
    """

    def __init__(self, max_inflight=8, max_queue_depth=64, weights=None,
                 default_weight=1, overbudget_strikes=3,
                 penalty_window=8):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if overbudget_strikes < 1:
            raise ValueError("overbudget_strikes must be at least 1")
        if penalty_window < 0:
            raise ValueError("penalty_window must be non-negative")
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.default_weight = default_weight
        self.overbudget_strikes = overbudget_strikes
        self.penalty_window = penalty_window
        self._weights = dict(weights or {})
        self._queues = {}
        self._global_pass = 0
        self.inflight = 0
        self.admitted = 0
        self.shed = 0
        self.released = 0
        self.overbudget_reports = 0
        self.penalized = 0

    # -- plumbing ------------------------------------------------------------

    def _queue(self, tenant):
        q = self._queues.get(tenant)
        if q is None:
            weight = self._weights.get(tenant, self.default_weight)
            if weight < 1:
                raise ValueError("tenant weight must be at least 1")
            q = _TenantQueue(tenant, weight, self._global_pass)
            self._queues[tenant] = q
        return q

    def _charge(self, q):
        """Advance the tenant's pass for one admission."""
        if q.pass_value < self._global_pass:
            q.pass_value = self._global_pass  # re-activation, no credit
        self._global_pass = q.pass_value
        q.pass_value += STRIDE1 // q.weight
        q.admitted += 1
        self.admitted += 1
        self.inflight += 1

    def backlog(self):
        """Total queued (admitted-but-waiting) transactions."""
        return sum(len(q.items) for q in self._queues.values())

    def queue_depth(self, tenant):
        q = self._queues.get(tenant)
        return len(q.items) if q is not None else 0

    def _shed_penalized(self, q):
        """Shed one arrival of a tenant serving a penalty window."""
        if q.penalty <= 0:
            return False
        q.penalty -= 1
        q.shed += 1
        self.shed += 1
        return True

    # -- resource governance ---------------------------------------------------

    def report_overbudget(self, tenant):
        """The session layer saw ``tenant`` blow its memory budget.

        Strikes accumulate per tenant; at ``overbudget_strikes`` they
        reset and arm a shed window of ``penalty_window`` arrivals.
        Returns True when this report armed a window."""
        q = self._queue(tenant)
        q.strikes += 1
        self.overbudget_reports += 1
        if q.strikes >= self.overbudget_strikes:
            q.strikes = 0
            q.penalty += self.penalty_window
            self.penalized += 1
            return True
        return False

    # -- synchronous API (session layer) -------------------------------------

    def acquire(self, tenant):
        """Admit one transaction now or shed it.

        The synchronous caller cannot wait, so admission succeeds only
        when an in-flight slot is free *and* no queued work is being
        jumped; otherwise the transaction is shed with
        :class:`AdmissionRejected`.
        """
        q = self._queue(tenant)
        if self._shed_penalized(q):
            raise AdmissionRejected(
                "tenant {0!r} shed: over memory budget "
                "({1} penalty arrivals left)".format(tenant, q.penalty))
        if self.inflight >= self.max_inflight or self.backlog():
            q.shed += 1
            self.shed += 1
            raise AdmissionRejected(
                "tenant {0!r} shed: {1}/{2} in flight, {3} queued".format(
                    tenant, self.inflight, self.max_inflight,
                    self.backlog()))
        self._charge(q)

    # -- queued API (workload simulator) --------------------------------------

    def enqueue(self, tenant, item):
        """Queue an arrival for later admission; sheds on a full queue."""
        q = self._queue(tenant)
        if self._shed_penalized(q):
            raise AdmissionRejected(
                "tenant {0!r} shed: over memory budget "
                "({1} penalty arrivals left)".format(tenant, q.penalty))
        if len(q.items) >= self.max_queue_depth:
            q.shed += 1
            self.shed += 1
            raise AdmissionRejected(
                "tenant {0!r} queue full ({1})".format(
                    tenant, self.max_queue_depth))
        q.items.append(item)
        q.enqueued += 1

    def admit_next(self):
        """Admit the fairest queued transaction, if a slot is free.

        Returns ``(tenant, item)`` or ``None`` (no slot / no backlog).
        """
        if self.inflight >= self.max_inflight:
            return None
        backlogged = [q for q in self._queues.values() if q.items]
        if not backlogged:
            return None
        q = min(backlogged, key=lambda t: (t.pass_value, str(t.tenant)))
        item = q.items.popleft()
        self._charge(q)
        return (q.tenant, item)

    def release(self, tenant):
        """One in-flight transaction of ``tenant`` finished."""
        if self.inflight <= 0:
            raise RuntimeError("release without matching admit")
        self.inflight -= 1
        self.released += 1

    # -- stats ----------------------------------------------------------------

    def tenant_stats(self):
        """``{tenant: {admitted, shed, queued, weight, strikes,
        penalty}}``."""
        return {q.tenant: {"admitted": q.admitted, "shed": q.shed,
                           "queued": len(q.items), "weight": q.weight,
                           "strikes": q.strikes, "penalty": q.penalty}
                for q in self._queues.values()}

    def snapshot(self):
        return {"inflight": self.inflight, "admitted": self.admitted,
                "shed": self.shed, "released": self.released,
                "backlog": self.backlog(),
                "overbudget_reports": self.overbudget_reports,
                "penalized": self.penalized,
                "tenants": self.tenant_stats()}
