"""Multi-pass Radix-Cluster (Section 4.2, Figure 2).

Radix-clustering on the lower ``B`` bits of the (integer) hash value of a
column is performed in ``P`` sequential passes; pass ``p`` clusters on
``B_p`` bits, starting from the leftmost of the lower ``B`` bits
(``sum(B_p) = B``).  The number of randomly accessed write regions per
pass is ``H_p = 2**B_p``; keeping ``H_p`` below both the TLB entry count
and the cache line count avoids TLB and cache thrashing while still
reaching ``H = 2**B`` clusters overall.

With ``P = 1`` the algorithm degenerates to the straightforward
single-pass clustering of Shatdal et al. — the baseline whose miss
explosion experiment E1 reproduces.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.bat import global_address_space
from repro.hardware import trace as trace_mod

#: CPU work per tuple per pass: shift, mask, cursor increment, store.
CYCLES_PER_TUPLE_PER_PASS = 4
#: CPU work per tuple for the counting pre-scan of each pass.
CYCLES_PER_TUPLE_COUNT = 2


def identity_hash(values):
    """The hash used for integer keys (as in [9]: cheap and sufficient)."""
    return values


def split_bits(bits, passes):
    """Distribute ``bits`` over ``passes`` passes, leftmost-heavy.

    >>> split_bits(7, 2)
    [4, 3]
    """
    if passes < 1:
        raise ValueError("need at least one pass")
    if passes > max(bits, 1):
        passes = max(bits, 1)
    base = bits // passes
    extra = bits - base * passes
    return [base + (1 if p < extra else 0) for p in range(passes)]


@dataclass
class RadixClustering:
    """Result of radix-clustering one array.

    Attributes
    ----------
    values:
        The clustered array: tuples with equal lower-``bits`` hash bits
        are consecutive, clusters ordered by their radix.
    permutation:
        ``values[i] == original[permutation[i]]``.
    offsets:
        ``H + 1`` boundaries; cluster ``c`` is
        ``values[offsets[c]:offsets[c + 1]]``.
    bits / pass_bits:
        Total radix bits and their per-pass split.
    """

    values: np.ndarray
    permutation: np.ndarray
    offsets: np.ndarray
    bits: int
    pass_bits: tuple

    @property
    def n_clusters(self):
        return len(self.offsets) - 1

    def cluster(self, index):
        return self.values[self.offsets[index]:self.offsets[index + 1]]

    def cluster_positions(self, index):
        return self.permutation[self.offsets[index]:self.offsets[index + 1]]


def radix_cluster(values, bits, passes=1, hierarchy=None, item_size=8,
                  hash_fn=identity_hash):
    """Cluster ``values`` on the lower ``bits`` bits of their hash.

    Parameters
    ----------
    values:
        1-D integer array.
    bits:
        Total radix bits ``B`` (``H = 2**B`` clusters).
    passes:
        Either the number of passes (bits split leftmost-heavy) or an
        explicit per-pass bit list summing to ``bits``.
    hierarchy:
        Optional :class:`repro.hardware.MemoryHierarchy`; when given,
        each pass's exact access pattern (sequential count scan, then
        read-write scatter) is simulated and CPU cycles are charged.
    item_size:
        Bytes per tuple moved per pass (8 for an <oid,int> pair's
        clustered half).

    Returns a :class:`RadixClustering`.
    """
    values = np.ascontiguousarray(values)
    n = len(values)
    if isinstance(passes, int):
        pass_bits = split_bits(bits, passes)
    else:
        pass_bits = list(passes)
        if sum(pass_bits) != bits:
            raise ValueError("per-pass bits {0} do not sum to {1}".format(
                pass_bits, bits))
    hashes = hash_fn(values) & ((1 << bits) - 1) if bits else \
        np.zeros(n, dtype=np.int64)
    permutation = np.arange(n, dtype=np.int64)

    if hierarchy is not None:
        buf_a = global_address_space.allocate(max(n * item_size, 1))
        buf_b = global_address_space.allocate(max(n * item_size, 1))
    current_hashes = np.asarray(hashes, dtype=np.int64)

    consumed = 0
    for p, b in enumerate(pass_bits):
        if b == 0:
            continue
        consumed += b
        shift = bits - consumed
        # Stable counting sort on the top `consumed` bits refines the
        # clusters of the previous passes by this pass's 2**b digits.
        key = current_hashes >> shift
        order = np.argsort(key, kind="stable")
        dest = np.empty(n, dtype=np.int64)
        dest[order] = np.arange(n, dtype=np.int64)
        if hierarchy is not None:
            base_in = buf_a if p % 2 == 0 else buf_b
            base_out = buf_b if p % 2 == 0 else buf_a
            reads = trace_mod.sequential(base_in, n, item_size)
            # Counting pre-scan: one sequential read of the input.
            hierarchy.access(reads)
            hierarchy.add_cpu_cycles(n * CYCLES_PER_TUPLE_COUNT)
            # Scatter: read input sequentially, write each tuple to its
            # destination cluster cursor (2**b active write regions per
            # source cluster).
            writes = base_out + dest * item_size
            hierarchy.access(trace_mod.interleave(reads, writes))
            hierarchy.add_cpu_cycles(n * CYCLES_PER_TUPLE_PER_PASS)
        permutation = permutation[order]
        current_hashes = current_hashes[order]

    clustered = values[permutation]
    counts = np.bincount(hashes, minlength=1 << bits) if bits else \
        np.asarray([n], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return RadixClustering(clustered, permutation, offsets, bits,
                           tuple(pass_bits))


def radix_bits(values, bits, hash_fn=identity_hash):
    """The radix (cluster id) of each value — test/debug helper."""
    if bits == 0:
        return np.zeros(len(values), dtype=np.int64)
    return hash_fn(np.asarray(values)) & ((1 << bits) - 1)
