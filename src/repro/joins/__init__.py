"""Cache-conscious join and projection algorithms (Section 4).

Every algorithm here exists in two intertwined forms:

* a *fast path* — vectorized numpy code that computes the actual result
  (validated against :func:`repro.core.algebra.nested_loop_join`); and
* a *traced path* — when a :class:`repro.hardware.MemoryHierarchy` is
  passed, the algorithm additionally feeds its exact memory-access
  pattern (derived from the real data, not a synthetic model) into the
  simulator, so experiments can measure cache misses, TLB misses, and
  simulated cycles.

Contents: bucket-chained hash join (the baseline), multi-pass
radix-cluster (Figure 2), radix-partitioned hash join, radix-decluster
projection, and the NSM/DSM pre/post-projection strategy matrix.
"""

from repro.joins.hash_join import HashJoinResult, simple_hash_join
from repro.joins.radix_cluster import (
    RadixClustering,
    radix_bits,
    radix_cluster,
)
from repro.joins.partitioned_hash_join import (
    partitioned_hash_join,
    plan_partitioning,
)
from repro.joins.radix_decluster import (
    naive_post_projection,
    radix_decluster,
    sort_based_projection,
)
from repro.joins.projection import (
    PROJECTION_STRATEGIES,
    run_projection_strategy,
)

__all__ = [
    "simple_hash_join",
    "HashJoinResult",
    "radix_cluster",
    "radix_bits",
    "RadixClustering",
    "partitioned_hash_join",
    "plan_partitioning",
    "radix_decluster",
    "naive_post_projection",
    "sort_based_projection",
    "PROJECTION_STRATEGIES",
    "run_projection_strategy",
]
