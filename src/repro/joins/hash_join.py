"""Bucket-chained hash join — the baseline of Section 4.1.

"The nature of any hashing algorithm implies that the access pattern to
the inner relation (plus hash-table) is random.  In case the randomly
accessed data is too large for the CPU caches, each tuple access will
cause cache misses and performance degrades."

The join's result is computed vectorized; when a hierarchy is given, the
build phase's bucket-array writes and the probe phase's bucket + chain
reads are simulated at their true addresses (buckets derived from the
actual key hashes, chain nodes at their actual insertion offsets).
"""

from dataclasses import dataclass

import numpy as np

from repro.core.algebra import _join_positions_fixed
from repro.core.bat import global_address_space
from repro.hardware import trace as trace_mod
from repro.joins.radix_cluster import identity_hash

#: CPU cycles per tuple when the inner loop is CPU-optimized
#: (inlined hash, no division) and when it is not — the [25] effect.
BUILD_CYCLES_OPTIMIZED = 6
PROBE_CYCLES_OPTIMIZED = 10
CPU_PENALTY_UNOPTIMIZED = 4  # function calls + division-based hashing

#: Bytes per hash-table bucket-head slot and per chain node (next + tuple).
BUCKET_SLOT_BYTES = 8
NODE_BYTES = 16


@dataclass
class HashJoinResult:
    """Matching position pairs, in probe (left) order."""

    left_positions: np.ndarray
    right_positions: np.ndarray

    def __len__(self):
        return len(self.left_positions)

    def pairs(self):
        return list(zip(self.left_positions.tolist(),
                        self.right_positions.tolist()))


def _next_power_of_two(n):
    return 1 << max(int(n) - 1, 0).bit_length()


def allocate_regions(n_left, n_right, n_buckets, item_size=8):
    """Pre-allocate the four address regions a hash join touches.

    The partitioned hash join reuses one small region set across all
    cluster pairs — that is what keeps its hash table cache-resident.
    """
    space = global_address_space
    return {
        "left_base": space.allocate(max(n_left * item_size, 1)),
        "right_base": space.allocate(max(n_right * item_size, 1)),
        "bucket_base": space.allocate(max(n_buckets * BUCKET_SLOT_BYTES, 1)),
        "node_base": space.allocate(max(n_right * NODE_BYTES, 1)),
    }


def simple_hash_join(left, right, hierarchy=None, item_size=8,
                     n_buckets=None, hash_fn=identity_hash,
                     cpu_optimized=True, regions=None):
    """Equi-join ``left`` with ``right`` using one bucket-chained table.

    The hash table is built on ``right`` (the inner relation); ``left``
    is the probe side.  Returns a :class:`HashJoinResult`.

    When ``hierarchy`` is given the true access pattern is simulated:

    * build — sequential read of ``right``, one random bucket-head write
      and one sequential chain-node write per tuple;
    * probe — sequential read of ``left``, one random bucket-head read
      per tuple, plus one chain-node read per visited node (the actual
      chain of that bucket, in insertion order).
    """
    left = np.ascontiguousarray(left)
    right = np.ascontiguousarray(right)
    if n_buckets is None:
        n_buckets = max(_next_power_of_two(len(right)), 1)
    l_pos, r_pos = _join_positions_fixed(left, right)
    if hierarchy is not None:
        if regions is None:
            regions = allocate_regions(len(left), len(right), n_buckets,
                                       item_size)
        _simulate(left, right, l_pos, r_pos, hierarchy, item_size,
                  n_buckets, hash_fn, cpu_optimized, regions)
    return HashJoinResult(l_pos, r_pos)


def _simulate(left, right, l_pos, r_pos, hierarchy, item_size, n_buckets,
              hash_fn, cpu_optimized, regions):
    mask = n_buckets - 1
    penalty = 1 if cpu_optimized else CPU_PENALTY_UNOPTIMIZED
    right_base = regions["right_base"]
    left_base = regions["left_base"]
    bucket_base = regions["bucket_base"]
    node_base = regions["node_base"]

    # Build phase.
    if len(right):
        r_buckets = (hash_fn(right) & mask).astype(np.int64)
        reads = trace_mod.sequential(right_base, len(right), item_size)
        bucket_writes = bucket_base + r_buckets * BUCKET_SLOT_BYTES
        node_writes = trace_mod.sequential(node_base, len(right), NODE_BYTES)
        hierarchy.access(trace_mod.interleave(reads, bucket_writes,
                                              node_writes))
        hierarchy.add_cpu_cycles(len(right) * BUILD_CYCLES_OPTIMIZED
                                 * penalty)

    # Probe phase.
    if len(left):
        l_buckets = (hash_fn(left) & mask).astype(np.int64)
        reads = trace_mod.sequential(left_base, len(left), item_size)
        bucket_reads = bucket_base + l_buckets * BUCKET_SLOT_BYTES
        hierarchy.access(trace_mod.interleave(reads, bucket_reads))
        # Chain walks: visit the node of every matched right tuple.  (On
        # the unique-key joins of the experiments, chains have length
        # ~1, so matches are the chain visits.)
        if len(r_pos):
            hierarchy.access(node_base + r_pos * NODE_BYTES)
        hierarchy.add_cpu_cycles(len(left) * PROBE_CYCLES_OPTIMIZED
                                 * penalty)
