"""Radix-decluster projection (Section 4.3).

The DSM post-projection problem: produce ``result[i] =
column[index[i]]`` for a join index whose fetch positions are random.
Fetching naively makes every access a cache miss once the column
outgrows the cache.

Radix-decluster confines all random access to cache-sized regions using
*single-pass* partitioning (never more active regions than cache lines /
TLB entries permit):

1. *decluster pass* (once per join index) — partition the (rank,
   position) pairs on the high bits of the fetch position into K fetch
   partitions: a sequential read feeding K sequential write cursors;
2. *fetch pass* (per column) — walk the fetch partitions in order,
   gathering the column values: random, but within a column region of
   size ``|column|/K`` that fits the cache; the fetched (rank, value)
   pairs are emitted into K *output* partitions by rank high bits
   (again K sequential cursors);
3. *place pass* (per column) — per output partition, write each value
   at its exact output offset: random, but within a cache-sized output
   region.

Projecting many columns amortizes pass 1; this is exactly why DSM
post-projection wins the strategy matrix of experiment E3.

Because each partitioning is single-pass, K is bounded by the cache
line/TLB count, and each region must itself fit the cache; the maximum
relation size therefore grows *quadratically* with the cache size — the
scalability limit Section 4.3 quantifies (half a billion tuples for a
512KB Pentium4 Xeon cache, 72 billion for a 6MB Itanium2).
"""

import numpy as np

from repro.core.bat import global_address_space
from repro.hardware import trace as trace_mod
from repro.hardware.profiles import SCALED_DEFAULT

CYCLES_PER_TUPLE_PASS = 4

#: Pair entries carry (rank, payload): 16 bytes.
PAIR_BYTES = 16


def max_declusterable_tuples(profile, item_size=8, level=None):
    """The quadratic-in-cache-size scalability limit of Section 4.3."""
    cache = profile.caches[-1] if level is None else profile.cache(level)
    n_lines = cache.capacity // cache.line_size
    return (n_lines // 2) * (cache.capacity // 2) // item_size


def _partition_bits(n_items, item_size, profile):
    """K = 2**bits fetch/output partitions, obeying both constraints."""
    cache = profile.caches[-1]
    max_regions = cache.capacity // cache.line_size
    if profile.tlb is not None:
        max_regions = min(max_regions, profile.tlb.entries)
    bits = 0
    # Each region (n_items / K items) must fit in half the cache, while
    # keeping K write cursors within the region budget.
    while (n_items * item_size) >> bits > cache.capacity // 2 and \
            (2 << bits) <= max_regions:
        bits += 1
    return bits


def naive_post_projection(index, column, hierarchy=None, item_size=8):
    """Baseline: fetch values in output order (random gather)."""
    index = np.ascontiguousarray(index, dtype=np.int64)
    column = np.ascontiguousarray(column)
    result = column[index]
    if hierarchy is not None:
        space = global_address_space
        idx_base = space.allocate(max(len(index) * 8, 1))
        col_base = space.allocate(max(len(column) * item_size, 1))
        out_base = space.allocate(max(len(index) * item_size, 1))
        idx_reads = trace_mod.sequential(idx_base, len(index), 8)
        col_reads = col_base + index * item_size
        out_writes = trace_mod.sequential(out_base, len(index), item_size)
        hierarchy.access(trace_mod.interleave(idx_reads, col_reads,
                                              out_writes))
        hierarchy.add_cpu_cycles(len(index) * CYCLES_PER_TUPLE_PASS)
    return result


def sort_based_projection(index, column, hierarchy=None, item_size=8):
    """Baseline: fully sort the index, fetch sequentially, scatter back.

    Sequentializes the fetches at the price of a full sort and a fully
    random scatter into the output.
    """
    index = np.ascontiguousarray(index, dtype=np.int64)
    column = np.ascontiguousarray(column)
    order = np.argsort(index, kind="stable")
    result = np.empty(len(index), dtype=column.dtype)
    result[order] = column[index[order]]
    if hierarchy is not None and len(index):
        space = global_address_space
        pair_base = space.allocate(max(len(index) * PAIR_BYTES, 1))
        col_base = space.allocate(max(len(column) * item_size, 1))
        out_base = space.allocate(max(len(index) * item_size, 1))
        # Sort cost: multi-pass radix sort, read+write sweeps over pairs.
        n_passes = max(int(np.ceil(np.log2(max(len(index), 2)) / 6)), 1)
        seq = trace_mod.sequential(pair_base, len(index), PAIR_BYTES)
        for _ in range(n_passes):
            hierarchy.access(trace_mod.interleave(seq, seq))
            hierarchy.add_cpu_cycles(len(index) * CYCLES_PER_TUPLE_PASS)
        # Sequential fetch through the column, random scatter to output:
        # in fetch (sorted-by-position) order, the output offset of each
        # value is its original rank.
        col_reads = col_base + index[order] * item_size
        out_writes = out_base + order * item_size
        hierarchy.access(trace_mod.interleave(col_reads, out_writes))
        hierarchy.add_cpu_cycles(len(index) * CYCLES_PER_TUPLE_PASS)
    return result


class DeclusterPlan:
    """The shared partitioning of one join index (decluster pass).

    Build it once, then call :meth:`project` per payload column — the
    way experiment E3's DSM post-projection strategy amortizes pass 1
    over all projected columns.
    """

    def __init__(self, index, n_column_items, hierarchy=None,
                 item_size=8, profile=SCALED_DEFAULT, partition_bits=None):
        self.index = np.ascontiguousarray(index, dtype=np.int64)
        self.hierarchy = hierarchy
        self.item_size = item_size
        n = len(self.index)
        if partition_bits is None:
            partition_bits = _partition_bits(
                max(n_column_items, n, 1), item_size, profile)
        self.partition_bits = partition_bits
        self.k = 1 << partition_bits
        col_span = max(n_column_items, 1)
        fetch_part = (self.index * self.k) // col_span
        self.order1 = np.argsort(fetch_part, kind="stable")
        if hierarchy is not None and n:
            space = global_address_space
            idx_base = space.allocate(n * 8)
            self.pairs_base = space.allocate(n * PAIR_BYTES)
            dest1 = np.empty(n, dtype=np.int64)
            dest1[self.order1] = np.arange(n, dtype=np.int64)
            hierarchy.access(trace_mod.interleave(
                trace_mod.sequential(idx_base, n, 8),
                self.pairs_base + dest1 * PAIR_BYTES))
            hierarchy.add_cpu_cycles(n * CYCLES_PER_TUPLE_PASS)

    def project(self, column):
        """``column[index]`` via the fetch and place passes."""
        column = np.ascontiguousarray(column)
        result = column[self.index]
        hierarchy = self.hierarchy
        n = len(self.index)
        if hierarchy is None or n == 0:
            return result
        space = global_address_space
        col_base = space.allocate(max(len(column) * self.item_size, 1))
        out_pairs = space.allocate(n * PAIR_BYTES)
        out_base = space.allocate(n * self.item_size)

        # Fetch pass: pairs sequential, column gathers region-local,
        # emission into K output-partition cursors.
        ranks_in_fetch_order = self.order1
        out_part = (ranks_in_fetch_order * self.k) // n
        dest2 = np.empty(n, dtype=np.int64)
        order2 = np.argsort(out_part, kind="stable")
        dest2[order2] = np.arange(n, dtype=np.int64)
        hierarchy.access(trace_mod.interleave(
            trace_mod.sequential(self.pairs_base, n, PAIR_BYTES),
            col_base + self.index[self.order1] * self.item_size,
            out_pairs + dest2 * PAIR_BYTES))
        hierarchy.add_cpu_cycles(n * CYCLES_PER_TUPLE_PASS)

        # Place pass: per output partition, scatter values at their
        # exact offsets within a cache-sized output region.
        final_ranks = ranks_in_fetch_order[order2]
        hierarchy.access(trace_mod.interleave(
            trace_mod.sequential(out_pairs, n, PAIR_BYTES),
            out_base + final_ranks * self.item_size))
        hierarchy.add_cpu_cycles(n * CYCLES_PER_TUPLE_PASS)
        return result


def radix_decluster(index, column, hierarchy=None, item_size=8,
                    profile=SCALED_DEFAULT, partition_bits=None):
    """Cache-conscious single-column projection (one-shot plan).

    Returns ``column[index]``; see :class:`DeclusterPlan` for the
    amortized multi-column form.
    """
    plan = DeclusterPlan(index, len(column), hierarchy=hierarchy,
                         item_size=item_size, profile=profile,
                         partition_bits=partition_bits)
    return plan.project(column)
