"""Radix-partitioned hash join (Section 4.2, Figure 2).

Both relations are radix-clustered on the same lower ``B`` bits of the
join-key hash; corresponding cluster pairs are then joined with a small
bucket-chained hash join whose table fits the cache.  "CPU- and
cache-optimized radix-clustered partitioned hash-join can easily achieve
an order of magnitude performance improvement over simple hash-join."
"""

from dataclasses import dataclass

import numpy as np

from repro.hardware.profiles import SCALED_DEFAULT
from repro.joins.hash_join import HashJoinResult, simple_hash_join
from repro.joins.radix_cluster import identity_hash, radix_cluster, split_bits


@dataclass(frozen=True)
class PartitionPlan:
    """Chosen radix bits and per-pass split."""

    bits: int
    pass_bits: tuple

    @property
    def n_clusters(self):
        return 1 << self.bits

    @property
    def passes(self):
        return len(self.pass_bits)


def plan_partitioning(n_tuples, item_size=8, profile=SCALED_DEFAULT,
                      target_level="L1"):
    """Pick B and the per-pass split for a relation of ``n_tuples``.

    ``B`` is chosen so a cluster (plus its hash table) fits the target
    cache level; each pass's ``H_p`` is capped at both the TLB entry
    count and the target cache's line count — the thrashing-avoidance
    rule of Section 4.2.
    """
    cache = profile.cache(target_level)
    # Cluster + hash table + chain nodes roughly triple the footprint.
    usable = cache.capacity // 3
    bits = 0
    while n_tuples * item_size > usable << bits and bits < 24:
        bits += 1
    max_regions = cache.capacity // cache.line_size
    if profile.tlb is not None:
        max_regions = min(max_regions, profile.tlb.entries)
    max_pass_bits = max(int(np.log2(max_regions)), 1)
    passes = max(-(-bits // max_pass_bits), 1)  # ceil division
    return PartitionPlan(bits, tuple(split_bits(bits, passes)))


def partitioned_hash_join(left, right, bits=None, passes=None,
                          hierarchy=None, item_size=8,
                          hash_fn=identity_hash, profile=SCALED_DEFAULT,
                          cpu_optimized=True):
    """Join ``left`` and ``right`` via radix-cluster + per-cluster hash join.

    ``bits``/``passes`` default to :func:`plan_partitioning` on the
    larger input.  Returns a :class:`HashJoinResult` with positions into
    the *original* (unclustered) arrays.
    """
    left = np.ascontiguousarray(left)
    right = np.ascontiguousarray(right)
    if bits is None or passes is None:
        plan = plan_partitioning(max(len(left), len(right), 1),
                                 item_size=item_size, profile=profile)
        bits = plan.bits if bits is None else bits
        passes = plan.pass_bits if passes is None else passes

    lc = radix_cluster(left, bits, passes, hierarchy=hierarchy,
                       item_size=item_size, hash_fn=hash_fn)
    rc = radix_cluster(right, bits, passes, hierarchy=hierarchy,
                       item_size=item_size, hash_fn=hash_fn)

    regions = None
    if hierarchy is not None:
        # One shared region set, sized for the largest cluster: the
        # per-cluster hash table stays cache-resident across clusters.
        from repro.joins.hash_join import allocate_regions, \
            _next_power_of_two
        max_l = int(np.max(np.diff(lc.offsets))) if len(left) else 0
        max_r = int(np.max(np.diff(rc.offsets))) if len(right) else 0
        regions = allocate_regions(max_l, max_r,
                                   max(_next_power_of_two(max_r), 1),
                                   item_size)

    l_parts = []
    r_parts = []
    for c in range(lc.n_clusters):
        l_vals = lc.cluster(c)
        r_vals = rc.cluster(c)
        if len(l_vals) == 0 or len(r_vals) == 0:
            continue
        sub = simple_hash_join(l_vals, r_vals, hierarchy=hierarchy,
                               item_size=item_size, hash_fn=hash_fn,
                               cpu_optimized=cpu_optimized,
                               regions=regions)
        if len(sub):
            l_parts.append(lc.cluster_positions(c)[sub.left_positions])
            r_parts.append(rc.cluster_positions(c)[sub.right_positions])
    if l_parts:
        l_pos = np.concatenate(l_parts)
        r_pos = np.concatenate(r_parts)
    else:
        l_pos = np.empty(0, dtype=np.int64)
        r_pos = np.empty(0, dtype=np.int64)
    return HashJoinResult(l_pos, r_pos)
