"""The pre/post-projection strategy matrix of Section 4.3 (experiment E3).

Joins in real queries come with payload projections.  The four classic
strategies, for a join of ``left`` and ``right`` keys with ``k`` payload
columns on the inner (right) side:

* ``nsm_pre`` — NSM pre-projection: the needed payload carried *through*
  the join as widened tuples (every partitioning pass and hash-table
  node moves ``8 * (1 + k)`` bytes);
* ``nsm_post`` — NSM post-projection: narrow key join, then per result a
  random fetch into the *full-width* NSM tuple (``table_columns`` + key
  fields — a row store cannot avoid touching the whole record's lines);
* ``dsm_post_naive`` — DSM post-projection, naive: narrow key join, then
  per column a random positional gather;
* ``dsm_post_decluster`` — DSM post-projection with Radix-Decluster per
  column — the strategy the paper reports as the overall winner.

All strategies compute the same result values (verified in tests); the
interesting output is the simulated cycle cost.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.bat import global_address_space
from repro.hardware import trace as trace_mod
from repro.hardware.profiles import SCALED_DEFAULT
from repro.joins.partitioned_hash_join import partitioned_hash_join
from repro.joins.radix_decluster import (
    DeclusterPlan,
    naive_post_projection,
)

PROJECTION_STRATEGIES = ("nsm_pre", "nsm_post", "dsm_post_naive",
                         "dsm_post_decluster")


@dataclass
class ProjectionRun:
    """Outcome of one strategy run."""

    strategy: str
    n_results: int
    join_cycles: int
    projection_cycles: int
    columns: list  # the projected payload columns (for validation)

    @property
    def total_cycles(self):
        return self.join_cycles + self.projection_cycles


def make_payload_columns(n_rows, k, seed=0):
    """k synthetic payload columns; column j holds ``pos * 10 + j``."""
    base = np.arange(n_rows, dtype=np.int64) * 10
    return [base + j for j in range(k)]


def run_projection_strategy(strategy, left_keys, right_keys, payloads,
                            hierarchy, profile=SCALED_DEFAULT,
                            table_columns=None):
    """Join + project ``payloads`` (inner-side columns) one strategy's way.

    ``table_columns`` is the total column count of the inner table (the
    NSM record width); it defaults to twice the projected column count,
    reflecting that queries rarely project every column.  Returns a
    :class:`ProjectionRun`; the hierarchy accumulates the simulated
    traffic.
    """
    if strategy not in PROJECTION_STRATEGIES:
        raise KeyError("unknown strategy {0!r}".format(strategy))
    k = len(payloads)
    if table_columns is None:
        table_columns = max(2 * k, 8)
    if table_columns < k:
        raise ValueError("table narrower than the projection")
    wide_item = 8 * (1 + k)
    record_item = 8 * (1 + table_columns)

    if strategy == "nsm_pre":
        result = partitioned_hash_join(left_keys, right_keys,
                                       hierarchy=hierarchy,
                                       item_size=wide_item, profile=profile)
        join_cycles = hierarchy.total_cycles
        index = result.right_positions
        columns = [col[index] for col in payloads]
        # The wide result tuples are written out sequentially.
        out_base = global_address_space.allocate(
            max(len(index) * wide_item, 1))
        hierarchy.access(trace_mod.sequential(out_base,
                                              len(index) * (1 + k), 8))
        return ProjectionRun(strategy, len(index), join_cycles,
                             hierarchy.total_cycles - join_cycles, columns)

    result = partitioned_hash_join(left_keys, right_keys,
                                   hierarchy=hierarchy, item_size=8,
                                   profile=profile)
    join_cycles = hierarchy.total_cycles
    index = result.right_positions

    if strategy == "nsm_post":
        columns = [col[index] for col in payloads]
        tuple_base = global_address_space.allocate(
            max(len(right_keys) * record_item, 1))
        out_base = global_address_space.allocate(
            max(len(index) * wide_item, 1))
        # Per result tuple: k field reads spread across one full-width
        # NSM record (random record), one sequential write.
        spread = np.linspace(1, table_columns, k).astype(np.int64)
        field_reads = (tuple_base
                       + np.repeat(index, k) * record_item
                       + np.tile(spread * 8, len(index)))
        hierarchy.access(field_reads)
        hierarchy.access(trace_mod.sequential(out_base,
                                              len(index) * k, 8))
        hierarchy.add_cpu_cycles(len(index) * (2 + 2 * k))
    elif strategy == "dsm_post_naive":
        columns = [naive_post_projection(index, col, hierarchy=hierarchy)
                   for col in payloads]
    else:  # dsm_post_decluster — one shared plan, amortized over columns
        plan = DeclusterPlan(index, len(right_keys), hierarchy=hierarchy,
                             profile=profile)
        columns = [plan.project(col) for col in payloads]
    return ProjectionRun(strategy, len(index), join_cycles,
                         hierarchy.total_cycles - join_cycles, columns)
