"""Logical-row plumbing for view maintenance.

The engine stores missing values as in-domain nil sentinels
(:mod:`repro.core.atoms`); view maintenance computes in *logical*
value space instead — None for missing — so accumulators and Z-set
weights merge by SQL value rather than by sentinel bit pattern.  This
module holds the sentinel<->None decoding, a row-at-a-time expression
evaluator over logical rows (None-propagating, mirroring the SQL
convention that a NULL comparison does not match), and the type
inference that derives a view's backing-table schema from its defining
query.
"""

import math

from repro.core.atoms import BIT, DBL, LNG, STR
from repro.sql.ast import (
    BinOp, Column, FuncCall, IsNull, Literal, Star, UnaryOp,
)


class ViewError(ValueError):
    """A view definition the maintenance engine cannot accept."""


# -- sentinel <-> None decoding ----------------------------------------------

def decode_value(atom, value):
    """One stored cell decoded to logical space (nil sentinel -> None).

    Var-sized (string) cells already decode to None; booleans have no
    nil (BIT's sentinel is plain False).
    """
    if value is None or atom.varsized or atom is BIT:
        return value
    if isinstance(value, float):
        return None if math.isnan(value) else value
    return None if value == atom.nil else value


def decode_row(table, row):
    """One :meth:`Table.row` tuple decoded to logical space."""
    return tuple(decode_value(table.atoms[name], value)
                 for name, value in zip(table.column_names, row))


def logical_rows(table):
    """Every visible row of ``table``, decoded to logical space.

    Decodes column-at-a-time off the raw BAT tails (delta maintenance
    rescans bases on extremum retraction and join lookup, so this is
    the maintainer's hot full-scan path).
    """
    oids = table.tid().tail
    if not len(oids):
        return []
    columns = []
    for name in table.column_names:
        bat = table.bind(name)
        atom = table.atoms[name]
        raw = bat.tail[oids]
        if atom.varsized:
            heap = bat.heap
            columns.append([heap.get(v) for v in raw.tolist()])
        elif atom is BIT:
            columns.append([bool(v) for v in raw.tolist()])
        else:
            values = raw.tolist()
            if values and isinstance(values[0], float):
                columns.append([None if math.isnan(v) else v
                                for v in values])
            else:
                nil = atom.nil
                columns.append([None if v == nil else v
                                for v in values])
    return list(zip(*columns))


def row_env(binding, column_names, row):
    """Evaluation environment of one logical row: qualified
    (``binding.col``) and unqualified names both resolve."""
    env = {}
    for name, value in zip(column_names, row):
        env["{0}.{1}".format(binding, name)] = value
        env[name] = value
    return env


# -- the logical-row expression evaluator ------------------------------------

def truthy(value):
    """SQL-flavoured truth: None (unknown) never matches."""
    return bool(value) if value is not None else False


def eval_expr(expr, env):
    """Evaluate a scalar expression over one row environment.

    None propagates through arithmetic and comparisons (so a NULL
    predicate filters its row out — the SQL convention, which the
    reference executor shares; the engine's in-domain sentinels compare
    as ordinary values instead, a documented divergence that only
    NULL-bearing predicates can observe).
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        key = "{0}.{1}".format(expr.table, expr.name) if expr.table \
            else expr.name
        try:
            return env[key]
        except KeyError:
            raise ViewError("unknown column {0!r}".format(key)) from None
    if isinstance(expr, BinOp):
        if expr.op == "and":
            return truthy(eval_expr(expr.left, env)) and \
                truthy(eval_expr(expr.right, env))
        if expr.op == "or":
            return truthy(eval_expr(expr.left, env)) or \
                truthy(eval_expr(expr.right, env))
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        if left is None or right is None:
            return None
        return _BINOPS[expr.op](left, right)
    if isinstance(expr, UnaryOp):
        value = eval_expr(expr.operand, env)
        if value is None:
            return None
        return (not value) if expr.op == "not" else -value
    if isinstance(expr, IsNull):
        return eval_expr(expr.operand, env) is None
    raise ViewError("unsupported view expression {0!r}".format(expr))


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# -- output-type inference ----------------------------------------------------

def infer_atom(expr, tables):
    """The storage atom of one output expression.

    ``tables`` maps binding name -> Table (aliases included).  Follows
    the engine's coercions: ``/`` and any floating operand widen to
    double, comparisons/logic are booleans, ``count`` is a bigint,
    ``sum``/``min``/``max`` keep their operand's type, ``avg`` is a
    double.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return BIT
        if isinstance(value, float):
            return DBL
        if isinstance(value, str):
            return STR
        return LNG
    if isinstance(expr, Column):
        return _column_atom(expr, tables)
    if isinstance(expr, BinOp):
        if expr.op in ("and", "or", "=", "<>", "<", "<=", ">", ">="):
            return BIT
        left = infer_atom(expr.left, tables)
        right = infer_atom(expr.right, tables)
        if expr.op == "/" or DBL in (left, right):
            return DBL
        return LNG
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return BIT
        return infer_atom(expr.operand, tables)
    if isinstance(expr, IsNull):
        return BIT
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        if expr.name == "count":
            return LNG
        if expr.name == "avg":
            return DBL
        if len(expr.args) != 1 or isinstance(expr.args[0], Star):
            raise ViewError("{0} needs one column argument".format(
                expr.name))
        return infer_atom(expr.args[0], tables)
    raise ViewError("cannot infer the type of {0!r}".format(expr))


def _column_atom(column, tables):
    if column.table is not None:
        table = tables.get(column.table)
        if table is None:
            raise ViewError("unknown table {0!r}".format(column.table))
        return table.atom(column.name)
    matches = [t for t in tables.values()
               if column.name in t.atoms]
    if not matches:
        raise ViewError("unknown column {0!r}".format(column.name))
    return matches[0].atoms[column.name]
