"""Incrementally maintained materialized views (``repro.views``).

``CREATE MATERIALIZED VIEW v AS SELECT ...`` installs a view whose
backing table is kept consistent with its base tables by folding each
committed DML batch — distilled into a weighted Z-set delta — through
the view's operator, instead of recomputing the defining query.  The
machinery rides the database's single publish path, so views stay
maintained across recovery, replication, 2PC and resharding without
any code of their own in those layers.

Modules:

* :mod:`repro.views.zset` — weighted row multisets, the delta currency
* :mod:`repro.views.rows` — sentinel<->None decoding and the
  logical-row expression evaluator
* :mod:`repro.views.definition` — classification of defining queries
  into linear / aggregate / join / eager maintenance strategies
* :mod:`repro.views.maintainer` — the per-database maintainer and the
  operator implementations
"""

from repro.views.definition import OutputItem, ViewDefinition, classify
from repro.views.maintainer import (
    ViewMaintainer, ViewMaintenanceError, merge_partials, view_from_wal,
)
from repro.views.rows import (
    ViewError, decode_row, decode_value, eval_expr, logical_rows,
    row_env, truthy,
)
from repro.views.zset import ZSet, row_key

__all__ = [
    "OutputItem",
    "ViewDefinition",
    "ViewError",
    "ViewMaintainer",
    "ViewMaintenanceError",
    "ZSet",
    "classify",
    "decode_row",
    "decode_value",
    "eval_expr",
    "logical_rows",
    "merge_partials",
    "row_env",
    "row_key",
    "truthy",
    "view_from_wal",
]
