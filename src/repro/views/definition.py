"""Classify a materialized view's defining query into a maintenance
strategy.

Four strategies, from cheapest to most general:

``linear``
    Single-table filter/project.  Linear in the Z-set algebra
    (L(A+B) = L(A)+L(B)), so a committed delta applies directly: each
    +1/-1 base row maps through WHERE and the projection to a +1/-1
    backing row.

``aggregate``
    Single-table GROUP BY (or scalar) count/sum/min/max/avg.  The view
    keeps one accumulator per group per aggregate; weights add and
    retract, min/max fall back to a per-group recompute when the
    current extremum retracts.

``join``
    A two-table equi/theta join of distinct tables, no aggregates.
    Bilinear: with deltas applied table-at-a-time (the commit path
    publishes per-table ops sequentially), each delta joins against
    the other table's current state — the dJ = dR|><|S + R|><|dS +
    dR|><|dS expansion collapses to the sequential two-step.

``eager``
    Everything else the engine can run (DISTINCT, HAVING, 3+ tables,
    self-joins, DISTINCT aggregates, aggregated joins): not
    incrementally decomposable here, so every delta to a base table
    triggers a full recompute of the defining query through the
    engine.  Correct, never cheap — the documented fallback.

``ORDER BY`` / ``LIMIT`` are rejected outright: a materialized view is
a multiset, an ordered prefix of one is not maintainable state.  Views
over views are rejected too (the delta of a derived table is not a
committed DML delta).
"""

from dataclasses import dataclass, field

from repro.sql.ast import (
    Column, FuncCall, Select, Star, contains_aggregate,
)
from repro.sql.render import render_select
from repro.views.rows import ViewError, infer_atom


@dataclass
class OutputItem:
    """One output column of a view: where its value comes from."""

    name: str
    expr: object           # the (expanded) item expression
    kind: str = "expr"     # 'expr' | 'key' | 'agg'
    key_index: int = None  # for 'key': index into the group-by list
    agg: str = None        # for 'agg': count/sum/min/max/avg
    arg: object = None     # for 'agg': argument expr (None = count(*))


@dataclass
class ViewDefinition:
    name: str
    select: object
    kind: str              # 'linear' | 'aggregate' | 'join' | 'eager'
    base_tables: list      # referenced base-table names (deduped, ordered)
    columns: list          # [(output name, atom type name)] backing schema
    items: list = field(default_factory=list)   # [OutputItem]
    group_exprs: list = field(default_factory=list)
    sql: str = ""

    def __post_init__(self):
        if not self.sql:
            self.sql = render_select(self.select)


def classify(tables, name, select, view_names=()):
    """Build the :class:`ViewDefinition` for ``name`` or raise
    :class:`ViewError`.

    ``tables`` maps table name -> :class:`~repro.sql.catalog.Table`
    (the base schema the view closes over); ``view_names`` are existing
    view names, rejected as base tables.
    """
    if not isinstance(select, Select):
        raise ViewError("a materialized view needs a SELECT definition")
    if select.table is None:
        raise ViewError("a materialized view needs a FROM clause")
    if select.order_by or select.limit is not None:
        raise ViewError(
            "materialized views are unordered multisets — ORDER BY and "
            "LIMIT are not allowed in view definitions")
    refs = [select.table] + [join.table for join in select.joins]
    for ref in refs:
        if ref.name in view_names:
            raise ViewError(
                "views over views are not supported ({0!r} is a "
                "materialized view)".format(ref.name))
        if ref.name not in tables:
            raise ViewError("unknown base table {0!r}".format(ref.name))
    base_tables = list(dict.fromkeys(ref.name for ref in refs))
    bindings = {ref.binding: tables[ref.name] for ref in refs}
    kind = _classify_kind(select, refs)
    if kind == "aggregate":
        items, group_exprs = _aggregate_items(select, refs, bindings)
    else:
        items = _expand_items(select, refs, bindings)
        group_exprs = []
    columns = _output_columns(items, bindings)
    return ViewDefinition(name=name, select=select, kind=kind,
                          base_tables=base_tables, columns=columns,
                          items=items, group_exprs=group_exprs)


def _classify_kind(select, refs):
    aggregated = select.group_by or \
        any(contains_aggregate(item.expr) for item in select.items)
    if len(refs) > 2:
        return "eager"
    if len(refs) == 2:
        if aggregated or select.distinct or select.having is not None:
            return "eager"
        if refs[0].name == refs[1].name:
            return "eager"  # self-join: dR|><|dR needs the pre-state
        return "join"
    if select.distinct:
        return "eager"
    if aggregated:
        if select.having is not None:
            return "eager"
        for item in select.items:
            if item.expr in select.group_by:
                continue
            expr = item.expr
            if not (isinstance(expr, FuncCall) and expr.is_aggregate):
                return "eager"  # aggregate arithmetic etc.
            if expr.distinct:
                return "eager"  # DISTINCT aggregates don't decompose
            if expr.name == "count":
                if len(expr.args) > 1:
                    raise ViewError("count() arity")
            elif len(expr.args) != 1 or isinstance(expr.args[0], Star):
                raise ViewError(
                    "{0} needs one column argument".format(expr.name))
        return "aggregate"
    return "linear"


def _aggregate_items(select, refs, bindings):
    group_exprs = list(select.group_by)
    items = []
    for item in select.items:
        expr = item.expr
        if expr in group_exprs:
            items.append(OutputItem(name=_item_name(item), expr=expr,
                                    kind="key",
                                    key_index=group_exprs.index(expr)))
            continue
        if not (isinstance(expr, FuncCall) and expr.is_aggregate):
            raise ViewError(
                "non-aggregate item {0!r} must appear in "
                "GROUP BY".format(expr))
        arg = None
        if expr.args and not isinstance(expr.args[0], Star):
            arg = expr.args[0]
        if expr.name != "count" and arg is None:
            raise ViewError(
                "{0} needs one column argument".format(expr.name))
        items.append(OutputItem(name=_item_name(item), expr=expr,
                                kind="agg", agg=expr.name, arg=arg))
    return items, group_exprs


def _expand_items(select, refs, bindings):
    """Expand ``*`` / ``t.*`` into per-column items."""
    items = []
    for item in select.items:
        expr = item.expr
        if isinstance(expr, Star):
            sides = refs if expr.table is None else \
                [ref for ref in refs if ref.binding == expr.table]
            if not sides:
                raise ViewError("unknown table {0!r} in {1}.*".format(
                    expr.table, expr.table))
            for ref in sides:
                table = bindings[ref.binding]
                qualifier = ref.binding if len(refs) > 1 else None
                for column in table.column_names:
                    items.append(OutputItem(
                        name=column,
                        expr=Column(column, table=qualifier)))
            continue
        items.append(OutputItem(name=_item_name(item), expr=expr))
    return items


def _item_name(item):
    if item.alias:
        return item.alias
    if isinstance(item.expr, Column):
        return item.expr.name
    if isinstance(item.expr, FuncCall):
        return item.expr.name
    return None


def _output_columns(items, bindings):
    """The backing table's (name, type) schema; anonymous items get
    positional names, duplicates a numeric suffix."""
    seen = {}
    columns = []
    for index, item in enumerate(items):
        name = item.name or "c{0}".format(index + 1)
        if name in seen:
            seen[name] += 1
            name = "{0}_{1}".format(name, seen[name])
        seen.setdefault(name, 1)
        item.name = name
        atom = infer_atom(item.expr, bindings)
        columns.append((name, atom.name))
    return columns
