"""Weighted row multisets (Z-sets) — the delta currency of view
maintenance.

A Z-set maps rows to integer weights: +w means "w copies arrive", -w
means "w copies retract".  A committed DML batch distills into one
Z-set per table (appends weigh +1 each, deletes -1; an UPDATE is a -1
retraction plus a +1 insertion), and the maintenance operators in
:mod:`repro.views.maintainer` consume these batches — linear operators
apply them directly (L(A+B) = L(A)+L(B)), aggregates fold them into
per-group accumulators.

Rows live in *logical* (None-based) value space here: the engine's
in-domain nil sentinels are decoded to None before a row enters a
Z-set (:func:`repro.views.rows.decode_row`), so weights merge by value
identity — including NaN, which would otherwise never equal itself.
"""


def row_key(row):
    """Hashable identity of a logical row: type-tagged so ``1`` /
    ``1.0`` / ``True`` stay distinct and NaN equals itself."""
    return tuple(_tag(value) for value in row)


def _tag(value):
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, float):
        if value != value:
            return ("nan",)
        return ("float", value)
    if isinstance(value, int):
        return ("int", value)
    return ("str", value)


class ZSet:
    """A row -> weight mapping; zero-weight rows vanish on the fly."""

    def __init__(self):
        self._entries = {}  # row_key -> [row, weight]

    def add(self, row, weight=1):
        row = tuple(row)
        key = row_key(row)
        entry = self._entries.get(key)
        if entry is None:
            if weight:
                self._entries[key] = [row, weight]
            return
        entry[1] += weight
        if entry[1] == 0:
            del self._entries[key]

    def items(self):
        """(row, weight) pairs, weight never zero."""
        return [(row, weight) for row, weight in self._entries.values()]

    def __len__(self):
        return len(self._entries)

    def __bool__(self):
        return bool(self._entries)

    def __repr__(self):
        return "ZSet({0} distinct rows)".format(len(self._entries))
