"""Incremental maintenance of materialized views from committed deltas.

The :class:`ViewMaintainer` hangs off one
:class:`~repro.sql.database.Database` and owns every view's backing
table (an ordinary catalog table named after the view — SELECTs
against a view plan as plain scans, snapshots pin it like any other
table).  The database's ``_apply_ops`` — the single publish path
shared by autocommit, transaction publication, WAL replay, replication
apply, 2PC decide and resharding install — hands the maintainer each
op's delta as appended/removed base rows; the maintainer folds them
into weighted Z-set batches and applies them to every view watching
that table, atomically with the commit (the backing table moves inside
the same ``_apply_ops`` call that moves the base table).

Backing tables are derived state: they are never WAL-logged
themselves.  The log carries ``create_view``/``drop_view`` records
(the defining query as SQL text) plus the ordinary commit records, so
replay rebuilds every view by re-running the same create-then-maintain
history — on recovery, on replicas, and per shard.
"""

import numpy as np

from repro.core.atoms import BIT
from repro.sql.ast import Column
from repro.sql.parser import parse_sql
from repro.views.definition import ViewDefinition, classify
from repro.views.rows import (
    ViewError, decode_row, eval_expr, logical_rows, row_env, truthy,
)
from repro.views.zset import ZSet, row_key


class ViewMaintenanceError(RuntimeError):
    """Internal invariant violation: the incremental state diverged
    from what a retraction expects (a bug, not a user error)."""


class ViewMaintainer:
    """All materialized views of one database."""

    def __init__(self, database):
        self._db = database
        self._views = {}     # view name -> operator object
        self._watchers = {}  # base table -> [view names, creation order]
        self.counters = {}   # view name -> maintenance counters

    # -- registry ------------------------------------------------------------

    def names(self):
        return sorted(self._views)

    def is_view(self, name):
        return name in self._views

    def watching(self, table_name):
        """True when a committed delta to ``table_name`` must be
        captured (the near-zero fast-path check in ``_apply_ops``)."""
        return table_name in self._watchers

    def definition(self, name):
        return self._view(name).d

    def select_of(self, name):
        return self._view(name).d.select

    def _view(self, name):
        try:
            return self._views[name]
        except KeyError:
            raise KeyError(
                "unknown materialized view {0!r}".format(name)) from None

    # -- DDL -----------------------------------------------------------------

    def validate(self, name, select):
        """Classify without installing — the pre-WAL validation step."""
        return self._classify(name, select)

    def _classify(self, name, select):
        if name in self._views or name in self._db.catalog:
            raise ViewError(
                "name {0!r} is already a table or view".format(name))
        return classify(self._db.catalog.tables, name, select,
                        view_names=set(self._views))

    def create(self, name, select):
        """Install a view: classify, create the backing table,
        materialize the initial contents, start watching the bases."""
        definition = self._classify(name, select)
        backing = self._db.catalog.create_table(name, definition.columns)
        view = _OPERATORS[definition.kind](self, definition)
        try:
            view.materialize()
        except Exception:
            self._db.catalog.drop_table(name)
            raise
        self._views[name] = view
        self.counters[name] = {"deltas": 0, "rows_changed": 0,
                               "group_recomputes": 0,
                               "eager_recomputes": 0,
                               "last_lsn": self._db.commit_seq}
        for base in definition.base_tables:
            self._watchers.setdefault(base, []).append(name)
        return definition

    def drop(self, name):
        view = self._views.pop(name, None)
        if view is None:
            raise KeyError(
                "unknown materialized view {0!r}".format(name))
        self.counters.pop(name, None)
        for base in view.d.base_tables:
            watchers = self._watchers.get(base, [])
            if name in watchers:
                watchers.remove(name)
            if not watchers:
                self._watchers.pop(base, None)
        self._db.catalog.drop_table(name)

    # -- the maintenance entry point ------------------------------------------

    def apply_delta(self, table_name, appended, removed):
        """Fold one committed op's delta into every watching view.

        ``appended``/``removed`` are raw decoded row tuples of
        ``table_name`` (as :meth:`Table.row` returns them); they are
        decoded to logical space and merged into one Z-set batch here.
        Runs inside ``_apply_ops`` — the base table already shows the
        op, so join and min/max recompute reads see post-op state.
        """
        watchers = self._watchers.get(table_name)
        if not watchers:
            return
        table = self._db.catalog.get(table_name)
        delta = ZSet()
        for row in appended:
            delta.add(decode_row(table, row), 1)
        for row in removed:
            delta.add(decode_row(table, row), -1)
        if not delta:
            return
        tracer = self._db.tracer
        for name in list(watchers):
            view = self._views[name]
            if tracer.enabled:
                with tracer.span("view.delta", kind="view", view=name,
                                 table=table_name,
                                 delta_rows=len(delta)):
                    changed = view.apply(table_name, delta)
                    tracer.add("view_rows_changed", changed)
            else:
                changed = view.apply(table_name, delta)
            counters = self.counters[name]
            counters["deltas"] += 1
            counters["rows_changed"] += changed
            # The commit being published takes the next sequence
            # number; _bump_commit runs after _apply_ops returns.
            counters["last_lsn"] = self._db.commit_seq + 1

    # -- reads ----------------------------------------------------------------

    def contents(self, name):
        """The view's rows in logical space (nil sentinels -> None)."""
        self._view(name)
        return logical_rows(self._db.catalog.get(name))

    def partials(self, name):
        """Per-group partial accumulator state, for scatter-gather
        reads over sharded aggregate views (merged by
        :func:`merge_partials`)."""
        view = self._view(name)
        if not isinstance(view, _AggregateView):
            raise ViewError(
                "view {0!r} has no partial-aggregate state "
                "({1})".format(name, view.d.kind))
        return view.dump_partials()


# -- operator implementations -------------------------------------------------


class _ViewOperator:
    """Shared plumbing: backing-table access and multiset bookkeeping."""

    def __init__(self, maintainer, definition):
        self._m = maintainer
        self.d = definition

    @property
    def _catalog(self):
        return self._m._db.catalog

    def _backing(self):
        return self._catalog.get(self.d.name)

    def _bump(self, counter, value=1):
        counters = self._m.counters.get(self.d.name)
        if counters is not None:
            counters[counter] += value


class _MultisetView(_ViewOperator):
    """Base for linear and join views: the backing table is a plain
    multiset, retracted row-by-row via an output-row -> oid index."""

    def __init__(self, maintainer, definition):
        super().__init__(maintainer, definition)
        self._row_oids = {}  # row_key -> [backing oids]

    def _append_out(self, rows):
        if not rows:
            return
        backing = self._backing()
        oids = backing.append_rows([list(row) for row in rows])
        for row, oid in zip(rows, oids):
            self._row_oids.setdefault(row_key(row), []).append(oid)

    def _retract_out(self, rows):
        if not rows:
            return
        backing = self._backing()
        doomed = []
        for row in rows:
            oids = self._row_oids.get(row_key(row))
            if not oids:
                raise ViewMaintenanceError(
                    "view {0!r}: retraction of absent row "
                    "{1!r}".format(self.d.name, row))
            doomed.append(oids.pop())
        backing.delete_oids(doomed)

    def _project(self, delta_rows):
        """Map a per-table Z-set through WHERE and the projection;
        returns (+rows, -rows) expanded by weight."""
        raise NotImplementedError


class _LinearView(_MultisetView):
    """Single-table filter/project: the delta maps straight through."""

    def materialize(self):
        base = self._catalog.get(self.d.base_tables[0])
        binding = self.d.select.table.binding
        out = []
        for row in logical_rows(base):
            projected = self._project_row(binding, base.column_names,
                                          row)
            if projected is not None:
                out.append(projected)
        self._append_out(out)

    def _project_row(self, binding, column_names, row):
        env = row_env(binding, column_names, row)
        where = self.d.select.where
        if where is not None and not truthy(eval_expr(where, env)):
            return None
        return tuple(eval_expr(item.expr, env) for item in self.d.items)

    def apply(self, table_name, delta):
        base = self._catalog.get(table_name)
        binding = self.d.select.table.binding
        plus, minus = [], []
        for row, weight in delta.items():
            projected = self._project_row(binding, base.column_names,
                                          row)
            if projected is None:
                continue
            if weight > 0:
                plus.extend([projected] * weight)
            else:
                minus.extend([projected] * (-weight))
        self._append_out(plus)
        self._retract_out(minus)
        return len(plus) + len(minus)


class _JoinView(_MultisetView):
    """Two-table join, maintained by the bilinear rule.

    Deltas arrive table-at-a-time (``_apply_ops`` publishes per-table
    ops sequentially, maintaining views after each), so each delta
    joins the *current* state of the other table: for a commit moving
    both R and S, dR joins old S, then dS joins new R — together
    exactly dR|><|S + R|><|dS + dR|><|dS.
    """

    def _sides(self):
        select = self.d.select
        left = select.table
        right = select.joins[0].table
        return left, right

    def _env_pairs(self, left_rows, right_rows):
        """Joined environments passing the ON condition and WHERE."""
        select = self.d.select
        left, right = self._sides()
        left_table = self._catalog.get(left.name)
        right_table = self._catalog.get(right.name)
        for lrow, lweight in left_rows:
            lenv = row_env(left.binding, left_table.column_names, lrow)
            for rrow, rweight in right_rows:
                env = dict(lenv)
                env.update(row_env(right.binding,
                                   right_table.column_names, rrow))
                if not truthy(eval_expr(select.joins[0].condition, env)):
                    continue
                if select.where is not None and \
                        not truthy(eval_expr(select.where, env)):
                    continue
                yield env, lweight * rweight

    def _emit(self, pairs):
        plus, minus = [], []
        for env, weight in pairs:
            row = tuple(eval_expr(item.expr, env)
                        for item in self.d.items)
            if weight > 0:
                plus.extend([row] * weight)
            else:
                minus.extend([row] * (-weight))
        self._append_out(plus)
        self._retract_out(minus)
        return len(plus) + len(minus)

    def materialize(self):
        left, right = self._sides()
        left_rows = [(row, 1) for row
                     in logical_rows(self._catalog.get(left.name))]
        right_rows = [(row, 1) for row
                      in logical_rows(self._catalog.get(right.name))]
        return self._emit(self._env_pairs(left_rows, right_rows))

    def apply(self, table_name, delta):
        left, right = self._sides()
        if table_name == left.name:
            other = [(row, 1) for row
                     in logical_rows(self._catalog.get(right.name))]
            pairs = self._env_pairs(delta.items(), other)
        else:
            other = [(row, 1) for row
                     in logical_rows(self._catalog.get(left.name))]
            pairs = self._env_pairs(other, delta.items())
        return self._emit(pairs)


class _AggregateView(_ViewOperator):
    """GROUP BY (or scalar) count/sum/min/max/avg with weight-aware
    per-group accumulators.

    Retraction decrements counts and subtracts sums; a retraction that
    removes the *current extremum* of a min/max accumulator cannot be
    answered from the accumulator alone, so the group recomputes from
    the base table (post-delta state, counted in
    ``group_recomputes``).  A group whose weight reaches zero vanishes
    — its backing row is deleted, not zeroed — except for the scalar
    (no GROUP BY) shape, which always keeps exactly one row, matching
    the engine's empty-aggregate answers (count 0, sums NULL).
    """

    def __init__(self, maintainer, definition):
        super().__init__(maintainer, definition)
        self._groups = {}      # group key -> _Group
        self._group_oids = {}  # group key -> backing oid
        self._scalar = not definition.group_exprs

    def _binding(self):
        return self.d.select.table.binding

    def materialize(self):
        base = self._catalog.get(self.d.base_tables[0])
        delta = ZSet()
        for row in logical_rows(base):
            delta.add(row, 1)
        if self._scalar and not delta:
            # The scalar shape always has its one row.
            self._rewrite_groups({()})
            return
        self.apply(self.d.base_tables[0], delta)

    def apply(self, table_name, delta):
        base = self._catalog.get(table_name)
        binding = self._binding()
        select = self.d.select
        dirty = set()
        for row, weight in delta.items():
            env = row_env(binding, base.column_names, row)
            if select.where is not None and \
                    not truthy(eval_expr(select.where, env)):
                continue
            key = row_key([eval_expr(expr, env)
                           for expr in self.d.group_exprs]) \
                if not self._scalar else ()
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _Group(
                    tuple(eval_expr(expr, env)
                          for expr in self.d.group_exprs),
                    self.d.items)
            group.fold(env, weight)
            dirty.add(key)
        if self._scalar and not self._group_oids:
            dirty.add(())
        return self._rewrite_groups(dirty)

    def _rewrite_groups(self, dirty):
        """Re-emit the backing row of every touched group."""
        backing = self._backing()
        changed = 0
        touched = []
        stale = []
        for key in sorted(dirty):
            group = self._groups.get(key)
            if group is None and self._scalar:
                group = self._groups[key] = _Group((), self.d.items)
            if group is None:
                raise ViewMaintenanceError(
                    "view {0!r}: delta touched unknown group "
                    "{1!r}".format(self.d.name, key))
            if group.weight < 0:
                raise ViewMaintenanceError(
                    "view {0!r}: group {1!r} retracted below "
                    "empty".format(self.d.name, key))
            touched.append((key, group))
            if group.needs_recompute():
                stale.append(group)
        if stale:
            self._recompute_stale(stale)
        for key, group in touched:
            old_oid = self._group_oids.pop(key, None)
            if old_oid is not None:
                backing.delete_oids([old_oid])
                changed += 1
            if group.weight == 0 and not self._scalar:
                # Zero-weight groups vanish rather than linger.
                del self._groups[key]
                continue
            oids = backing.append_rows([list(group.output_row())])
            self._group_oids[key] = oids[0]
            changed += 1
        return changed

    def _recompute_stale(self, groups):
        """Rebuild stale min/max accumulators from the base table
        (current, post-delta state) — one shared scan, however many
        groups the delta invalidated."""
        if not self._recompute_columnwise(groups):
            self._recompute_rowwise(groups)
        self._bump("group_recomputes", len(groups))

    def _columnwise_name(self, expr, base):
        """The base column a plain-column expression binds, or None."""
        if not isinstance(expr, Column):
            return None
        if expr.table not in (None, self._binding()):
            return None
        return expr.name if expr.name in base.atoms else None

    def _recompute_columnwise(self, groups):
        """Column-at-a-time recompute for the common shape — no WHERE,
        plain-column group keys and aggregate arguments: one numpy mask
        per group over the raw BAT tails, no per-row environments."""
        select = self.d.select
        if select.where is not None:
            return False
        base = self._catalog.get(self.d.base_tables[0])
        key_cols = []
        for expr in self.d.group_exprs:
            name = self._columnwise_name(expr, base)
            if name is None or base.atoms[name].varsized:
                return False
            key_cols.append(name)
        for group in groups:
            for item, acc in zip(group.items, group.accs):
                if not acc.get("stale"):
                    continue
                name = self._columnwise_name(item.arg, base)
                if name is None or base.atoms[name].varsized or \
                        base.atoms[name] is BIT:
                    return False
        oids = base.tid().tail
        tails = {}

        def tail(name):
            if name not in tails:
                tails[name] = base.bind(name).tail[oids]
            return tails[name]

        for group in groups:
            mask = np.ones(len(oids), dtype=bool)
            for name, key_value in zip(key_cols, group.key_values):
                column = tail(name)
                if key_value is None:
                    mask &= np.isnan(column) \
                        if np.issubdtype(column.dtype, np.floating) \
                        else (column == base.atoms[name].nil)
                else:
                    mask &= (column == key_value)
            for item, acc in zip(group.items, group.accs):
                if not acc.get("stale"):
                    continue
                name = self._columnwise_name(item.arg, base)
                values = tail(name)[mask]
                if np.issubdtype(values.dtype, np.floating):
                    values = values[~np.isnan(values)]
                else:
                    values = values[values != base.atoms[name].nil]
                acc["n"] = int(len(values))
                acc["cur"] = (values.min() if item.agg == "min"
                              else values.max()).item() \
                    if len(values) else None
                acc["stale"] = False
        return True

    def _recompute_rowwise(self, groups):
        """The general recompute: one shared row-at-a-time scan, envs
        bucketed per stale group."""
        base = self._catalog.get(self.d.base_tables[0])
        binding = self._binding()
        select = self.d.select
        buckets = {row_key(group.key_values): []
                   for group in groups} if not self._scalar else {}
        scalar_envs = []
        for row in logical_rows(base):
            env = row_env(binding, base.column_names, row)
            if select.where is not None and \
                    not truthy(eval_expr(select.where, env)):
                continue
            if self._scalar:
                scalar_envs.append(env)
                continue
            key = row_key([eval_expr(expr, env)
                           for expr in self.d.group_exprs])
            bucket = buckets.get(key)
            if bucket is not None:
                bucket.append(env)
        for group in groups:
            envs = scalar_envs if self._scalar \
                else buckets[row_key(group.key_values)]
            group.recompute_extrema(envs)

    def dump_partials(self):
        """Shippable per-group state for cross-shard merging."""
        out = []
        for key in sorted(self._groups):
            group = self._groups[key]
            if group.weight == 0 and not self._scalar:
                continue
            out.append({"key": list(group.key_values),
                        "weight": group.weight,
                        "accs": [dict(acc) for acc in group.accs]})
        return out


class _EagerView(_ViewOperator):
    """The non-incremental fallback: every base delta recomputes the
    defining query through the engine and rewrites the backing table
    wholesale."""

    def materialize(self):
        self._refresh()

    def apply(self, table_name, delta):
        changed = self._refresh()
        self._bump("eager_recomputes")
        return changed

    def _refresh(self):
        backing = self._backing()
        visible = backing.tid().tail.tolist()
        if visible:
            backing.delete_oids(visible)
        result = self._m._db._run_select(self.d.select,
                                         view=self._catalog)
        rows = result.rows()
        if rows:
            backing.append_rows([list(row) for row in rows])
        return len(visible) + len(rows)


_OPERATORS = {
    "linear": _LinearView,
    "join": _JoinView,
    "aggregate": _AggregateView,
    "eager": _EagerView,
}


# -- per-group accumulators ---------------------------------------------------


class _Group:
    """One group's weight and per-aggregate accumulators.

    Accumulator shapes (all values in logical space):

    * count(*): ``{}`` — the group weight is the value
    * count(x): ``{"n": non-null count}``
    * sum/avg(x): ``{"n": non-null count, "total": running sum}``
    * min/max(x): ``{"n": non-null count, "cur": extremum or None,
      "stale": recompute pending}``
    """

    def __init__(self, key_values, items):
        self.key_values = tuple(key_values)
        self.items = items
        self.weight = 0
        self.accs = []
        for item in items:
            if item.kind != "agg" or item.arg is None:
                self.accs.append({})
            elif item.agg == "count":
                self.accs.append({"n": 0})
            elif item.agg in ("sum", "avg"):
                self.accs.append({"n": 0, "total": 0})
            else:  # min / max
                self.accs.append({"n": 0, "cur": None, "stale": False})

    def fold(self, env, weight):
        self.weight += weight
        for item, acc in zip(self.items, self.accs):
            if item.kind != "agg" or item.arg is None:
                continue
            value = eval_expr(item.arg, env)
            if value is None:
                continue
            if item.agg == "count":
                acc["n"] += weight
            elif item.agg in ("sum", "avg"):
                acc["n"] += weight
                acc["total"] += weight * value
            else:
                acc["n"] += weight
                if acc["n"] == 0:
                    acc["cur"] = None
                    acc["stale"] = False
                elif weight > 0:
                    cur = acc["cur"]
                    if cur is None or (value < cur if item.agg == "min"
                                       else value > cur):
                        acc["cur"] = value
                else:
                    # Retracting the current extremum: the accumulator
                    # cannot answer; flag the group for recompute.
                    if acc["cur"] is not None and value == acc["cur"]:
                        acc["stale"] = True

    def needs_recompute(self):
        return any(acc.get("stale") for acc in self.accs)

    def recompute_extrema(self, envs):
        for item, acc in zip(self.items, self.accs):
            if not acc.get("stale"):
                continue
            values = [v for v in (eval_expr(item.arg, env)
                                  for env in envs) if v is not None]
            acc["cur"] = (min(values) if item.agg == "min"
                          else max(values)) if values else None
            acc["n"] = len(values)
            acc["stale"] = False

    def output_row(self):
        row = []
        for item, acc in zip(self.items, self.accs):
            if item.kind == "key":
                row.append(self.key_values[item.key_index])
            else:
                row.append(_acc_value(item, acc, self.weight))
        return tuple(row)


def _acc_value(item, acc, weight):
    """One aggregate output cell from its accumulator (logical space)."""
    if item.agg == "count":
        return weight if item.arg is None else acc["n"]
    if item.agg == "sum":
        return acc["total"] if acc["n"] else None
    if item.agg == "avg":
        return acc["total"] / acc["n"] if acc["n"] else None
    return acc["cur"]  # min / max


def merge_partials(definition, dumps):
    """Merge per-shard :meth:`ViewMaintainer.partials` dumps into the
    global view rows (scatter-gather reads on sharded aggregate
    views).

    Counts and weights add, sums add, min/max take the best of the
    shard extrema (each shard's extremum is exact over its rows, so
    the best-of is the global extremum), avg divides the merged sum by
    the merged count.
    """
    merged = {}  # row_key(key) -> (key_values, weight, accs)
    for dump in dumps:
        for entry in dump:
            key_values = tuple(entry["key"])
            key = row_key(key_values)
            found = merged.get(key)
            if found is None:
                merged[key] = [key_values, entry["weight"],
                               [dict(acc) for acc in entry["accs"]]]
                continue
            found[1] += entry["weight"]
            for item, acc, other in zip(definition.items, found[2],
                                        entry["accs"]):
                if item.kind != "agg" or item.arg is None:
                    continue
                if item.agg == "count":
                    acc["n"] += other["n"]
                elif item.agg in ("sum", "avg"):
                    acc["n"] += other["n"]
                    acc["total"] += other["total"]
                else:
                    values = [v for v in (acc["cur"], other["cur"])
                              if v is not None]
                    acc["cur"] = (min(values) if item.agg == "min"
                                  else max(values)) if values else None
                    acc["n"] += other["n"]
    rows = []
    scalar = not definition.group_exprs
    if scalar and not merged:
        merged[()] = [(), 0, [_empty_acc(item)
                              for item in definition.items]]
    for key in sorted(merged):
        key_values, weight, accs = merged[key]
        if weight == 0 and not scalar:
            continue
        row = []
        for item, acc in zip(definition.items, accs):
            if item.kind == "key":
                row.append(key_values[item.key_index])
            else:
                row.append(_acc_value(item, acc, weight))
        rows.append(tuple(row))
    return rows


def _empty_acc(item):
    if item.kind != "agg" or item.arg is None:
        return {}
    if item.agg == "count":
        return {"n": 0}
    if item.agg in ("sum", "avg"):
        return {"n": 0, "total": 0}
    return {"n": 0, "cur": None, "stale": False}


def view_from_wal(database, record):
    """Re-install a view from its ``create_view`` WAL record (shared by
    recovery and replication apply)."""
    select = parse_sql(record["sql"])
    return database.views.create(record["name"], select)
