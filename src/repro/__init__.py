"""repro — a reproduction of "Database Architecture Evolution: Mammals
Flourished long before Dinosaurs became Extinct" (VLDB 2009).

A MonetDB-style columnar database system in Python: BAT storage and
algebra, MAL with an optimizer pipeline, a SQL front-end with delta-BAT
snapshot isolation, the cache-conscious join/projection algorithms of
Section 4 on a simulated memory hierarchy, the Section 4.4 cost model,
the X100 vectorized engine, database cracking, recycling, the DataCell
stream engine, and the DataCyclotron ring — plus the row-store/Volcano
baselines they are measured against.

Quick start::

    from repro import Database
    db = Database()
    db.execute("CREATE TABLE people (name VARCHAR, age INT)")
    db.execute("INSERT INTO people VALUES ('roger', 1927), ('bob', 1927)")
    print(db.execute("SELECT name FROM people WHERE age = 1927"))
"""

from repro.core import BAT, algebra
from repro.replication import ReplicationGroup
from repro.sql import Database, ResultSet, Transaction

__version__ = "1.0.0"

__all__ = ["BAT", "algebra", "Database", "ResultSet", "Transaction",
           "ReplicationGroup", "__version__"]
