"""XML over BATs: the MonetDB/XQuery (Pathfinder) front-end (§3.2).

"The work in the Pathfinder project makes it possible to store XML
tree structures in relational tables as <pre,post> coordinates,
represented as a collection of BATs.  In fact, the pre-numbers are
densely ascending, hence can be represented as a (non-stored) dense TID
column ... Only slight extensions to the BAT Algebra were needed, in
particular a series of region-joins called staircase joins."

* :mod:`repro.xml.shred` — shred an XML document into pre/post BATs
  (pre as the void head);
* :mod:`repro.xml.staircase` — the staircase region-joins for the four
  major XPath axes;
* :mod:`repro.xml.xpath` — a small XPath evaluator compiled onto the
  staircase joins and the ordinary BAT algebra.
"""

from repro.xml.shred import ShreddedDocument, shred
from repro.xml.staircase import (
    staircase_ancestor,
    staircase_descendant,
    staircase_following,
    staircase_preceding,
)
from repro.xml.xpath import XPathError, xpath

__all__ = [
    "shred",
    "ShreddedDocument",
    "staircase_descendant",
    "staircase_ancestor",
    "staircase_following",
    "staircase_preceding",
    "xpath",
    "XPathError",
]
