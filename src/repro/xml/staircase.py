"""Staircase joins: the region-join family XPath axes compile into.

A context set (pre ranks, document order) induces a "staircase" in the
pre/post plane; each axis is answered with one sequential pass over the
document region, after *pruning* context nodes whose axis region is
covered by another context node — the trick that makes the join's cost
independent of the context size.  In the tree, subtree regions are
either nested or disjoint, which is what the pruning exploits.

All functions take a :class:`repro.xml.shred.ShreddedDocument` and a
1-D array of context pre ranks, and return the axis result as a sorted
``int64`` array of pre ranks (set semantics, document order).
"""

import numpy as np


def _as_context(context):
    context = np.unique(np.asarray(context, dtype=np.int64))
    return context


def _subtree_end(doc, pre):
    """Last pre rank inside the subtree rooted at ``pre``."""
    return pre + doc.subtree_size(pre)


def staircase_descendant(doc, context):
    """All descendants of any context node.

    Nested context nodes are pruned: their descendant region is covered
    by the enclosing context's region, so each document node is scanned
    at most once.
    """
    context = _as_context(context)
    pieces = []
    covered_until = -1
    for c in context.tolist():
        end = _subtree_end(doc, c)
        if end <= covered_until:
            continue  # nested inside a previous context: pruned
        pieces.append(np.arange(c + 1, end + 1, dtype=np.int64))
        covered_until = end
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces)


def staircase_ancestor(doc, context):
    """All ancestors of any context node.

    Paths to the root are walked with shared-prefix pruning: once a
    node is already in the result, the rest of its path is too.
    """
    context = _as_context(context)
    parents = doc.parent.tail
    seen = set()
    for c in context.tolist():
        node = int(parents[c])
        while node >= 0 and node not in seen:
            seen.add(node)
            node = int(parents[node])
    return np.asarray(sorted(seen), dtype=np.int64)


def staircase_following(doc, context):
    """All nodes strictly after every part of some context subtree.

    following(v) = nodes with pre > subtree-end(v); the union over the
    context is determined by the *earliest closing* context node alone
    — the most aggressive pruning of the four axes.
    """
    context = _as_context(context)
    if len(context) == 0:
        return np.empty(0, dtype=np.int64)
    earliest_end = min(_subtree_end(doc, int(c)) for c in context)
    return np.arange(earliest_end + 1, doc.n_nodes, dtype=np.int64)


def staircase_preceding(doc, context):
    """All nodes whose whole subtree closes before some context opens.

    preceding(v) = nodes u with subtree-end(u) < pre(v); the union is
    determined by the *latest opening* context node alone.
    """
    context = _as_context(context)
    if len(context) == 0:
        return np.empty(0, dtype=np.int64)
    latest_start = int(context.max())
    n = doc.n_nodes
    pres = np.arange(n, dtype=np.int64)
    ends = doc.post.tail + doc.level.tail  # pre + size = post + level
    return pres[ends < latest_start]
