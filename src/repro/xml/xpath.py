"""A small XPath evaluator over shredded documents.

Supported grammar (a practical XPath subset)::

    path       := ('/' | '//') step (('/' | '//') step)*
    step       := (tag | '*') predicate*
    predicate  := '[' tag ']'                 # child existence
                | '[' tag '=' 'literal' ']'   # child text equality
                | '[' 'text()' '=' 'literal' ']'

``/`` steps use the child axis; ``//`` steps the (staircase-joined)
descendant axis.  Results are pre ranks in document order.
"""

import re

import numpy as np

from repro.xml.staircase import staircase_descendant

_STEP_RE = re.compile(r"(//|/)((?:[^/\[\]]|\[[^\]]*\])+)")
_PRED_RE = re.compile(r"\[([^\]]*)\]")


class XPathError(ValueError):
    """Raised on unsupported or malformed path expressions."""


def _parse(path):
    if not path or path[0] != "/":
        raise XPathError("path must start with '/' or '//'")
    steps = []
    consumed = 0
    for match in _STEP_RE.finditer(path):
        if match.start() != consumed:
            raise XPathError("cannot parse path near {0!r}".format(
                path[consumed:]))
        consumed = match.end()
        axis = "descendant" if match.group(1) == "//" else "child"
        body = match.group(2)
        predicates = _PRED_RE.findall(body)
        name = _PRED_RE.sub("", body).strip()
        if not name:
            raise XPathError("empty step in {0!r}".format(path))
        steps.append((axis, name, [_parse_predicate(p)
                                   for p in predicates]))
    if consumed != len(path):
        raise XPathError("trailing junk in {0!r}".format(path))
    return steps


def _parse_predicate(text):
    text = text.strip()
    match = re.fullmatch(r"text\(\)\s*=\s*'([^']*)'", text)
    if match:
        return ("self-text", None, match.group(1))
    match = re.fullmatch(r"([^=\s]+)\s*=\s*'([^']*)'", text)
    if match:
        return ("child-text", match.group(1), match.group(2))
    if re.fullmatch(r"[^=\[\]]+", text):
        return ("child-exists", text, None)
    raise XPathError("unsupported predicate [{0}]".format(text))


def _children(doc, context):
    if len(context) == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.isin(doc.parent.tail, context)
    return np.flatnonzero(mask).astype(np.int64)


def _filter_tag(doc, nodes, name):
    if name == "*" or len(nodes) == 0:
        return nodes
    offset = doc.tag.heap.find(name)
    if offset is None:
        return np.empty(0, dtype=np.int64)
    return nodes[doc.tag.tail[nodes] == offset]


def _apply_predicate(doc, nodes, predicate):
    kind, name, literal = predicate
    if len(nodes) == 0:
        return nodes
    if kind == "self-text":
        offset = doc.text.heap.find(literal)
        if offset is None:
            return np.empty(0, dtype=np.int64)
        return nodes[doc.text.tail[nodes] == offset]
    keep = []
    for pre in nodes.tolist():
        children = _filter_tag(doc, doc.children_of(pre), name)
        if kind == "child-exists":
            if len(children):
                keep.append(pre)
        else:  # child-text
            offset = doc.text.heap.find(literal)
            if offset is not None and \
                    (doc.text.tail[children] == offset).any():
                keep.append(pre)
    return np.asarray(keep, dtype=np.int64)


def xpath(doc, path):
    """Evaluate ``path`` on a shredded document; returns pre ranks.

    The virtual document root is above the root element, so ``/a``
    matches a root element tagged ``a`` and ``//a`` any ``a`` element.
    """
    steps = _parse(path)
    # Virtual root: context "above" pre 0.
    context = None  # None marks the virtual document node
    for axis, name, predicates in steps:
        if context is None:
            if axis == "child":
                nodes = np.asarray([0], dtype=np.int64)
            else:
                nodes = np.arange(doc.n_nodes, dtype=np.int64)
        else:
            if axis == "child":
                nodes = _children(doc, context)
            else:
                nodes = staircase_descendant(doc, context)
        nodes = _filter_tag(doc, nodes, name)
        for predicate in predicates:
            nodes = _apply_predicate(doc, nodes, predicate)
        context = np.unique(nodes)
    return context if context is not None else np.empty(0, dtype=np.int64)
