"""Shredding: XML documents into pre/post-encoded BAT columns.

Each element node gets a *pre* rank (document order) and a *post* rank
(end-of-element order).  The region-encoding property driving every
axis step:

    u is a descendant of v  <=>  pre(v) < pre(u)  and  post(u) < post(v)

The pre ranks are densely ascending, so they become the (non-stored)
void head; the stored columns are post, parent-pre, level, tag, and
text.
"""

import xml.etree.ElementTree as ET
from dataclasses import dataclass

import numpy as np

from repro.core.atoms import LNG, OID, STR
from repro.core.bat import BAT
from repro.core.heap import StringHeap


@dataclass
class ShreddedDocument:
    """One document as aligned void-headed BATs (pre = head oid)."""

    post: BAT     # :lng  post rank per node
    parent: BAT   # :oid  pre of the parent (-1 for the root)
    level: BAT    # :lng  depth (root = 0)
    tag: BAT      # :str  element tag
    text: BAT     # :str  concatenated direct text (may be nil)

    @property
    def n_nodes(self):
        return len(self.post)

    def node_tag(self, pre):
        return self.tag.tail_at(pre)

    def node_text(self, pre):
        return self.text.tail_at(pre)

    def children_of(self, pre):
        """Pre ranks of the direct children, in document order."""
        return np.flatnonzero(self.parent.tail == pre).astype(np.int64)

    def subtree_size(self, pre):
        """Number of descendants of the node at ``pre``.

        A classic pre/post identity: size = post - pre + level.
        """
        return int(self.post.tail[pre]) - pre + int(self.level.tail[pre])


def shred(document_text):
    """Parse XML text and shred it into a :class:`ShreddedDocument`."""
    root = ET.fromstring(document_text)
    posts = []
    parents = []
    levels = []
    tags = []
    texts = []
    post_counter = [0]

    def visit(element, parent_pre, level):
        pre = len(posts)
        posts.append(None)  # patched after the children are visited
        parents.append(parent_pre)
        levels.append(level)
        tags.append(element.tag)
        text = (element.text or "").strip() or None
        texts.append(text)
        for child in element:
            visit(child, pre, level + 1)
        posts[pre] = post_counter[0]
        post_counter[0] += 1

    visit(root, -1, 0)
    heap = StringHeap()
    return ShreddedDocument(
        post=BAT(LNG, np.asarray(posts, dtype=np.int64)),
        parent=BAT(OID, np.asarray(parents, dtype=np.int64)),
        level=BAT(LNG, np.asarray(levels, dtype=np.int64)),
        tag=BAT(STR, heap.put_many(tags), heap=heap),
        text=BAT(STR, heap.put_many(texts), heap=heap),
    )
