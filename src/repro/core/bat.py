"""Binary Association Tables — the storage unit of the engine.

A BAT holds a *head* column of ``oid`` surrogates and a *tail* column of
values (Figure 1 of the paper).  Following MonetDB, the common case of a
densely ascending head (0, 1, 2, ...) is not stored at all (a *void*
head); surrogate lookup is then a plain array index — the O(1) positional
lookup the paper contrasts with B-tree-in-slotted-pages lookup.

Each BAT owns a notional base address in a simulated address space, so
cache-conscious algorithms can translate "read tail position i" into the
byte address they feed to :mod:`repro.hardware`.
"""

import numpy as np

from repro.core.atoms import Atom, OID, BIT, LNG, DBL, STR, atom_for_dtype
from repro.core.heap import StringHeap


class AddressSpace:
    """Monotonic allocator of non-overlapping simulated address ranges."""

    def __init__(self, base=1 << 20, alignment=64):
        self._next = base
        self.alignment = alignment

    def allocate(self, nbytes, align=None):
        """Allocate a range; ``align`` forces the base address onto a
        boundary (e.g. page-aligned page allocations)."""
        nbytes = int(nbytes)
        if align:
            self._next += (-self._next) % int(align)
        base = self._next
        aligned = max(nbytes, 1)
        aligned += (-aligned) % self.alignment
        self._next += aligned
        return base


global_address_space = AddressSpace()


def _infer_atom(values):
    arr = np.asarray(values)
    if arr.dtype.kind in ("U", "O"):
        return STR
    if arr.dtype.kind == "b":
        return BIT
    if arr.dtype.kind == "f":
        return DBL
    if arr.dtype.kind in ("i", "u"):
        return LNG
    raise TypeError("cannot infer atom type for dtype {0!r}".format(arr.dtype))


class BAT:
    """One binary association table.

    Parameters
    ----------
    atom:
        Tail atom type.
    tail:
        The tail values (numpy array of ``atom.dtype``; heap offsets for
        ``str``).
    head:
        Materialized head oids, or None for a void (dense) head.
    hseqbase:
        First oid of a void head.
    heap:
        The string heap for var-sized atoms.
    tsorted / trevsorted / tkey:
        Known tail properties (None = unknown).  Properties steer
        algorithm choice in the kernel, exactly as Section 3.1 describes.
    """

    __slots__ = ("atom", "_tail", "_head", "hseqbase", "heap",
                 "_tsorted", "_trevsorted", "_tkey", "_tail_base",
                 "bat_id", "version")

    _next_bat_id = 0

    def __init__(self, atom, tail, head=None, hseqbase=0, heap=None,
                 tsorted=None, trevsorted=None, tkey=None):
        if not isinstance(atom, Atom):
            raise TypeError("atom must be an Atom")
        tail = np.asarray(tail, dtype=atom.dtype)
        if tail.ndim != 1:
            raise ValueError("tail must be one-dimensional")
        if atom.varsized and heap is None:
            raise ValueError("var-sized atom requires a heap")
        if head is not None:
            head = np.asarray(head, dtype=OID.dtype)
            if head.shape != tail.shape:
                raise ValueError("head and tail lengths differ")
        self.atom = atom
        self._tail = tail
        self._head = head
        self.hseqbase = int(hseqbase)
        self.heap = heap
        self._tsorted = tsorted
        self._trevsorted = trevsorted
        self._tkey = tkey
        self._tail_base = None
        self.bat_id = BAT._next_bat_id
        BAT._next_bat_id += 1
        self.version = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def from_values(cls, values, atom=None, hseqbase=0):
        """Build a void-headed BAT from Python/numpy values.

        Strings get a fresh heap; everything else maps to a numpy array.
        """
        if atom is None:
            atom = _infer_atom(values)
        if atom.varsized:
            heap = StringHeap()
            tail = heap.put_many(list(values))
            return cls(atom, tail, hseqbase=hseqbase, heap=heap)
        return cls(atom, atom.array(values), hseqbase=hseqbase)

    @classmethod
    def dense(cls, count, base=0, hseqbase=0):
        """A BAT whose tail is itself a dense oid sequence."""
        tail = base + np.arange(count, dtype=OID.dtype)
        return cls(OID, tail, hseqbase=hseqbase, tsorted=True, tkey=True)

    def empty_like(self):
        return BAT(self.atom, self.atom.empty(0), heap=self.heap,
                   hseqbase=self.hseqbase)

    def copy(self):
        head = None if self._head is None else self._head.copy()
        return BAT(self.atom, self._tail.copy(), head=head,
                   hseqbase=self.hseqbase, heap=self.heap,
                   tsorted=self._tsorted, trevsorted=self._trevsorted,
                   tkey=self._tkey)

    # -- geometry ----------------------------------------------------------

    def __len__(self):
        return len(self._tail)

    @property
    def count(self):
        return len(self._tail)

    @property
    def hdense(self):
        """True when the head is void (virtual, densely ascending)."""
        return self._head is None

    @property
    def tail(self):
        return self._tail

    @property
    def head(self):
        """The head oids, materializing a void head on demand."""
        if self._head is None:
            return self.hseqbase + np.arange(len(self._tail), dtype=OID.dtype)
        return self._head

    @property
    def tail_width(self):
        return self.atom.width

    @property
    def tail_nbytes(self):
        return len(self._tail) * self.atom.width

    @property
    def tail_base(self):
        """Simulated base byte address of the tail array (lazy)."""
        if self._tail_base is None:
            self._tail_base = global_address_space.allocate(
                max(self.tail_nbytes, 1))
        return self._tail_base

    # -- properties (sortedness, key) -------------------------------------

    @property
    def tsorted(self):
        if self._tsorted is None:
            if self.atom.varsized:
                decoded = self.heap.get_many(self._tail)
                self._tsorted = all(a <= b for a, b in
                                    zip(decoded, decoded[1:])
                                    if a is not None and b is not None)
            else:
                self._tsorted = bool(np.all(self._tail[1:] >= self._tail[:-1]))
        return self._tsorted

    @property
    def trevsorted(self):
        if self._trevsorted is None:
            if self.atom.varsized:
                decoded = self.heap.get_many(self._tail)
                self._trevsorted = all(a >= b for a, b in
                                       zip(decoded, decoded[1:])
                                       if a is not None and b is not None)
            else:
                self._trevsorted = bool(
                    np.all(self._tail[1:] <= self._tail[:-1]))
        return self._trevsorted

    @property
    def tkey(self):
        """True when all tail values are distinct."""
        if self._tkey is None:
            if len(self._tail) <= 1:
                self._tkey = True
            else:
                self._tkey = len(np.unique(self._tail)) == len(self._tail)
        return self._tkey

    def _invalidate_properties(self):
        self._tsorted = None
        self._trevsorted = None
        self._tkey = None

    # -- element access ----------------------------------------------------

    def oid_at(self, position):
        """Head oid at a physical position."""
        if self._head is None:
            return self.hseqbase + position
        return int(self._head[position])

    def tail_at(self, position):
        """Decoded tail value at a physical position."""
        raw = self._tail[position]
        if self.atom.varsized:
            return self.heap.get(raw)
        if self.atom is BIT:
            return bool(raw)
        return raw.item() if hasattr(raw, "item") else raw

    def position_of(self, oid):
        """Physical position of a head oid.

        O(1) for void heads — the paper's positional-lookup argument —
        and a search for materialized heads.
        """
        if self._head is None:
            pos = int(oid) - self.hseqbase
            if not 0 <= pos < len(self._tail):
                raise KeyError(oid)
            return pos
        matches = np.flatnonzero(self._head == oid)
        if len(matches) == 0:
            raise KeyError(oid)
        return int(matches[0])

    def find(self, oid):
        """Tail value for a head oid (positional for void heads)."""
        return self.tail_at(self.position_of(oid))

    def fetch(self, positions):
        """Positional projection: tail values at the given positions.

        This is the O(1)-per-tuple array gather that
        ``leftfetchjoin`` (tuple reconstruction) compiles into.
        """
        positions = np.asarray(positions, dtype=np.int64)
        return BAT(self.atom, self._tail[positions], heap=self.heap)

    def decoded(self):
        """All tail values as a Python list (strings decoded)."""
        if self.atom.varsized:
            return self.heap.get_many(self._tail)
        if self.atom is BIT:
            return [bool(v) for v in self._tail]
        return self._tail.tolist()

    def items(self):
        """Iterate (oid, value) pairs."""
        values = self.decoded()
        if self._head is None:
            for i, v in enumerate(values):
                yield self.hseqbase + i, v
        else:
            for o, v in zip(self._head.tolist(), values):
                yield o, v

    # -- structural transforms ----------------------------------------------

    def reverse(self):
        """Swap head and tail (tail must be oid-typed)."""
        if self.atom is not OID:
            raise TypeError("reverse() requires an oid tail")
        return BAT(OID, self.head, head=self._tail.copy())

    def mirror(self):
        """[head, head]: each oid associated with itself."""
        head = None if self._head is None else self._head.copy()
        tail = self.head.astype(OID.dtype)
        return BAT(OID, tail, head=head, hseqbase=self.hseqbase,
                   tsorted=self._head is None, tkey=True)

    def mark(self, base=0):
        """Replace the tail by fresh densely ascending oids."""
        head = None if self._head is None else self._head.copy()
        tail = base + np.arange(len(self._tail), dtype=OID.dtype)
        return BAT(OID, tail, head=head, hseqbase=self.hseqbase,
                   tsorted=True, tkey=True)

    def slice(self, lo, hi):
        """Positional sub-range [lo, hi) as a new BAT.

        The tail is a numpy *view*, not a copy: slicing an append-only
        column is O(1), which is what makes transaction snapshots cheap
        (appends to the original build a new array and leave views
        intact; in-place updates copy first).
        """
        head = None if self._head is None else self._head[lo:hi]
        return BAT(self.atom, self._tail[lo:hi], head=head,
                   hseqbase=self.hseqbase + lo if self._head is None
                   else self.hseqbase,
                   heap=self.heap)

    def append_values(self, values):
        """In-place append of decoded values (used by delta BATs)."""
        if self.atom.varsized:
            extra = self.heap.put_many(list(values))
        else:
            extra = self.atom.array(values)
        if self._head is not None:
            raise ValueError("append requires a void head")
        self._tail = np.concatenate([self._tail, extra])
        self._invalidate_properties()
        self._tail_base = None
        self.version += 1

    def replace_at(self, positions, values):
        """In-place positional update of tail values."""
        positions = np.asarray(positions, dtype=np.int64)
        if self.atom.varsized:
            raw = self.heap.put_many(list(values))
        else:
            raw = self.atom.array(values)
        self._tail = self._tail.copy()
        self._tail[positions] = raw
        self._invalidate_properties()
        self.version += 1

    # -- comparison helpers (tests, debugging) -------------------------------

    def same_pairs(self, other):
        """True when both BATs hold the same (oid, value) multiset."""
        return sorted(self.items(), key=repr) == sorted(other.items(),
                                                        key=repr)

    def __repr__(self):
        head = "void({0})".format(self.hseqbase) if self.hdense else "oid"
        return "BAT[{0},{1}]#{2}".format(head, self.atom.name, len(self))
