"""Atom types: the fixed-width value domains BAT tails are made of.

MonetDB calls its base types *atoms*.  Fixed-width atoms map directly onto
numpy dtypes; the variable-width ``str`` atom is stored as fixed-width
offsets into a :class:`repro.core.heap.StringHeap`.  Missing values use
MonetDB-style in-domain *nil* sentinels (the smallest value of the domain)
rather than out-of-band null bitmaps.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Atom:
    """Descriptor of one atom type.

    Attributes
    ----------
    name:
        MonetDB-style type name (``oid``, ``int``, ``str``, ...).
    dtype:
        The numpy dtype of the in-memory array (for ``str``: the dtype of
        the offset array).
    nil:
        The in-domain sentinel representing a missing value.
    varsized:
        True when the tail needs a companion heap (only ``str``).
    """

    name: str
    dtype: np.dtype
    nil: object
    varsized: bool = False

    @property
    def width(self):
        """Bytes per tail entry (offset width for var-sized atoms)."""
        return np.dtype(self.dtype).itemsize

    def array(self, values):
        """Coerce ``values`` into a tail array of this atom type."""
        return np.asarray(values, dtype=self.dtype)

    def empty(self, count=0):
        return np.empty(count, dtype=self.dtype)

    def is_nil(self, values):
        """Element-wise nil test (works for scalars and arrays)."""
        if isinstance(self.nil, float) and np.isnan(self.nil):
            return np.isnan(values)
        return np.equal(values, self.nil)

    def __repr__(self):
        return ":" + self.name


OID = Atom("oid", np.dtype(np.int64), nil=-1)
BIT = Atom("bit", np.dtype(np.bool_), nil=False)
BTE = Atom("bte", np.dtype(np.int8), nil=np.iinfo(np.int8).min)
SHT = Atom("sht", np.dtype(np.int16), nil=np.iinfo(np.int16).min)
INT = Atom("int", np.dtype(np.int32), nil=np.iinfo(np.int32).min)
LNG = Atom("lng", np.dtype(np.int64), nil=np.iinfo(np.int64).min)
FLT = Atom("flt", np.dtype(np.float32), nil=float("nan"))
DBL = Atom("dbl", np.dtype(np.float64), nil=float("nan"))
STR = Atom("str", np.dtype(np.int64), nil=-1, varsized=True)

_ATOMS = {a.name: a for a in (OID, BIT, BTE, SHT, INT, LNG, FLT, DBL, STR)}

# SQL-ish aliases accepted by front-ends.
_ALIASES = {
    "integer": INT,
    "int32": INT,
    "bigint": LNG,
    "int64": LNG,
    "smallint": SHT,
    "tinyint": BTE,
    "boolean": BIT,
    "bool": BIT,
    "real": FLT,
    "float": DBL,
    "double": DBL,
    "varchar": STR,
    "text": STR,
    "string": STR,
}


def atom_by_name(name):
    """Resolve an atom by its MonetDB name or a SQL alias."""
    key = name.lower().strip()
    if key in _ATOMS:
        return _ATOMS[key]
    if key in _ALIASES:
        return _ALIASES[key]
    raise KeyError("unknown atom type {0!r}".format(name))


def atom_for_dtype(dtype):
    """Best-effort mapping from a numpy dtype to an atom."""
    dtype = np.dtype(dtype)
    for atom in (LNG, INT, SHT, BTE, DBL, FLT, BIT):
        if atom.dtype == dtype:
            return atom
    raise KeyError("no atom for dtype {0!r}".format(dtype))


def nil_value(atom):
    """The nil sentinel of an atom (module-level convenience)."""
    return atom.nil
